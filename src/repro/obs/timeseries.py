"""A bounded in-process time-series store over the metrics registry.

The paper's central claim — the cost *crossover* between array-based
and relational evaluation — is a statement about behavior over a
workload, not a single query, yet until this layer every observability
surface (counters, histograms, EXPLAIN) was point-in-time.  The
:class:`TimeSeriesStore` closes that gap: at a configurable interval it
snapshots the whole :class:`~repro.obs.registry.MetricsRegistry` —
merged counter totals, sampled gauges, cumulative histogram buckets —
into a fixed-capacity ring, and answers *windowed* questions:

- "what was the query rate over the last 30 s?" (:meth:`counter_rate`),
- "what is the p99 over the last 30 s, not since process start?"
  (:meth:`window_quantile` — the difference of two cumulative bucket
  vectors is exactly the histogram of the window between them),
- "how did the cache hit rate evolve?" (:meth:`counter_series` /
  :meth:`window_ratio`).

Counter snapshots are **reset-aware**: the engine's cold-run protocol
calls ``reset_all`` at every query boundary, so raw counter differences
between two snapshots can go negative.  Each sample therefore carries
the registry's monotonic reset epoch; a delta across an epoch change is
taken as the newer sample's absolute value (the amount accumulated
*since* the reset — work between the older sample and the reset is
lost, never negated).  Histograms and the ``serve:*`` sources are
cumulative (their boundary reset is a no-op), so their windows are
exact.

The store is thread-safe and cheap enough to sample at sub-second
intervals; :meth:`start` runs the sampler on a daemon thread and fires
optional per-tick hooks (the alert evaluator rides there).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import MetricsError
from repro.obs.histogram import quantile_from_buckets
from repro.obs.memory import deep_sizeof
from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class TimePoint:
    """One registry snapshot: wall time, reset epoch, and values."""

    t: float
    epoch: int
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: histogram name -> (bounds, per-bucket cumulative-from-zero counts
    #: including the overflow bucket, sum, count) — all cumulative over
    #: process life, so two points subtract into a window histogram
    histograms: dict[str, tuple[tuple[float, ...], tuple[int, ...], float, int]] = (
        field(default_factory=dict)
    )


def _counter_delta(
    older: TimePoint, newer: TimePoint, name: str
) -> float:
    """Reset-aware counter movement between two adjacent samples."""
    after = newer.counters.get(name, 0.0)
    if newer.epoch != older.epoch:
        # the counter restarted from zero at least once in between:
        # credit what accumulated since the last reset, never a negative
        return max(0.0, after)
    return max(0.0, after - older.counters.get(name, 0.0))


class TimeSeriesStore:
    """Fixed-capacity ring of registry snapshots with windowed queries."""

    def __init__(
        self,
        registry: MetricsRegistry,
        capacity: int = 600,
        name: str = "timeseries",
    ):
        if capacity < 2:
            raise MetricsError(
                f"a time-series ring needs capacity >= 2, got {capacity}"
            )
        self.registry = registry
        self.capacity = capacity
        self.name = name
        self._points: deque[TimePoint] = deque(maxlen=capacity)
        #: parallel per-point byte sizes; same maxlen so both rings
        #: evict the same head entry on overflow
        self._sizes: deque[int] = deque(maxlen=capacity)
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self._samples_taken = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------------

    def sample(self, now: float | None = None) -> TimePoint:
        """Snapshot the registry into the ring; returns the new point."""
        registry = self.registry
        epoch = registry.resets
        counters = registry.merged_snapshot()
        gauges = registry.gauge_values()
        histograms = {}
        for hname, snap in registry.histogram_snapshots().items():
            histograms[hname] = (
                tuple(snap["bounds"]),
                tuple(int(c) for c in snap["counts"]),
                float(snap["sum"]),
                int(snap["count"]),
            )
        point = TimePoint(
            t=time.time() if now is None else now,
            epoch=epoch,
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )
        nbytes = deep_sizeof(point)
        with self._lock:
            if len(self._points) == self.capacity:
                self._resident_bytes -= self._sizes[0]
            self._points.append(point)
            self._sizes.append(nbytes)
            self._resident_bytes += nbytes
            self._samples_taken += 1
        return point

    @property
    def samples_taken(self) -> int:
        """Total snapshots ever taken (including ones the ring evicted)."""
        with self._lock:
            return self._samples_taken

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)

    def resident_bytes(self) -> int:
        """Measured bytes across the resident ring (O(1))."""
        with self._lock:
            return self._resident_bytes

    # -- background sampler --------------------------------------------------

    def start(
        self,
        interval_s: float,
        hooks: tuple[Callable[[TimePoint], object], ...] = (),
    ) -> "TimeSeriesStore":
        """Sample every ``interval_s`` on a daemon thread; returns self.

        Each tick appends one snapshot and then runs every hook with the
        fresh point (the alert evaluator attaches here so rules always
        see the sample that just landed).  Hook exceptions are swallowed
        — a broken rule must not kill the sampler.
        """
        if interval_s <= 0:
            raise MetricsError(
                f"sampler interval must be positive, got {interval_s}"
            )
        if self._thread is not None:
            return self

        def run() -> None:
            while not self._stop.is_set():
                point = self.sample()
                for hook in hooks:
                    try:
                        hook(point)
                    except Exception:  # pragma: no cover - defensive
                        pass
                self._stop.wait(interval_s)

        self._stop.clear()
        self._thread = threading.Thread(
            target=run, name=f"repro-obs-sampler-{self.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the background sampler (no-op when it never started)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None

    # -- window selection ----------------------------------------------------

    def points(self, window_s: float | None = None) -> list[TimePoint]:
        """Points inside the trailing window (oldest first; all if None)."""
        with self._lock:
            points = list(self._points)
        if window_s is None or not points:
            return points
        cutoff = points[-1].t - window_s
        return [p for p in points if p.t >= cutoff]

    def latest(self) -> TimePoint | None:
        with self._lock:
            return self._points[-1] if self._points else None

    # -- windowed counter math -----------------------------------------------

    def counter_delta(self, name: str, window_s: float) -> float:
        """Total (reset-aware) counter movement over the window."""
        points = self.points(window_s)
        return sum(
            _counter_delta(a, b, name) for a, b in zip(points, points[1:])
        )

    def counter_rate(self, name: str, window_s: float) -> float:
        """Per-second rate of a counter over the trailing window."""
        points = self.points(window_s)
        if len(points) < 2:
            return 0.0
        elapsed = points[-1].t - points[0].t
        if elapsed <= 0:
            return 0.0
        return self.counter_delta(name, window_s) / elapsed

    def counter_series(
        self, name: str, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """Per-interval (t, delta) pairs for one counter, reset-aware."""
        points = self.points(window_s)
        return [
            (b.t, _counter_delta(a, b, name))
            for a, b in zip(points, points[1:])
        ]

    def gauge_series(
        self, name: str, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """(t, value) pairs of one sampled gauge over the window."""
        return [
            (p.t, p.gauges[name])
            for p in self.points(window_s)
            if name in p.gauges
        ]

    def window_ratio(
        self, numerator: str, denominator_extra: str, window_s: float
    ) -> float | None:
        """``num / (num + extra)`` over window deltas (None when empty).

        The hit-rate shape: ``window_ratio("result_cache.hits",
        "result_cache.misses", 30)`` is the result-cache hit rate of the
        last 30 seconds, not of the whole process.
        """
        hits = self.counter_delta(numerator, window_s)
        misses = self.counter_delta(denominator_extra, window_s)
        total = hits + misses
        if total <= 0:
            return None
        return hits / total

    # -- windowed histogram math -----------------------------------------------

    def window_histogram(
        self, name: str, window_s: float
    ) -> tuple[tuple[float, ...], list[int]] | None:
        """``(bounds, per-bucket counts)`` for the trailing window.

        Histograms are cumulative over process life and survive cold
        resets, so the element-wise difference of the newest and oldest
        in-window bucket vectors *is* the histogram of observations made
        between those two samples.  Returns ``None`` when the metric is
        absent or the window holds fewer than two points.
        """
        points = self.points(window_s)
        first = next((p for p in points if name in p.histograms), None)
        last = next(
            (p for p in reversed(points) if name in p.histograms), None
        )
        if first is None or last is None or first is last:
            return None
        bounds, start_counts, _, _ = first.histograms[name]
        bounds_end, end_counts, _, _ = last.histograms[name]
        if bounds_end != bounds:  # re-registered with different buckets
            return None
        counts = [max(0, e - s) for s, e in zip(start_counts, end_counts)]
        return bounds, counts

    def window_count(self, name: str, window_s: float) -> int:
        """Histogram observations recorded inside the trailing window."""
        window = self.window_histogram(name, window_s)
        return sum(window[1]) if window else 0

    def window_quantile(
        self, name: str, q: float, window_s: float
    ) -> float | None:
        """Windowed latency quantile, or None without in-window data."""
        window = self.window_histogram(name, window_s)
        if window is None:
            return None
        bounds, counts = window
        if sum(counts) <= 0:
            return None
        return quantile_from_buckets(bounds, counts, q)

    def quantile_series(
        self, name: str, q: float, window_s: float | None = None
    ) -> list[tuple[float, float]]:
        """Per-interval (t, quantile) pairs from successive snapshots.

        Intervals where the histogram saw no observations are skipped —
        an idle stretch has no latency, rather than a misleading zero.
        """
        points = self.points(window_s)
        series: list[tuple[float, float]] = []
        for a, b in zip(points, points[1:]):
            if name not in a.histograms or name not in b.histograms:
                continue
            bounds, start_counts, _, _ = a.histograms[name]
            bounds_end, end_counts, _, _ = b.histograms[name]
            if bounds_end != bounds:
                continue
            counts = [
                max(0, e - s) for s, e in zip(start_counts, end_counts)
            ]
            if sum(counts) <= 0:
                continue
            series.append((b.t, quantile_from_buckets(bounds, counts, q)))
        return series

    # -- introspection ---------------------------------------------------------

    def metric_names(self) -> dict[str, str]:
        """Name -> kind (``counter``/``gauge``/``histogram``) at the
        newest sample (empty before the first one)."""
        latest = self.latest()
        if latest is None:
            return {}
        names: dict[str, str] = {}
        for name in latest.counters:
            names[name] = "counter"
        for name in latest.gauges:
            names[name] = "gauge"
        for name in latest.histograms:
            names[name] = "histogram"
        return dict(sorted(names.items()))

    def series_payload(
        self, metric: str, window_s: float = 60.0, q: float = 0.95
    ) -> dict | None:
        """The ``/timeseries/<metric>`` JSON body, or None when unknown.

        Counters report per-interval deltas plus the windowed rate;
        gauges report raw samples; histograms report the per-interval
        ``q``-quantile series plus the whole-window quantile and count.
        """
        kind = self.metric_names().get(metric)
        if kind is None:
            return None
        payload: dict = {
            "metric": metric,
            "kind": kind,
            "window_s": window_s,
            "samples": len(self),
        }
        if kind == "counter":
            payload["points"] = [
                {"t": t, "delta": v}
                for t, v in self.counter_series(metric, window_s)
            ]
            payload["rate_per_s"] = self.counter_rate(metric, window_s)
        elif kind == "gauge":
            payload["points"] = [
                {"t": t, "value": v}
                for t, v in self.gauge_series(metric, window_s)
            ]
        else:
            payload["quantile"] = q
            payload["points"] = [
                {"t": t, "value": v}
                for t, v in self.quantile_series(metric, q, window_s)
            ]
            payload["window_quantile_s"] = self.window_quantile(
                metric, q, window_s
            )
            payload["window_observations"] = self.window_count(
                metric, window_s
            )
        return payload
