"""Declarative SLO rules evaluated against the time-series store.

A service-level objective here is a small declarative rule — "the p99
query latency over the last 30 s stays under 2 s", "the result-cache
hit rate over the last 30 s stays above 5%", "no cube stays degraded
longer than 5 s", "the admission error budget burns slower than 10× in
both a short and a long window" — evaluated periodically against the
:class:`~repro.obs.timeseries.TimeSeriesStore` rather than against raw
instantaneous metrics, so one slow query or one cold tick cannot flap
an alert.

Rule kinds (the ``kind`` field of :class:`SloRule`):

``latency_quantile_ceiling``
    Windowed histogram quantile above a ceiling, with a minimum
    observation count so an idle window can never breach.  Also covers
    the WAL-fsync-stall rule (a fsync histogram is a latency histogram).
``hit_rate_floor``
    Windowed ``hits / (hits + misses)`` below a floor, with a minimum
    total so the first few lookups cannot breach.
``gauge_ceiling``
    A sampled gauge above a ceiling *sustained* for ``for_s`` seconds —
    the degraded-cube-duration rule.
``burn_rate``
    Google-SRE-style multi-window burn rate: the error ratio
    ``bad / total``, expressed as a multiple of the budget implied by
    ``objective``, must exceed ``factor`` in BOTH the short and the
    long window to fire (fast windows catch onset, long windows stop
    flapping).

The :class:`AlertManager` tracks firing/resolved state per rule,
records every transition into a bounded alert log, and — for latency
rules — links the slow-query fingerprints captured inside the breached
window, so ``/alerts`` output points at the offending queries without a
separate slowlog scrape.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import MetricsError
from repro.obs.slowlog import SlowQueryLog
from repro.obs.timeseries import TimePoint, TimeSeriesStore

KINDS = (
    "latency_quantile_ceiling",
    "hit_rate_floor",
    "gauge_ceiling",
    "burn_rate",
)

#: fingerprints linked per firing latency alert, newest first
MAX_LINKED_FINGERPRINTS = 8


@dataclass(frozen=True)
class SloRule:
    """One declarative SLO rule (see module docstring for kinds)."""

    name: str
    kind: str
    description: str = ""
    severity: str = "warn"
    #: trailing evaluation window, seconds (latency / hit-rate / burn short)
    window_s: float = 30.0
    # latency_quantile_ceiling / gauge_ceiling
    metric: str | None = None
    quantile: float = 0.99
    ceiling: float | None = None
    min_count: int = 1
    # gauge_ceiling
    for_s: float = 0.0
    # hit_rate_floor
    hits: str | None = None
    misses: str | None = None
    floor: float | None = None
    # burn_rate
    bad: str | None = None
    total: str | None = None
    objective: float = 0.99
    factor: float = 10.0
    long_window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise MetricsError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {KINDS})"
            )
        needed: tuple[str, ...]
        if self.kind == "latency_quantile_ceiling":
            needed = ("metric", "ceiling")
        elif self.kind == "gauge_ceiling":
            needed = ("metric", "ceiling")
        elif self.kind == "hit_rate_floor":
            needed = ("hits", "misses", "floor")
        else:
            needed = ("bad", "total")
        for attr in needed:
            if getattr(self, attr) is None:
                raise MetricsError(
                    f"rule {self.name!r} ({self.kind}) needs {attr!r}"
                )

    def to_dict(self) -> dict:
        """The JSON shape of this rule (defaults omitted)."""
        payload: dict = {"name": self.name, "kind": self.kind}
        if self.description:
            payload["description"] = self.description
        payload["severity"] = self.severity
        payload["window_s"] = self.window_s
        if self.kind == "latency_quantile_ceiling":
            payload.update(
                metric=self.metric,
                quantile=self.quantile,
                ceiling=self.ceiling,
                min_count=self.min_count,
            )
        elif self.kind == "gauge_ceiling":
            payload.update(
                metric=self.metric, ceiling=self.ceiling, for_s=self.for_s
            )
        elif self.kind == "hit_rate_floor":
            payload.update(
                hits=self.hits,
                misses=self.misses,
                floor=self.floor,
                min_count=self.min_count,
            )
        else:
            payload.update(
                bad=self.bad,
                total=self.total,
                objective=self.objective,
                factor=self.factor,
                long_window_s=self.long_window_s,
                min_count=self.min_count,
            )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SloRule":
        """Build a rule from its JSON form (unknown keys rejected)."""
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise MetricsError(
                f"rule {payload.get('name', '?')!r}: unknown keys "
                f"{sorted(unknown)}"
            )
        if "name" not in payload or "kind" not in payload:
            raise MetricsError("a rule needs at least 'name' and 'kind'")
        return cls(**payload)


def load_rules(path: str) -> list[SloRule]:
    """Parse a JSON rule file (a list of rule objects) into rules."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, list):
        raise MetricsError(f"{path}: expected a JSON array of rules")
    rules = [SloRule.from_dict(entry) for entry in payload]
    names = [rule.name for rule in rules]
    if len(set(names)) != len(names):
        raise MetricsError(f"{path}: duplicate rule names")
    return rules


def default_rules() -> list[SloRule]:
    """The shipped SLO rule set (mirrored in ``benchmarks/slo_rules.json``).

    Thresholds are deliberately lax: the healthy serving path at every
    scale must run a whole soak without a single firing, so CI can
    treat *any* default-rule transition as a regression.
    """
    return [
        SloRule(
            name="serve-latency-p99",
            kind="latency_quantile_ceiling",
            description="end-to-end p99 query latency ceiling",
            severity="page",
            metric="serve.query_latency_seconds",
            quantile=0.99,
            ceiling=2.0,
            window_s=30.0,
            min_count=20,
        ),
        SloRule(
            name="wal-fsync-stall",
            kind="latency_quantile_ceiling",
            description="WAL fsync p99 stall ceiling",
            severity="page",
            metric="wal.fsync_seconds",
            quantile=0.99,
            ceiling=1.0,
            window_s=30.0,
            min_count=5,
        ),
        SloRule(
            name="result-cache-hit-floor",
            kind="hit_rate_floor",
            description="windowed result-cache hit-rate floor",
            severity="warn",
            hits="result_cache.hits",
            misses="result_cache.misses",
            floor=0.05,
            window_s=30.0,
            min_count=50,
        ),
        SloRule(
            name="chunk-cache-hit-floor",
            kind="hit_rate_floor",
            description="windowed decoded-chunk-cache hit-rate floor",
            severity="warn",
            hits="chunk_cache.hits",
            misses="chunk_cache.misses",
            floor=0.05,
            window_s=30.0,
            min_count=50,
        ),
        SloRule(
            name="degraded-cube-duration",
            kind="gauge_ceiling",
            description="a cube stayed degraded too long",
            severity="page",
            metric="serve.degraded_cubes",
            ceiling=0.0,
            for_s=5.0,
            window_s=30.0,
        ),
        SloRule(
            name="admission-burn-rate",
            kind="burn_rate",
            description="admission rejections burning the error budget "
            "in both windows",
            severity="page",
            bad="serve.rejected",
            total="serve.admitted",
            objective=0.99,
            factor=10.0,
            window_s=5.0,
            long_window_s=60.0,
            min_count=20,
        ),
        SloRule(
            name="memory-resident-ceiling",
            kind="gauge_ceiling",
            description="accounted resident set stayed above the "
            "process memory ceiling",
            severity="page",
            metric="memory.total_resident_bytes",
            ceiling=2.0 * 1024**3,
            for_s=5.0,
            window_s=30.0,
        ),
    ]


@dataclass
class _RuleState:
    firing: bool = False
    since: float | None = None
    last_value: float | None = None
    firings: int = 0


class AlertManager:
    """Evaluates rules against a TSDB; tracks firing state + alert log."""

    def __init__(
        self,
        timeseries: TimeSeriesStore,
        rules: list[SloRule] | None = None,
        slowlog: SlowQueryLog | None = None,
        log_capacity: int = 256,
    ):
        self.timeseries = timeseries
        self.slowlog = slowlog
        self._rules: dict[str, SloRule] = {}
        self._states: dict[str, _RuleState] = {}
        self._events: deque[dict] = deque(maxlen=log_capacity)
        self._lock = threading.RLock()
        self._evaluations = 0
        for rule in default_rules() if rules is None else rules:
            self.add_rule(rule)

    # -- rule set ------------------------------------------------------------

    def add_rule(self, rule: SloRule) -> None:
        with self._lock:
            if rule.name in self._rules:
                raise MetricsError(f"rule {rule.name!r} already installed")
            self._rules[rule.name] = rule
            self._states[rule.name] = _RuleState()

    def remove_rule(self, name: str) -> None:
        with self._lock:
            if name not in self._rules:
                raise MetricsError(f"no rule named {name!r}")
            del self._rules[name]
            del self._states[name]

    def rules(self) -> list[SloRule]:
        with self._lock:
            return list(self._rules.values())

    # -- evaluation ----------------------------------------------------------

    def _check(
        self, rule: SloRule, now: float
    ) -> tuple[bool, float | None, float]:
        """``(breached, observed value, threshold)`` for one rule."""
        tsdb = self.timeseries
        if rule.kind == "latency_quantile_ceiling":
            assert rule.metric is not None and rule.ceiling is not None
            count = tsdb.window_count(rule.metric, rule.window_s)
            value = tsdb.window_quantile(
                rule.metric, rule.quantile, rule.window_s
            )
            breached = (
                value is not None
                and count >= rule.min_count
                and value > rule.ceiling
            )
            return breached, value, rule.ceiling
        if rule.kind == "hit_rate_floor":
            assert rule.hits and rule.misses and rule.floor is not None
            hits = tsdb.counter_delta(rule.hits, rule.window_s)
            misses = tsdb.counter_delta(rule.misses, rule.window_s)
            total = hits + misses
            value = hits / total if total > 0 else None
            breached = (
                value is not None
                and total >= rule.min_count
                and value < rule.floor
            )
            return breached, value, rule.floor
        if rule.kind == "gauge_ceiling":
            assert rule.metric is not None and rule.ceiling is not None
            series = tsdb.gauge_series(rule.metric)
            if not series:
                return False, None, rule.ceiling
            value = series[-1][1]
            if value <= rule.ceiling:
                return False, value, rule.ceiling
            # sustained-for: how long since the gauge last satisfied the
            # ceiling (or since the first sample, when it never did)
            ok_at = series[0][0]
            for t, sample in series:
                if sample <= rule.ceiling:
                    ok_at = t
            sustained = now - ok_at
            return sustained >= rule.for_s, value, rule.ceiling
        # burn_rate
        assert rule.bad and rule.total
        budget = max(1e-9, 1.0 - rule.objective)

        def burn(window_s: float) -> float | None:
            bad = tsdb.counter_delta(rule.bad, window_s)  # type: ignore[arg-type]
            total = tsdb.counter_delta(rule.total, window_s)  # type: ignore[arg-type]
            if total < rule.min_count:
                return None
            return (bad / total) / budget

        short = burn(rule.window_s)
        long = burn(rule.long_window_s)
        breached = (
            short is not None
            and long is not None
            and short > rule.factor
            and long > rule.factor
        )
        return breached, short, rule.factor

    def _link_slowlog(self, rule: SloRule, now: float) -> dict:
        """Fingerprints captured inside the breached window, for the log."""
        if self.slowlog is None:
            return {}
        cutoff = now - rule.window_s
        fingerprints: list[str] = []
        for entry in reversed(self.slowlog.entries()):
            if entry.captured_at < cutoff:
                continue
            if entry.fingerprint not in fingerprints:
                fingerprints.append(entry.fingerprint)
            if len(fingerprints) >= MAX_LINKED_FINGERPRINTS:
                break
        if not fingerprints:
            return {"note": "slowlog ring empty in window"}
        return {"fingerprints": fingerprints}

    def evaluate(
        self, point: TimePoint | None = None, now: float | None = None
    ) -> list[dict]:
        """Evaluate every rule; returns the transitions made this pass.

        Safe to call from the sampler hook (it passes the fresh
        :class:`TimePoint`) or directly with ``now`` for tests.
        """
        if now is None:
            now = point.t if point is not None else time.time()
        transitions: list[dict] = []
        with self._lock:
            rules = list(self._rules.items())
        for name, rule in rules:
            breached, value, threshold = self._check(rule, now)
            with self._lock:
                state = self._states.get(name)
                if state is None:  # removed mid-pass
                    continue
                state.last_value = value
                if breached == state.firing:
                    continue
                state.firing = breached
                event = {
                    "rule": name,
                    "kind": rule.kind,
                    "severity": rule.severity,
                    "state": "firing" if breached else "resolved",
                    "at": now,
                    "value": value,
                    "threshold": threshold,
                }
                if breached:
                    state.since = now
                    state.firings += 1
                    if rule.kind == "latency_quantile_ceiling":
                        event.update(self._link_slowlog(rule, now))
                else:
                    event["fired_at"] = state.since
                    state.since = None
                self._events.append(event)
                transitions.append(event)
        with self._lock:
            self._evaluations += 1
        return transitions

    # -- reading -------------------------------------------------------------

    @property
    def evaluations(self) -> int:
        with self._lock:
            return self._evaluations

    def firing(self) -> list[dict]:
        """Currently-firing rules, as JSON-able dicts."""
        with self._lock:
            out = []
            for name, state in self._states.items():
                if not state.firing:
                    continue
                rule = self._rules[name]
                out.append(
                    {
                        "rule": name,
                        "kind": rule.kind,
                        "severity": rule.severity,
                        "since": state.since,
                        "value": state.last_value,
                    }
                )
            return out

    def firing_count(self) -> int:
        with self._lock:
            return sum(1 for s in self._states.values() if s.firing)

    def firings(self, rule: str) -> int:
        """How many times one rule has transitioned to firing, ever."""
        with self._lock:
            state = self._states.get(rule)
            return state.firings if state is not None else 0

    def events(self) -> list[dict]:
        """The alert log (firing/resolved transitions), oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    def to_dict(self) -> dict:
        """The ``/alerts`` JSON body."""
        with self._lock:
            rules = [rule.to_dict() for rule in self._rules.values()]
        return {
            "firing": self.firing(),
            "events": self.events(),
            "rules": rules,
            "evaluations": self.evaluations,
        }
