"""Fixed log-scale latency histograms.

The serving layer needs percentile-level latency (p50/p95/p99 of query
latency, queue wait, WAL fsync, cache lookups) that is cheap to record
on every observation, mergeable across threads, and exportable as a
Prometheus histogram (``_bucket``/``_sum``/``_count`` series).  A
:class:`Histogram` holds a fixed set of log-scale bucket upper bounds —
by default 28 power-of-two buckets from 1 µs to ≈134 s, which covers
everything from a result-cache hit to a pathological cold run at ≤2×
relative error — plus one overflow bucket.

Quantiles are estimated the way Prometheus's ``histogram_quantile``
does: find the bucket where the cumulative count crosses the rank and
interpolate linearly inside it.  Two histograms with the same bounds
merge by adding counts, so per-thread histograms can be combined into
one without locks on the hot path (each histogram is itself
thread-safe, so the in-tree consumers simply share one).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from repro.errors import MetricsError

#: power-of-two bucket upper bounds, 1 µs .. ~134 s (28 buckets)
DEFAULT_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(28))


def quantile_from_buckets(
    bounds: list[float] | tuple[float, ...],
    counts: list[float],
    q: float,
) -> float:
    """Estimate the ``q``-quantile from per-bucket counts.

    ``counts`` has one entry per bound plus a final overflow count.
    Observations in the overflow bucket report the largest finite
    bound (there is no upper edge to interpolate toward).  An empty
    histogram reports 0.0.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricsError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cumulative = 0.0
    for i, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count > 0:
            if i >= len(bounds):  # overflow bucket: no finite upper edge
                return float(bounds[-1])
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i]
            # linear interpolation inside the bucket, Prometheus-style
            into = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * into
    return float(bounds[-1])


class Histogram:
    """Thread-safe fixed-bucket histogram of (latency) observations.

    Each bucket additionally keeps one *exemplar* — the trace_id and
    value of the last observation recorded into it with a trace_id —
    so a percentile read maps back to a concrete trace in the
    :class:`~repro.obs.tracing.TraceStore` (``repro top`` and the soak
    artifact surface these).
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count", "_exemplars", "_lock")

    def __init__(self, bounds: tuple[float, ...] | None = None):
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if not bounds:
            raise MetricsError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise MetricsError("histogram bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        # per-bucket (trace_id, value) of the last traced observation
        self._exemplars: list[tuple[str, float] | None] = [None] * (
            len(bounds) + 1
        )
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def observe(self, value: float, trace_id: str | None = None) -> None:
        """Record one observation (negative values clamp to bucket 0)."""
        index = bisect_left(self.bounds, value) if value > 0 else 0
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if trace_id is not None:
                self._exemplars[index] = (str(trace_id), float(value))

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise MetricsError(
                "cannot merge histograms with different bucket bounds"
            )
        with other._lock:
            counts = list(other._counts)
            exemplars = list(other._exemplars)
            total, count = other._sum, other._count
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
                if exemplars[i] is not None:
                    self._exemplars[i] = exemplars[i]
            self._sum += total
            self._count += count

    def reset(self) -> None:
        """Zero every bucket (histograms are normally cumulative)."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0
            self._exemplars = [None] * (len(self.bounds) + 1)

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def exemplars(self) -> list[tuple[str, float] | None]:
        """Per-bucket ``(trace_id, value)`` exemplars (``None`` = none).

        Aligned with :meth:`bucket_counts`; the last entry is the
        overflow bucket's.
        """
        with self._lock:
            return list(self._exemplars)

    def exemplar_for_quantile(self, q: float) -> tuple[str, float] | None:
        """The exemplar of the bucket the ``q``-quantile falls in.

        Walks outward from the quantile's bucket toward slower buckets
        (then faster) so a p95 read still links *some* nearby trace
        when the exact bucket never saw a traced observation.
        """
        with self._lock:
            counts = list(self._counts)
            exemplars = list(self._exemplars)
        total = sum(counts)
        if total <= 0:
            return None
        rank = q * total
        cumulative = 0.0
        index = len(counts) - 1
        for i, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank and count > 0:
                index = i
                break
        for i in list(range(index, len(exemplars))) + list(
            range(index - 1, -1, -1)
        ):
            if exemplars[i] is not None:
                return exemplars[i]
        return None

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (linear interpolation in-bucket)."""
        with self._lock:
            counts = list(self._counts)
        return quantile_from_buckets(self.bounds, counts, q)

    def percentiles(self) -> dict[str, float]:
        """The serving dashboard's p50/p95/p99 in one consistent read."""
        with self._lock:
            counts = list(self._counts)
        return {
            "p50": quantile_from_buckets(self.bounds, counts, 0.50),
            "p95": quantile_from_buckets(self.bounds, counts, 0.95),
            "p99": quantile_from_buckets(self.bounds, counts, 0.99),
        }

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (consistent under concurrency)."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
                "exemplars": [
                    list(e) if e is not None else None
                    for e in self._exemplars
                ],
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        histogram = cls(tuple(payload["bounds"]))
        counts = list(payload["counts"])
        if len(counts) != len(histogram._counts):
            raise MetricsError(
                f"histogram payload has {len(counts)} buckets, bounds "
                f"imply {len(histogram._counts)}"
            )
        histogram._counts = [int(c) for c in counts]
        histogram._sum = float(payload["sum"])
        histogram._count = int(payload["count"])
        exemplars = payload.get("exemplars")
        if exemplars is not None and len(exemplars) == len(counts):
            histogram._exemplars = [
                (str(e[0]), float(e[1])) if e is not None else None
                for e in exemplars
            ]
        return histogram

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self._count}, sum={self._sum:.6g}, "
            f"buckets={len(self.bounds)})"
        )
