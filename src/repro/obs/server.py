"""The live observability endpoint: stdlib HTTP over the registry.

``ObservabilityServer`` serves four routes from a daemon thread:

- ``/metrics``  — the registry in Prometheus exposition text format
  (counters, gauges, and latency histograms as ``_bucket``/``_sum``/
  ``_count`` series);
- ``/healthz``  — JSON liveness: ``ok`` (HTTP 200) or ``degraded``
  (HTTP 503) with the degraded cube list, in-flight depth and recovery
  counters, read from an attached
  :class:`~repro.serve.service.QueryService`;
- ``/slowlog``  — the slow-query ring buffer as JSON;
- ``/trace/<fingerprint>`` — the most recent captured profile (span
  tree + counter deltas + plan choice) for one query fingerprint;
- ``/traces`` — the flight-recorder index (recent distributed traces,
  newest first), and ``/trace/id/<trace_id>`` — one full trace: span
  trees with per-span counter deltas, follows-from links, outcome;
- ``/explain`` — the fingerprints currently in the plan cache, and
  ``/explain/<fingerprint>`` — that query's cached EXPLAIN payload
  (estimate-vs-actual per plan node when it was ANALYZE'd);
- ``/heatmap/<cube>`` — the cumulative chunk access heatmap of one
  cube's array (logical accesses and disk reads per chunk number);
- ``/timeseries`` — the metrics the time-series store knows about, and
  ``/timeseries/<metric>?seconds=N&q=Q`` — that metric's trailing
  window as points (counter deltas + rate, gauge samples, or windowed
  histogram quantiles);
- ``/alerts`` — currently-firing SLO rules, the firing/resolved alert
  log (with linked slow-query fingerprints for latency alerts), and
  the installed rule set;
- ``/profile`` — the sampling profiler's collapsed stacks and
  attribution statistics;
- ``/memory`` — the memory accountant's resident-set breakdown: total
  and per-store ``resident_bytes``, the top-N largest entries, and the
  pressure/reclaim counters (``?top=N`` controls the entry list).

Everything is read-only and stdlib-only (``http.server``), so the
endpoint works in the bare CI container and maps 1:1 onto a real
Prometheus + probe deployment.  Bind to port 0 to get an ephemeral
port (tests do); the bound port is available as :attr:`port` after
:meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.exporters import prometheus_text
from repro.obs.explain import PlanCache
from repro.obs.registry import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serve.service import QueryService


class ObservabilityServer:
    """Serves ``/metrics``, ``/healthz``, ``/slowlog``, ``/trace/*``,
    ``/explain/*``, ``/heatmap/*``, ``/timeseries/*``, ``/alerts``,
    ``/profile`` and ``/memory``."""

    def __init__(
        self,
        registry: MetricsRegistry,
        service: "QueryService | None" = None,
        slowlog: SlowQueryLog | None = None,
        plans: PlanCache | None = None,
        timeseries=None,
        alerts=None,
        profiler=None,
        traces=None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
    ):
        self.registry = registry
        self.service = service
        if slowlog is None and service is not None:
            slowlog = getattr(service, "slowlog", None)
        self.slowlog = slowlog
        if plans is None and service is not None:
            plans = getattr(service, "plans", None)
        self.plans = plans
        # the temporal layer defaults from the attached service, like
        # the slowlog and plan cache do
        if timeseries is None and service is not None:
            timeseries = getattr(service, "timeseries", None)
        self.timeseries = timeseries
        if alerts is None and service is not None:
            alerts = getattr(service, "alerts", None)
        self.alerts = alerts
        if profiler is None and service is not None:
            profiler = getattr(service, "profiler", None)
        self.profiler = profiler
        if traces is None and service is not None:
            traces = getattr(service, "traces", None)
        self.traces = traces
        #: the memory accountant defaults from the attached service too
        self.memory = (
            getattr(service, "memory", None) if service is not None else None
        )
        self.host = host
        self.prefix = prefix
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- route payloads ------------------------------------------------------

    def metrics_payload(self) -> str:
        """The Prometheus text for the current registry state."""
        return prometheus_text(self.registry, prefix=self.prefix)

    def health_payload(self) -> tuple[int, dict]:
        """``(http_status, body)`` for ``/healthz``."""
        if self.service is None:
            return 200, {"status": "ok", "service": "detached"}
        degraded = self.service.degraded_cubes()
        body = {
            "status": "degraded" if degraded else "ok",
            "degraded_cubes": degraded,
            "in_flight": self.service.in_flight,
            "recoveries": self.service.counters.get("serve.recoveries"),
            "degradations": self.service.counters.get("serve.degradations"),
        }
        return (503 if degraded else 200), body

    def slowlog_payload(self) -> list[dict]:
        if self.slowlog is None:
            return []
        return [entry.to_dict() for entry in self.slowlog.entries()]

    def trace_payload(self, fingerprint: str) -> dict | None:
        if self.slowlog is None:
            return None
        entry = self.slowlog.find(fingerprint)
        return entry.to_dict() if entry is not None else None

    def traces_index_payload(self, limit: int = 50) -> tuple[int, dict]:
        """``/traces``: the flight recorder's recent-trace index."""
        if self.traces is None:
            return 404, {"error": "no trace store attached"}
        return 200, {
            "traces": self.traces.index(limit=limit),
            "stored": self.traces.resident(),
            "capacity": self.traces.capacity,
            "counters": self.traces.counters.snapshot(),
        }

    def trace_by_id_payload(self, trace_id: str) -> tuple[int, dict]:
        """``/trace/id/<trace_id>``: one full distributed trace."""
        if self.traces is None:
            return 404, {"error": "no trace store attached"}
        record = self.traces.get(trace_id.strip().lower())
        if record is None:
            return 404, {"error": f"no trace with id {trace_id!r}"}
        return 200, record.to_dict()

    def explain_index_payload(self) -> dict:
        """``/explain``: the fingerprints currently cached, oldest first."""
        fingerprints = self.plans.fingerprints() if self.plans else []
        return {"fingerprints": fingerprints, "count": len(fingerprints)}

    def explain_payload(self, fingerprint: str) -> dict | None:
        if self.plans is None:
            return None
        return self.plans.get(fingerprint)

    def timeseries_index_payload(self) -> tuple[int, dict]:
        """``/timeseries``: every known metric name and its kind."""
        if self.timeseries is None:
            return 404, {"error": "no time-series store attached"}
        return 200, {
            "metrics": self.timeseries.metric_names(),
            "samples": len(self.timeseries),
            "samples_taken": self.timeseries.samples_taken,
            "capacity": self.timeseries.capacity,
        }

    def timeseries_payload(
        self, metric: str, seconds: float = 60.0, q: float = 0.95
    ) -> tuple[int, dict]:
        """``/timeseries/<metric>``: one metric's trailing window."""
        if self.timeseries is None:
            return 404, {"error": "no time-series store attached"}
        payload = self.timeseries.series_payload(metric, seconds, q)
        if payload is None:
            return 404, {
                "error": f"no metric named {metric!r} in the store",
                "metrics": sorted(self.timeseries.metric_names()),
            }
        return 200, payload

    def alerts_payload(self) -> tuple[int, dict]:
        if self.alerts is None:
            return 404, {"error": "no alert manager attached"}
        return 200, self.alerts.to_dict()

    def profile_payload(self) -> tuple[int, dict]:
        if self.profiler is None:
            return 404, {"error": "no profiler attached"}
        return 200, self.profiler.to_dict()

    def memory_payload(self, top: int = 10) -> tuple[int, dict]:
        """``/memory``: the resident-set breakdown by store."""
        if self.memory is None:
            return 404, {"error": "no memory accountant attached"}
        return 200, self.memory.payload(top_n=max(1, top))

    def heatmap_payload(self, cube: str) -> tuple[int, dict]:
        """``(http_status, body)`` for ``/heatmap/<cube>``."""
        if self.service is None:
            return 404, {"error": "no service attached"}
        from repro.errors import ReproError

        try:
            return 200, self.service.engine.chunk_heatmap(cube)
        except ReproError as exc:
            return 404, {"error": str(exc)}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        """Bind and serve from a daemon thread; returns ``self``."""
        if self._httpd is not None:
            return self
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence per-request noise
                pass

            def _send(
                self, status: int, body: bytes, content_type: str
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, status: int, payload) -> None:
                body = json.dumps(payload, indent=2).encode("utf-8")
                self._send(status, body, "application/json; charset=utf-8")

            def _query_params(self) -> dict[str, str]:
                parts = self.path.split("?", 1)
                if len(parts) != 2:
                    return {}
                from urllib.parse import parse_qsl

                return dict(parse_qsl(parts[1]))

            @staticmethod
            def _float_param(
                params: dict[str, str], name: str, default: float
            ) -> float:
                try:
                    return float(params.get(name, default))
                except (TypeError, ValueError):
                    return default

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        body = endpoint.metrics_payload().encode("utf-8")
                        self._send(
                            200, body, "text/plain; version=0.0.4; charset=utf-8"
                        )
                    elif path == "/healthz":
                        status, payload = endpoint.health_payload()
                        self._send_json(status, payload)
                    elif path == "/slowlog":
                        self._send_json(200, endpoint.slowlog_payload())
                    elif path == "/traces":
                        params = self._query_params()
                        limit = int(
                            self._float_param(params, "limit", 50.0)
                        )
                        status, payload = endpoint.traces_index_payload(
                            limit=max(1, limit)
                        )
                        self._send_json(status, payload)
                    elif path.startswith("/trace/id/"):
                        trace_id = path[len("/trace/id/") :]
                        status, payload = endpoint.trace_by_id_payload(
                            trace_id
                        )
                        self._send_json(status, payload)
                    elif path.startswith("/trace/"):
                        fingerprint = path[len("/trace/") :]
                        payload = endpoint.trace_payload(fingerprint)
                        if payload is None:
                            self._send_json(
                                404,
                                {"error": f"no trace for {fingerprint!r}"},
                            )
                        else:
                            self._send_json(200, payload)
                    elif path == "/explain":
                        self._send_json(200, endpoint.explain_index_payload())
                    elif path.startswith("/explain/"):
                        fingerprint = path[len("/explain/") :]
                        payload = endpoint.explain_payload(fingerprint)
                        if payload is None:
                            self._send_json(
                                404,
                                {"error": f"no plan for {fingerprint!r}"},
                            )
                        else:
                            self._send_json(200, payload)
                    elif path.startswith("/heatmap/"):
                        cube = path[len("/heatmap/") :]
                        status, payload = endpoint.heatmap_payload(cube)
                        self._send_json(status, payload)
                    elif path == "/timeseries":
                        status, payload = endpoint.timeseries_index_payload()
                        self._send_json(status, payload)
                    elif path.startswith("/timeseries/"):
                        metric = path[len("/timeseries/") :]
                        params = self._query_params()
                        status, payload = endpoint.timeseries_payload(
                            metric,
                            seconds=self._float_param(params, "seconds", 60.0),
                            q=self._float_param(params, "q", 0.95),
                        )
                        self._send_json(status, payload)
                    elif path == "/alerts":
                        status, payload = endpoint.alerts_payload()
                        self._send_json(status, payload)
                    elif path == "/profile":
                        status, payload = endpoint.profile_payload()
                        self._send_json(status, payload)
                    elif path == "/memory":
                        params = self._query_params()
                        top = int(self._float_param(params, "top", 10.0))
                        status, payload = endpoint.memory_payload(top=top)
                        self._send_json(status, payload)
                    else:
                        self._send_json(
                            404,
                            {
                                "error": f"unknown route {path!r}",
                                "routes": [
                                    "/metrics",
                                    "/healthz",
                                    "/slowlog",
                                    "/traces",
                                    "/trace/id/<trace_id>",
                                    "/trace/<fingerprint>",
                                    "/explain",
                                    "/explain/<fingerprint>",
                                    "/heatmap/<cube>",
                                    "/timeseries",
                                    "/timeseries/<metric>",
                                    "/alerts",
                                    "/profile",
                                    "/memory",
                                ],
                            },
                        )
                except BrokenPipeError:  # pragma: no cover - client went away
                    pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running endpoint."""
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
