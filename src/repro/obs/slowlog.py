"""Structured slow-query log: a ring buffer of profiled outliers.

Percentile histograms say *that* the tail is slow; the slow-query log
says *why*.  Queries whose end-to-end latency crosses a configurable
threshold capture a full profile — the span tree of the execution
(phase timings plus per-phase counter deltas), the counter totals, the
plan choice (which backend ran and why the planner picked it) and the
cache disposition — into a bounded ring buffer.  The newest entries
win: under a retry storm the buffer holds the most recent evidence,
not the oldest.

The buffer is dumpable as JSON (``python -m repro slowlog``, or the
live ``/slowlog`` endpoint) and addressable by query fingerprint
(``/trace/<fingerprint>``), so "what happened to this exact query
shape" is one lookup.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.exporters import span_to_dict
from repro.obs.memory import deep_sizeof
from repro.obs.tracer import Span


@dataclass(frozen=True)
class SlowQueryRecord:
    """One profiled slow query."""

    #: canonical query fingerprint (see :mod:`repro.serve.fingerprint`)
    fingerprint: str
    cube: str
    #: the backend that actually executed (planner-resolved)
    backend: str
    #: client-observed end-to-end latency, seconds
    latency_s: float
    #: the threshold that was in force when this was captured
    threshold_s: float
    #: unix timestamp of capture
    captured_at: float
    #: "hit" / "miss" — the result-cache disposition
    cache: str
    #: planner context: requested backend, chosen backend, reason
    plan: dict = field(default_factory=dict)
    #: counter deltas over the whole query (root span's inclusive I/O)
    counters: dict = field(default_factory=dict)
    #: full span trees recorded during the execution (usually one root)
    trace: list = field(default_factory=list)
    #: analyzed EXPLAIN plan for the slow run, when the serving layer
    #: could build one (estimate-vs-actual per plan node)
    explain: dict | None = None
    #: distributed trace id of the request that ran slow, when one was
    #: active — the ``/trace/id/<trace_id>`` key
    trace_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "cube": self.cube,
            "backend": self.backend,
            "latency_s": self.latency_s,
            "threshold_s": self.threshold_s,
            "captured_at": self.captured_at,
            "cache": self.cache,
            "plan": dict(self.plan),
            "counters": dict(self.counters),
            "trace": list(self.trace),
            "explain": dict(self.explain) if self.explain else None,
            "trace_id": self.trace_id,
        }


def _plan_from_trace(roots: list[Span]) -> dict:
    """Pull the planner's choice out of the recorded span tree."""
    for root in roots:
        span = root.find("query")
        if span is not None:
            return {
                "backend": span.attrs.get("backend"),
                "reason": span.attrs.get("planner_reason", "explicit"),
            }
    return {}


class SlowQueryLog:
    """Thread-safe ring buffer of :class:`SlowQueryRecord` entries."""

    def __init__(self, capacity: int = 64, threshold_s: float = 0.25):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.threshold_s = threshold_s
        self._entries: deque[SlowQueryRecord] = deque(maxlen=capacity)
        #: parallel per-record byte sizes; same maxlen so both rings
        #: evict the same head entry on overflow
        self._sizes: deque[int] = deque(maxlen=capacity)
        self._resident_bytes = 0
        self._lock = threading.Lock()
        self._captured = 0

    def should_capture(self, latency_s: float) -> bool:
        """Whether a query this slow crosses the logging threshold."""
        return latency_s >= self.threshold_s

    def record(
        self,
        fingerprint: str,
        cube: str,
        backend: str,
        latency_s: float,
        roots: list[Span] | None = None,
        cache: str = "miss",
        requested_backend: str | None = None,
        explain: dict | None = None,
        trace_id: str | None = None,
    ) -> SlowQueryRecord | None:
        """Capture one slow query; returns the record, or ``None`` when
        the latency is under the threshold (callers may invoke this
        unconditionally)."""
        if not self.should_capture(latency_s):
            return None
        roots = roots or []
        plan = _plan_from_trace(roots)
        if requested_backend is not None:
            plan.setdefault("requested", requested_backend)
        counters: dict = {}
        for root in roots:
            for name, value in root.io.items():
                counters[name] = counters.get(name, 0.0) + value
        entry = SlowQueryRecord(
            fingerprint=fingerprint,
            cube=cube,
            backend=backend,
            latency_s=latency_s,
            threshold_s=self.threshold_s,
            captured_at=time.time(),
            cache=cache,
            plan=plan,
            counters=counters,
            trace=[span_to_dict(root) for root in roots],
            explain=explain,
            trace_id=trace_id,
        )
        nbytes = deep_sizeof(entry)
        with self._lock:
            if len(self._entries) == self.capacity:
                self._resident_bytes -= self._sizes[0]
            self._entries.append(entry)
            self._sizes.append(nbytes)
            self._resident_bytes += nbytes
            self._captured += 1
        return entry

    # -- reading -------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def captured(self) -> int:
        """Total records ever captured (including ones the ring evicted)."""
        with self._lock:
            return self._captured

    def entries(self) -> list[SlowQueryRecord]:
        """Current records, oldest first."""
        with self._lock:
            return list(self._entries)

    def find(self, fingerprint: str) -> SlowQueryRecord | None:
        """The most recent record for one query fingerprint, if any."""
        with self._lock:
            for entry in reversed(self._entries):
                if entry.fingerprint == fingerprint:
                    return entry
        return None

    def to_json(self, indent: int | None = 2) -> str:
        """The whole ring as a JSON array (oldest first)."""
        return json.dumps(
            [entry.to_dict() for entry in self.entries()], indent=indent
        )

    def resident_bytes(self) -> int:
        """Measured bytes across the resident ring (O(1))."""
        with self._lock:
            return self._resident_bytes

    def reclaim(self, target_bytes: int) -> int:
        """Drop oldest records until at most ``target_bytes`` remain.

        Telemetry is the cheapest resident data to shed under memory
        pressure: a dropped slowlog record costs one debugging
        breadcrumb, never a wrong answer.  Returns bytes freed.
        """
        freed = 0
        with self._lock:
            while self._entries and self._resident_bytes - freed > target_bytes:
                self._entries.popleft()
                freed += self._sizes.popleft()
            self._resident_bytes -= freed
        return freed

    def clear(self) -> None:
        """Drop every record (the capture total is kept)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._resident_bytes = 0
