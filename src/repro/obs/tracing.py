"""Distributed trace context and the flight-recorder trace store.

The span :class:`~repro.obs.tracer.Tracer` from the observability core
is strictly in-process: each tracer records one tree and the active
tracer is a thread-local.  This module adds the *cross-domain* layer —
Dapper-style identity that survives thread pools, process shard workers
and background rollup rebuilds:

- :class:`TraceContext` is the propagated identity: a 128-bit
  ``trace_id`` plus a 64-bit ``span_id``/``parent_span_id`` pair and a
  head-sampling flag.  Contexts are minted at every entry point (an API
  request, ``QueryService.query``, a CLI run), carried across threads
  explicitly (capture at submit, install in the worker via
  :class:`trace_context`) and across processes as a plain dict inside
  the shard task payload.
- Follows-from links record *causal but asynchronous* relationships:
  a stale-grain rollup fallback schedules a background rebuild under a
  fresh trace, and both sides carry a link to the other
  (:func:`add_trace_link`), so the request's trace answers "which build
  did I schedule?" and the build's trace answers "who asked for this?".
- :class:`TraceStore` is the flight recorder: a bounded, thread-safe
  ring keyed by trace_id.  Sampling is always-on for slow, errored or
  explicitly-requested traces and probabilistic otherwise; several
  layers (API handler, query service) contribute spans to the same
  trace_id and the store merges them into one record.
"""

from __future__ import annotations

import os
import random
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.memory import deep_sizeof
from repro.util.stats import Counters

_TRACE_ID_RE = re.compile(r"^[0-9a-f]{32}$")


def _hex_id(n_bytes: int) -> str:
    return os.urandom(n_bytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one logical request.

    ``trace_id`` is 128-bit (32 hex chars) and names the whole request;
    ``span_id`` is 64-bit and names the minting site's own span within
    it; ``parent_span_id`` is the minter's parent (``None`` at an entry
    point).  ``sampled`` is the head-sampling decision made at mint
    time — the :class:`TraceStore` still force-keeps slow and errored
    traces regardless.  The frozen dataclass is picklable as-is, but
    process boundaries ship the explicit :meth:`to_dict` form so worker
    task payloads stay plain dicts.
    """

    trace_id: str
    span_id: str
    parent_span_id: str | None = None
    sampled: bool = True
    origin: str = ""

    def child(self, origin: str | None = None) -> "TraceContext":
        """A new context one hop down: same trace, fresh span identity."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_hex_id(8),
            parent_span_id=self.span_id,
            sampled=self.sampled,
            origin=self.origin if origin is None else origin,
        )

    def to_dict(self) -> dict:
        """A plain-dict form for task payloads and JSON bodies."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "sampled": self.sampled,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceContext":
        """Rebuild a context from :meth:`to_dict` output."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_span_id=payload.get("parent_span_id"),
            sampled=bool(payload.get("sampled", True)),
            origin=str(payload.get("origin", "")),
        )


def new_trace_context(
    origin: str = "", sampled: bool = True
) -> TraceContext:
    """Mint a fresh root context (new 128-bit trace, no parent)."""
    return TraceContext(
        trace_id=_hex_id(16),
        span_id=_hex_id(8),
        parent_span_id=None,
        sampled=sampled,
        origin=origin,
    )


def adopt_trace_id(
    trace_id: str | None, origin: str = ""
) -> TraceContext | None:
    """Adopt an inbound ``X-Trace-Id`` header value, if well-formed.

    Adopted traces are always sampled: a caller that went to the
    trouble of sending an id is asking to find the trace later
    (the "explicit" arm of the sampling policy).  Malformed ids are
    rejected (``None``) rather than propagated, so a garbage header
    cannot pollute the store keyspace.
    """
    if trace_id is None:
        return None
    candidate = trace_id.strip().lower()
    if not _TRACE_ID_RE.match(candidate):
        return None
    return TraceContext(
        trace_id=candidate,
        span_id=_hex_id(8),
        parent_span_id=None,
        sampled=True,
        origin=origin,
    )


# -- thread-local propagation -------------------------------------------------

_thread_state = threading.local()


def current_trace_context() -> TraceContext | None:
    """The context installed on this thread, or ``None``."""
    return getattr(_thread_state, "context", None)


class trace_context:
    """Install a :class:`TraceContext` on this thread for a ``with`` block.

    Mirrors :class:`~repro.obs.tracer.thread_tracing`: the serving
    pool's worker threads install the submitting request's context so
    everything below (engine, scatter, rollup scheduling) can read it
    without threading a parameter through every signature.  Each block
    also gets a fresh link buffer for :func:`add_trace_link`.
    """

    def __init__(self, context: TraceContext | None):
        self.context = context
        self._previous: tuple[TraceContext | None, list[dict]] | None = None

    def __enter__(self) -> TraceContext | None:
        self._previous = (
            getattr(_thread_state, "context", None),
            getattr(_thread_state, "links", []),
        )
        _thread_state.context = self.context
        _thread_state.links = []
        return self.context

    def __exit__(self, *exc_info: object) -> None:
        previous = self._previous or (None, [])
        _thread_state.context = previous[0]
        _thread_state.links = previous[1]


def add_trace_link(
    kind: str, trace_id: str, detail: str = ""
) -> None:
    """Attach a cross-trace link to the current thread's context.

    ``kind`` is the relationship seen from this trace's side —
    ``"schedules"`` on a request that queued a background rollup build,
    ``"follows_from"`` on the build looking back at its scheduler.
    A no-op outside any :class:`trace_context` block.
    """
    if getattr(_thread_state, "context", None) is None:
        return
    links = getattr(_thread_state, "links", None)
    if links is None:
        links = _thread_state.links = []
    links.append({"kind": kind, "trace_id": trace_id, "detail": detail})


def current_trace_links() -> list[dict]:
    """A copy of the links attached so far in this context block."""
    return list(getattr(_thread_state, "links", []) or [])


# -- the flight recorder ------------------------------------------------------


@dataclass
class TraceRecord:
    """One stored trace: identity, outcome, span trees, links."""

    trace_id: str
    origin: str = ""
    name: str = ""
    status: str = "ok"
    latency_s: float = 0.0
    started_at: float = 0.0
    attrs: dict = field(default_factory=dict)
    roots: list = field(default_factory=list)
    links: list = field(default_factory=list)

    def span_count(self) -> int:
        """Total spans across every stored root tree."""

        def count(node: dict) -> int:
            return 1 + sum(count(c) for c in node.get("children", ()))

        return sum(count(root) for root in self.roots)

    def to_dict(self) -> dict:
        """The full JSON payload ``/trace/id/<trace_id>`` serves."""
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "name": self.name,
            "status": self.status,
            "latency_s": self.latency_s,
            "started_at": self.started_at,
            "attrs": dict(self.attrs),
            "links": [dict(link) for link in self.links],
            "spans": self.span_count(),
            "roots": self.roots,
        }

    def summary(self) -> dict:
        """The compact form the ``/traces`` index lists."""
        return {
            "trace_id": self.trace_id,
            "origin": self.origin,
            "name": self.name,
            "status": self.status,
            "latency_s": self.latency_s,
            "started_at": self.started_at,
            "spans": self.span_count(),
            "links": len(self.links),
        }


class TraceStore:
    """A bounded, thread-safe ring of recent traces keyed by trace_id.

    The flight-recorder contract: keep the last ``capacity`` traces
    that mattered.  A trace is kept when it is already resident (later
    contributions merge), when the recorder forces it (explicit
    request, inbound header, EXPLAIN), when it errored or ran slow, or
    when the head-sampling coin flip said yes.  Everything else counts
    into ``traces.sampled_out`` and vanishes — recording must stay
    cheap enough to leave on in production, which is the point of a
    flight recorder.
    """

    def __init__(
        self,
        capacity: int = 256,
        sample_rate: float = 1.0,
        slow_threshold_s: float = 0.25,
        seed: int | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.slow_threshold_s = slow_threshold_s
        self.counters = Counters()
        self._records: OrderedDict[str, TraceRecord] = OrderedDict()
        #: measured bytes per record; records mutate on merge, so the
        #: size is re-measured on every contributing write
        self._sizes: dict[str, int] = {}
        self._resident_bytes = 0
        self._random = random.Random(seed)
        self._lock = threading.Lock()

    # -- minting -------------------------------------------------------------

    def should_sample(self) -> bool:
        """The head-sampling decision for a fresh root context."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._lock:
            return self._random.random() < self.sample_rate

    def mint(self, origin: str = "") -> TraceContext:
        """A fresh root context carrying this store's sampling decision."""
        return new_trace_context(origin=origin, sampled=self.should_sample())

    # -- recording -----------------------------------------------------------

    def record(
        self,
        context: TraceContext,
        *,
        name: str = "",
        origin: str | None = None,
        status: str = "ok",
        latency_s: float = 0.0,
        roots: list | None = None,
        links: list | None = None,
        attrs: dict | None = None,
        force: bool = False,
    ) -> bool:
        """Store (or merge into) the trace for ``context``.

        ``roots`` is a list of serialized span trees
        (:func:`~repro.obs.exporters.span_to_dict` form).  Returns
        whether the trace is resident afterwards.

        Byte accounting is *incremental*: each contributing write adds
        the measured size of what it appended (span trees, attrs,
        links), so a merge never re-walks the whole record — deep
        measurement of the bulky span trees happens outside the store
        lock, on the writer's thread.
        """
        slow = latency_s >= self.slow_threshold_s
        error = status not in ("ok", "")
        roots_bytes = deep_sizeof(roots) if roots else 0
        attrs_bytes = deep_sizeof(attrs) if attrs else 0
        with self._lock:
            record = self._records.get(context.trace_id)
            created = record is None
            if created:
                keep = force or slow or error or context.sampled
                if not keep:
                    self.counters.add("traces.sampled_out")
                    return False
                record = TraceRecord(
                    trace_id=context.trace_id,
                    origin=origin or context.origin,
                    name=name,
                    started_at=time.time(),
                )
                # the empty record's fixed skeleton; contributions
                # below are charged from the pre-measured deltas
                base_bytes = deep_sizeof(record)
                self._records[context.trace_id] = record
                self.counters.add("traces.stored")
                while len(self._records) > self.capacity:
                    victim, _ = self._records.popitem(last=False)
                    self._resident_bytes -= self._sizes.pop(victim, 0)
                    self.counters.add("traces.evicted")
            else:
                base_bytes = 0
                # later contributors refresh recency so a trace still
                # being assembled is not evicted under its writers
                self._records.move_to_end(context.trace_id)
                self.counters.add("traces.merged")
            if name and not record.name:
                record.name = name
            if origin and not record.origin:
                record.origin = origin
            if error or record.status in ("ok", ""):
                record.status = status
            record.latency_s = max(record.latency_s, latency_s)
            if attrs:
                record.attrs.update(attrs)
            if roots:
                record.roots.extend(roots)
            link_bytes = 0
            for link in links or ():
                if link not in record.links:
                    record.links.append(dict(link))
                    link_bytes += deep_sizeof(link)
            delta = base_bytes + roots_bytes + attrs_bytes + link_bytes
            self._resident_bytes += delta
            self._sizes[context.trace_id] = (
                self._sizes.get(context.trace_id, 0) + delta
            )
        return True

    def link(self, trace_id: str, link: dict) -> bool:
        """Attach one link to an already-resident trace, if present."""
        link_bytes = deep_sizeof(link)
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return False
            if link not in record.links:
                record.links.append(dict(link))
                self._resident_bytes += link_bytes
                self._sizes[trace_id] = (
                    self._sizes.get(trace_id, 0) + link_bytes
                )
            return True

    # -- reading -------------------------------------------------------------

    def get(self, trace_id: str) -> TraceRecord | None:
        """The resident record for ``trace_id``, or ``None``."""
        with self._lock:
            return self._records.get(trace_id)

    def index(self, limit: int = 50) -> list[dict]:
        """Summaries of the most recent traces, newest first."""
        with self._lock:
            records = list(self._records.values())
        return [record.summary() for record in reversed(records[-limit:])]

    def resident(self) -> int:
        """Number of traces currently held (the ``obs.traces`` gauge)."""
        with self._lock:
            return len(self._records)

    def resident_bytes(self) -> int:
        """Measured bytes across every resident record (O(1))."""
        with self._lock:
            return self._resident_bytes

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest traces as ``{"key", "bytes"}`` dicts."""
        with self._lock:
            sized = sorted(
                self._sizes.items(), key=lambda item: item[1], reverse=True
            )
        return [
            {"key": trace_id, "bytes": nbytes}
            for trace_id, nbytes in sized[:n]
        ]

    def reclaim(self, target_bytes: int) -> int:
        """Drop oldest traces until at most ``target_bytes`` remain.

        A dropped trace costs one debugging breadcrumb, never a wrong
        answer — telemetry sheds first when the process is over budget.
        Returns bytes freed.
        """
        freed = 0
        with self._lock:
            while self._records and self._resident_bytes - freed > target_bytes:
                victim, _ = self._records.popitem(last=False)
                freed += self._sizes.pop(victim, 0)
            self._resident_bytes -= freed
        return freed

    def __len__(self) -> int:
        return self.resident()
