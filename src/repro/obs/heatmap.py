"""Chunk access heatmaps: which chunks of which arrays run hot.

A :class:`ChunkHeatmap` keeps, per OLAP array, two bounded counter
vectors keyed by chunk number:

- ``accesses`` — every :meth:`~repro.core.olap_array.OLAPArray.read_chunk`
  call, whether served from the shared decoded-chunk cache, the buffer
  pool, or disk (the probe pattern of §4.2);
- ``disk_reads`` — only the uncached large-object fetches (the I/O the
  paper's cost model charges for).

The tracker lives on the :class:`~repro.relational.catalog.Database`
and is attached to every array the engine registers, so one heatmap
covers base cubes, rebuilt generations and materialized views.  It is
cumulative across queries — ``EXPLAIN ANALYZE`` overlays a *delta*
(snapshot before/after) on the array plan, while ``/heatmap/<cube>``
serves the running totals.

Bounded on both axes: at most ``max_arrays`` arrays are tracked (LRU
eviction) and at most ``max_tracked_chunks`` chunk slots per array;
accesses past the slot bound fold into per-array overflow scalars, so
a pathological cube cannot grow the tracker without limit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class _ArrayHeat:
    """Counter vectors for one array (guarded by the heatmap's lock)."""

    __slots__ = (
        "accesses", "disk_reads", "overflow_accesses", "overflow_disk_reads"
    )

    def __init__(self) -> None:
        self.accesses: list[int] = []
        self.disk_reads: list[int] = []
        self.overflow_accesses = 0
        self.overflow_disk_reads = 0


class ChunkHeatmap:
    """Thread-safe bounded per-array chunk access counters."""

    def __init__(
        self, max_tracked_chunks: int = 65536, max_arrays: int = 32
    ):
        if max_tracked_chunks < 1 or max_arrays < 1:
            raise ValueError("heatmap bounds must be >= 1")
        self.max_tracked_chunks = max_tracked_chunks
        self.max_arrays = max_arrays
        self._lock = threading.Lock()
        self._arrays: OrderedDict[str, _ArrayHeat] = OrderedDict()

    def record(self, array_name: str, chunk_no: int, disk: bool = False) -> None:
        """Count one chunk access (``disk=True`` adds a disk read too).

        Every access is also a logical touch, so a disk read increments
        only the disk plane here — the caller's ``read_chunk`` hook has
        already counted the access plane for the same chunk.
        """
        with self._lock:
            heat = self._arrays.get(array_name)
            if heat is None:
                heat = _ArrayHeat()
                self._arrays[array_name] = heat
                while len(self._arrays) > self.max_arrays:
                    self._arrays.popitem(last=False)
            else:
                self._arrays.move_to_end(array_name)
            plane = heat.disk_reads if disk else heat.accesses
            if chunk_no >= self.max_tracked_chunks:
                if disk:
                    heat.overflow_disk_reads += 1
                else:
                    heat.overflow_accesses += 1
                return
            if chunk_no >= len(plane):
                plane.extend([0] * (chunk_no + 1 - len(plane)))
            plane[chunk_no] += 1

    def arrays(self) -> list[str]:
        """Tracked array names, least recently touched first."""
        with self._lock:
            return list(self._arrays)

    def snapshot(self, array_name: str) -> dict:
        """Copy one array's counters (zeros when never accessed)."""
        with self._lock:
            heat = self._arrays.get(array_name)
            if heat is None:
                return {
                    "accesses": [],
                    "disk_reads": [],
                    "overflow_accesses": 0,
                    "overflow_disk_reads": 0,
                }
            return {
                "accesses": list(heat.accesses),
                "disk_reads": list(heat.disk_reads),
                "overflow_accesses": heat.overflow_accesses,
                "overflow_disk_reads": heat.overflow_disk_reads,
            }

    def reset(self, array_name: str | None = None) -> None:
        """Forget one array's counters, or all of them."""
        with self._lock:
            if array_name is None:
                self._arrays.clear()
            else:
                self._arrays.pop(array_name, None)


def heat_delta(before: dict, after: dict) -> dict:
    """Per-chunk counter movement between two :meth:`snapshot` calls.

    Lists are aligned by padding the shorter with zeros; the result has
    the shape of a snapshot and is what ``EXPLAIN ANALYZE`` overlays on
    an array plan (the chunks *this* query touched).
    """

    def diff(a: list[int], b: list[int]) -> list[int]:
        n = max(len(a), len(b))
        a = a + [0] * (n - len(a))
        b = b + [0] * (n - len(b))
        return [y - x for x, y in zip(a, b)]

    return {
        "accesses": diff(before["accesses"], after["accesses"]),
        "disk_reads": diff(before["disk_reads"], after["disk_reads"]),
        "overflow_accesses": (
            after["overflow_accesses"] - before["overflow_accesses"]
        ),
        "overflow_disk_reads": (
            after["overflow_disk_reads"] - before["overflow_disk_reads"]
        ),
    }


def hottest(counts: list[int], top: int = 10) -> list[list[int]]:
    """The ``top`` hottest ``[chunk_no, count]`` pairs, hottest first."""
    ranked = sorted(
        ((count, chunk_no) for chunk_no, count in enumerate(counts) if count),
        key=lambda pair: (-pair[0], pair[1]),
    )
    return [[chunk_no, count] for count, chunk_no in ranked[:top]]
