"""Span-based tracing of query phases.

A :class:`Tracer` records the nested phases of a query — B-tree
dimension lookups, chunk-meta directory reads, chunk fetch/decompress,
offset probes, accumulation, partition merges, hash-table build/probe —
as a tree of :class:`Span` objects.  Each span carries its wall-clock
duration and, when the tracer is bound to a
:class:`~repro.obs.registry.MetricsRegistry`, the *delta* of every
registered counter between span entry and exit, so the simulated-I/O
accounting of §4 decomposes exactly over the span tree.

Instrumented call sites never pay for tracing unless it is on: the
module-level active tracer defaults to :data:`NULL_TRACER`, whose
``span()`` returns one shared no-op context manager.  Install a real
tracer with :func:`tracing`::

    tracer = Tracer(registry=engine.db.metrics)
    with tracing(tracer):
        result = engine.query(query, backend="array")
    print(tracer.roots[0].name)  # "query"

Span I/O deltas are *inclusive* of children; :meth:`Span.self_io` is
the exclusive share, and the exclusive shares telescope: summed over a
whole tree they reproduce the root's inclusive totals exactly (each
child's delta cancels between its own entry and its parent's
subtraction, even in floating point).
"""

from __future__ import annotations

import threading
import time

from repro.util.stats import Counters

#: live span-name stacks by thread ident, maintained by every open
#: :class:`_LiveSpan`.  ``threading.local`` hides a thread's stack from
#: every other thread, but the sampling profiler needs to ask "which
#: phase is thread X in right now?" from its own thread — this map is
#: that cross-thread view.  Mutations are single bytecode-level list
#: ops under the GIL; readers copy via :func:`current_span_stacks`.
_SPAN_STACKS: dict[int, list[str]] = {}


def current_span_stacks() -> dict[int, list[str]]:
    """Snapshot of every thread's live span-name stack, by thread ident.

    Only threads currently inside at least one live span appear.  The
    copy is made entry-by-entry so a concurrently exiting span never
    leaves a torn list in the result.
    """
    return {
        ident: list(stack)
        for ident, stack in list(_SPAN_STACKS.items())
        if stack
    }


class Span:
    """One traced phase: name, attributes, duration, counter deltas."""

    __slots__ = ("name", "attrs", "start_s", "duration_s", "io", "children")

    def __init__(self, name: str, attrs: dict | None = None):
        self.name = name
        self.attrs = attrs or {}
        self.start_s = 0.0
        self.duration_s = 0.0
        self.io: dict[str, float] = {}
        self.children: list[Span] = []

    def annotate(self, **attrs) -> None:
        """Attach extra attributes discovered mid-span."""
        self.attrs.update(attrs)

    def self_io(self) -> dict[str, float]:
        """This span's counter deltas minus its children's (exclusive)."""
        own = dict(self.io)
        for child in self.children:
            for name, value in child.io.items():
                own[name] = own.get(name, 0.0) - value
        return {k: v for k, v in own.items() if v}

    def self_duration_s(self) -> float:
        """Wall seconds spent in this span outside any child span."""
        return self.duration_s - sum(c.duration_s for c in self.children)

    def walk(self):
        """Yield this span then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def leaf_io_totals(self) -> dict[str, float]:
        """Sum of every span's exclusive I/O over the subtree.

        By the telescoping property this equals :attr:`io` on the root —
        the invariant the trace CLI asserts against ``run_cold``'s cost
        report.
        """
        totals = Counters()
        for span in self.walk():
            for name, value in span.self_io().items():
                totals.add(name, value)
        return totals.snapshot()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s:.6f}s, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def annotate(self, **attrs) -> None:
        """Ignore attributes (matching :meth:`_LiveSpan.annotate`)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every span is the same no-op object."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """Return the shared no-op span context manager."""
        return _NULL_SPAN


class _LiveSpan:
    """Context manager that opens/closes one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_span", "_before")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._before: dict[str, float] | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = self._span
        stack = tracer._stack
        # span-tree mutation happens under the tracer's tree lock: the
        # 8-thread serving layer shares one tracer, and a root append
        # must never race another thread's child append mid-resize
        with tracer._tree_lock:
            if stack:
                stack[-1].children.append(span)
            else:
                tracer.roots.append(span)
        stack.append(span)
        ident = threading.get_ident()
        names = _SPAN_STACKS.get(ident)
        if names is None:
            names = _SPAN_STACKS[ident] = []
        names.append(span.name)
        if tracer.registry is not None:
            self._before = tracer.registry.merged_snapshot()
        span.start_s = time.perf_counter()
        return span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        span.duration_s = time.perf_counter() - span.start_s
        tracer = self._tracer
        if self._before is not None:
            after = tracer.registry.merged_snapshot()
            before = self._before
            delta = {}
            for name, value in after.items():
                change = value - before.get(name, 0.0)
                if change:
                    delta[name] = change
            for name, value in before.items():
                if name not in after and value:
                    delta[name] = -value
            span.io = delta
        tracer._stack.pop()
        ident = threading.get_ident()
        names = _SPAN_STACKS.get(ident)
        if names:
            names.pop()
            if not names:
                # drop the entry so dead threads do not accumulate
                _SPAN_STACKS.pop(ident, None)


class Tracer:
    """Records spans into a tree; optionally snapshots a registry.

    The span stack is per-thread: a span opened on a worker thread
    nests under that thread's innermost span, or starts a new root tree
    (the serving layer and thread-backed partitioned consolidation rely
    on this).  Counter deltas on concurrently open spans overlap — each
    span still reports the registry delta over its own lifetime, which
    under concurrency includes other threads' I/O.
    """

    enabled = True

    def __init__(self, registry=None):
        self.registry = registry
        self.roots: list[Span] = []
        self._local = threading.local()
        self._tree_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _LiveSpan:
        """Open a child span of the innermost active span (or a root)."""
        return _LiveSpan(self, Span(name, attrs))

    def current(self) -> Span | None:
        """The innermost active span, or ``None`` outside any span."""
        stack = self._stack
        return stack[-1] if stack else None


NULL_TRACER = NullTracer()

_active: Tracer | NullTracer = NULL_TRACER
_thread_active = threading.local()


def get_tracer() -> Tracer | NullTracer:
    """The active tracer for this thread.

    A thread-local override (see :class:`thread_tracing`) wins over the
    process-wide tracer installed with :func:`set_tracer`; the default
    is the no-op singleton.
    """
    override = getattr(_thread_active, "tracer", None)
    if override is not None:
        return override
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide tracer (``None`` = disable)."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


class tracing:
    """Context manager installing a tracer for a ``with`` block::

        with tracing(Tracer(registry=db.metrics)) as tracer:
            engine.query(...)
        tracer.roots[0]
    """

    def __init__(self, tracer: Tracer | NullTracer):
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = get_tracer()
        return set_tracer(self.tracer)

    def __exit__(self, *exc_info) -> None:
        set_tracer(self._previous)


class thread_tracing:
    """Install a tracer for a ``with`` block on *this thread only*.

    The serving layer's worker threads use this to capture each query's
    span tree for the slow-query log without racing a process-wide
    :func:`set_tracer` against the other seven workers.  Inside the
    block, this thread's :func:`get_tracer` returns ``tracer``; other
    threads are unaffected.
    """

    def __init__(self, tracer: Tracer | NullTracer):
        self.tracer = tracer
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer | NullTracer:
        self._previous = getattr(_thread_active, "tracer", None)
        _thread_active.tracer = self.tracer
        return self.tracer

    def __exit__(self, *exc_info) -> None:
        _thread_active.tracer = self._previous
