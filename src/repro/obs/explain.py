"""EXPLAIN / EXPLAIN ANALYZE: structured query plans with cost accounting.

Every backend describes its evaluation strategy as a tree of
:class:`PlanNode` objects before running anything.  Each node carries
the planner's **estimates** of the physical quantities the paper's cost
model is built on — chunks to touch, cells to scan, B-tree probes,
hash-table build sizes, bytes to read.  ``EXPLAIN ANALYZE`` then runs
the query under a registry-bound tracer and attaches **actuals**: each
node names the tracer span whose counter deltas measure it, so the
actuals are exactly the :class:`~repro.obs.registry.MetricsRegistry`
deltas over that phase (chunks_read, cells_scanned, ...), not a second
ad-hoc bookkeeping path.

Per estimated metric the node reports a smoothed misestimate ratio
``(actual + 1) / (estimate + 1)`` — the add-one keeps zero estimates
finite — and the worst per-node factor ``max(ratio, 1/ratio)`` feeds
the ``engine.explain.misestimate_factor`` histogram on ``/metrics``,
so chronic planner errors are visible without reading any single plan.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.memory import deep_sizeof
from repro.obs.tracer import Span

#: a node whose worst estimate-vs-actual factor exceeds this counts as
#: a misestimate (the ``explain.misestimates`` counter)
MISESTIMATE_FACTOR_THRESHOLD = 2.0


@dataclass
class PlanNode:
    """One operator of a query plan.

    ``span`` names the tracer span whose registry counter deltas are
    this node's actuals (``None`` for purely descriptive nodes);
    ``detail`` holds plan-shape attributes (dimension names, orders,
    predicate counts); ``estimates`` maps counter names to predicted
    values; ``actuals`` is filled by :func:`attach_actuals` after an
    ANALYZE run.
    """

    op: str
    span: str | None = None
    detail: dict = field(default_factory=dict)
    estimates: dict = field(default_factory=dict)
    actuals: dict | None = None
    duration_s: float | None = None
    children: list["PlanNode"] = field(default_factory=list)

    def add(self, child: "PlanNode") -> "PlanNode":
        """Append ``child`` and return it (builder convenience)."""
        self.children.append(child)
        return child

    def walk(self) -> Iterator["PlanNode"]:
        """Yield this node then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def misestimates(self) -> dict[str, float]:
        """Per estimated metric, ``(actual + 1) / (estimate + 1)``.

        Empty until actuals are attached.  A ratio above 1 means the
        planner under-estimated; below 1, over-estimated.
        """
        if self.actuals is None:
            return {}
        out = {}
        for name, estimate in self.estimates.items():
            actual = float(self.actuals.get(name, 0.0))
            out[name] = (actual + 1.0) / (float(estimate) + 1.0)
        return out

    def worst_misestimate(self) -> float | None:
        """The node's worst factor ``max(ratio, 1/ratio)``, if analyzed."""
        ratios = self.misestimates()
        if not ratios:
            return None
        return max(max(r, 1.0 / r) for r in ratios.values())

    def to_dict(self) -> dict:
        """A JSON-serializable dict of this subtree."""
        payload: dict = {
            "op": self.op,
            "span": self.span,
            "detail": dict(self.detail),
            "estimates": dict(self.estimates),
        }
        if self.actuals is not None:
            payload["actuals"] = dict(self.actuals)
            payload["misestimates"] = self.misestimates()
            worst = self.worst_misestimate()
            if worst is not None:
                payload["worst_misestimate"] = worst
        if self.duration_s is not None:
            payload["duration_s"] = self.duration_s
        payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "PlanNode":
        """Rebuild a node tree from :meth:`to_dict` output."""
        node = cls(
            op=payload["op"],
            span=payload.get("span"),
            detail=dict(payload.get("detail", {})),
            estimates=dict(payload.get("estimates", {})),
            actuals=(
                dict(payload["actuals"]) if "actuals" in payload else None
            ),
            duration_s=payload.get("duration_s"),
        )
        node.children = [
            cls.from_dict(child) for child in payload.get("children", [])
        ]
        return node


def attach_actuals(root: PlanNode, span_root: Span) -> None:
    """Fill every node's actuals from its named span's counter deltas.

    Span I/O deltas are registry-wide and inclusive of children, so a
    node's actuals are exactly the counter movement attributable to its
    phase — the same numbers ``run_cold``'s cost report decomposes.
    Nodes whose span did not occur in this execution (e.g. a phase
    skipped at runtime) get empty actuals rather than staying
    unanalyzed.
    """
    for node in root.walk():
        if node.span is None:
            continue
        span = span_root.find(node.span)
        if span is None:
            node.actuals = {}
            continue
        node.actuals = dict(span.io)
        node.duration_s = span.duration_s


@dataclass
class QueryPlan:
    """A backend's plan for one query, plus planner context.

    ``analyzed`` plans additionally carry execution totals (the merged
    stats snapshot), row count, elapsed and simulated-I/O seconds, and
    — for array plans — the chunk-access heatmap delta of the run.
    """

    cube: str
    backend: str
    mode: str
    order: str
    fingerprint: str
    planner: dict
    root: PlanNode
    analyzed: bool = False
    rows: int = 0
    elapsed_s: float = 0.0
    sim_io_s: float = 0.0
    totals: dict = field(default_factory=dict)
    heatmap: dict | None = None

    def worst_misestimate(self) -> float | None:
        """The plan's worst per-node factor, or ``None`` pre-ANALYZE."""
        factors = [
            f
            for f in (n.worst_misestimate() for n in self.root.walk())
            if f is not None
        ]
        return max(factors) if factors else None

    def to_dict(self) -> dict:
        """A JSON-serializable dict (the ``/explain`` payload shape)."""
        payload: dict = {
            "cube": self.cube,
            "backend": self.backend,
            "mode": self.mode,
            "order": self.order,
            "fingerprint": self.fingerprint,
            "analyzed": self.analyzed,
            "planner": dict(self.planner),
            "plan": self.root.to_dict(),
        }
        if self.analyzed:
            payload["execution"] = {
                "rows": self.rows,
                "elapsed_s": self.elapsed_s,
                "sim_io_s": self.sim_io_s,
                "cost_s": self.elapsed_s + self.sim_io_s,
                "totals": dict(self.totals),
            }
            worst = self.worst_misestimate()
            if worst is not None:
                payload["worst_misestimate"] = worst
        if self.heatmap is not None:
            payload["heatmap"] = self.heatmap
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        plan = cls(
            cube=payload["cube"],
            backend=payload["backend"],
            mode=payload["mode"],
            order=payload["order"],
            fingerprint=payload["fingerprint"],
            planner=dict(payload.get("planner", {})),
            root=PlanNode.from_dict(payload["plan"]),
            analyzed=bool(payload.get("analyzed", False)),
            heatmap=payload.get("heatmap"),
        )
        execution = payload.get("execution")
        if execution:
            plan.rows = int(execution.get("rows", 0))
            plan.elapsed_s = float(execution.get("elapsed_s", 0.0))
            plan.sim_io_s = float(execution.get("sim_io_s", 0.0))
            plan.totals = dict(execution.get("totals", {}))
        return plan


# -- text rendering -----------------------------------------------------------


def _fmt(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    try:
        return f"{int(value)}"
    except (TypeError, ValueError):
        return str(value)


def _node_line(node: PlanNode) -> str:
    parts = [node.op]
    if node.detail:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(node.detail.items()))
        )
    if node.estimates:
        rendered = " ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(node.estimates.items())
        )
        parts.append(f"est{{{rendered}}}")
    if node.actuals is not None:
        rendered = " ".join(
            f"{k}={_fmt(v)}" for k, v in sorted(node.actuals.items())
        )
        parts.append(f"act{{{rendered}}}")
        worst = node.worst_misestimate()
        if worst is not None:
            parts.append(f"worst=x{worst:.2f}")
    if node.duration_s is not None:
        parts.append(f"[{node.duration_s * 1000:.2f} ms]")
    return "  ".join(parts)


def _render_children(node: PlanNode, prefix: str, lines: list[str]) -> None:
    for i, child in enumerate(node.children):
        last = i == len(node.children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + _node_line(child))
        _render_children(child, prefix + ("   " if last else "│  "), lines)


def render_plan(plan: QueryPlan) -> str:
    """Render a plan as an indented text tree (the CLI's default view).

    Estimates show as ``est{...}``, ANALYZE actuals as ``act{...}`` with
    the node's worst misestimate factor; planner context heads the tree.
    """
    verb = "EXPLAIN ANALYZE" if plan.analyzed else "EXPLAIN"
    lines = [
        f"{verb}  cube={plan.cube} backend={plan.backend} "
        f"mode={plan.mode} order={plan.order}",
        "planner: "
        + " ".join(
            f"{k}={v}"
            for k, v in sorted(plan.planner.items())
            if k != "available_backends"
        ),
    ]
    if plan.analyzed:
        lines.append(
            f"execution: rows={plan.rows} elapsed={plan.elapsed_s:.6f}s "
            f"sim_io={plan.sim_io_s:.6f}s"
        )
        worst = plan.worst_misestimate()
        if worst is not None:
            lines.append(f"worst misestimate: x{worst:.2f}")
    lines.append(_node_line(plan.root))
    _render_children(plan.root, "", lines)
    return "\n".join(lines)


# -- plan cache ---------------------------------------------------------------


class PlanCache:
    """A thread-safe bounded LRU of plan payloads keyed by fingerprint.

    The serving layer records every ``explain()`` result and every
    slowlog-captured plan here so ``/explain/<fingerprint>`` can serve
    them without re-planning; capacity bounds memory like the slowlog's
    ring does.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._plans: OrderedDict[str, dict] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._resident_bytes = 0

    def put(self, fingerprint: str, payload: dict) -> None:
        """Insert/refresh one plan payload, evicting the oldest at cap."""
        nbytes = deep_sizeof((fingerprint, payload))
        with self._lock:
            if fingerprint in self._plans:
                self._plans.pop(fingerprint)
                self._resident_bytes -= self._sizes.pop(fingerprint, 0)
            self._plans[fingerprint] = payload
            self._sizes[fingerprint] = nbytes
            self._resident_bytes += nbytes
            while len(self._plans) > self.capacity:
                victim, _ = self._plans.popitem(last=False)
                self._resident_bytes -= self._sizes.pop(victim, 0)

    def get(self, fingerprint: str) -> dict | None:
        """The payload for one fingerprint, or ``None``."""
        with self._lock:
            payload = self._plans.get(fingerprint)
            if payload is not None:
                self._plans.move_to_end(fingerprint)
            return payload

    def fingerprints(self) -> list[str]:
        """Cached fingerprints, oldest first."""
        with self._lock:
            return list(self._plans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def resident_bytes(self) -> int:
        """Measured bytes across every cached plan payload (O(1))."""
        with self._lock:
            return self._resident_bytes

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest plans as ``{"key", "bytes"}`` dicts."""
        with self._lock:
            sized = sorted(
                self._sizes.items(), key=lambda item: item[1], reverse=True
            )
        return [
            {"key": fingerprint, "bytes": nbytes}
            for fingerprint, nbytes in sized[:n]
        ]

    def reclaim(self, target_bytes: int) -> int:
        """Evict LRU plans until at most ``target_bytes`` remain.

        A dropped plan is rebuilt by the next EXPLAIN of that query, so
        plans shed after the serving caches but before correctness-
        bearing state.  Returns bytes freed.
        """
        freed = 0
        with self._lock:
            while self._plans and self._resident_bytes - freed > target_bytes:
                victim, _ = self._plans.popitem(last=False)
                freed += self._sizes.pop(victim, 0)
            self._resident_bytes -= freed
        return freed
