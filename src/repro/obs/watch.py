"""``repro watch``: terminal trends over the ``/timeseries`` endpoint.

Where ``repro top`` renders *instantaneous* headlines from two raw
``/metrics`` scrapes, ``watch`` is a client of the time-series layer:
each frame fetches a handful of ``/timeseries/<metric>`` windows (plus
``/alerts``) and renders one sparkline row per metric — latency
quantile trend, query-rate trend, cache-hit trend, in-flight depth —
so a human watching a soak sees the shape over time, not just the
latest number.  Everything works on the JSON payloads alone, so frame
rendering is testable without a live endpoint.
"""

from __future__ import annotations

import json

from repro.obs.top import fetch_metrics

#: the metrics one watch frame fetches, with a short display label
WATCH_METRICS = (
    ("serve.query_latency_seconds", "query p95"),
    ("engine.query_seconds", "engine p95"),
    ("serve.admitted", "admitted"),
    ("result_cache.hits", "cache hits"),
    ("serve.in_flight", "in-flight"),
    ("serve.alerts_firing", "alerts firing"),
)

_SPARKS = "▁▂▃▄▅▆▇█"


def fetch_json(url: str, timeout_s: float = 5.0) -> dict | None:
    """GET one JSON payload; ``None`` on a 404 (metric not exported)."""
    import urllib.error

    try:
        return json.loads(fetch_metrics(url, timeout_s))
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            return None
        raise


def _spark(values: list[float], width: int = 48) -> str:
    if not values:
        return "(no data)"
    if len(values) > width:
        values = values[-width:]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int((v - low) / span * len(_SPARKS)))]
        for v in values
    )


def _series_values(payload: dict) -> list[float]:
    """The plottable value series of one ``/timeseries`` payload."""
    key = "delta" if payload["kind"] == "counter" else "value"
    return [point[key] for point in payload.get("points", [])]


def _headline(payload: dict) -> str:
    """The latest-number suffix for one metric row."""
    kind = payload["kind"]
    values = _series_values(payload)
    if kind == "counter":
        return f"rate {payload.get('rate_per_s', 0.0):8.1f}/s"
    if kind == "gauge":
        return f"now {values[-1] if values else 0.0:10.1f}"
    quantile = payload.get("window_quantile_s")
    observations = payload.get("window_observations", 0)
    if quantile is None:
        return f"({observations} obs in window)"
    return f"p{payload.get('quantile', 0.95) * 100:.0f} {quantile * 1000:8.3f}ms ({observations} obs)"


def render_watch_frame(
    payloads: list[tuple[str, dict | None]],
    alerts: dict | None,
    width: int = 48,
) -> str:
    """One watch frame from fetched payloads (``None`` rows show absent)."""
    lines = []
    for label, payload in payloads:
        if payload is None:
            lines.append(f"{label:<14} (not exported)")
            continue
        lines.append(
            f"{label:<14} {_spark(_series_values(payload), width):<{width}} "
            f"{_headline(payload)}"
        )
    if alerts is not None:
        firing = alerts.get("firing", [])
        if firing:
            names = ", ".join(f["rule"] for f in firing)
            lines.append(f"ALERTS FIRING: {names}")
        else:
            events = alerts.get("events", [])
            lines.append(
                f"alerts: none firing ({len(events)} transitions logged)"
            )
    return "\n".join(lines)


def watch_frame(
    base_url: str, seconds: float = 60.0, q: float = 0.95
) -> str:
    """Fetch and render one frame against a running endpoint."""
    base = base_url.rstrip("/")
    payloads = [
        (
            label,
            fetch_json(
                f"{base}/timeseries/{metric}?seconds={seconds:g}&q={q:g}"
            ),
        )
        for metric, label in WATCH_METRICS
    ]
    alerts = fetch_json(f"{base}/alerts")
    return render_watch_frame(payloads, alerts)
