"""Trace and metrics exporters: JSON, text tree, Prometheus format.

The JSON form is the machine-readable artifact the bench harness drops
next to ``benchmarks/results/``; the text tree is what ``python -m
repro trace`` prints; the Prometheus text format is what the live
``/metrics`` endpoint serves, so the counters, gauges and latency
histograms map 1:1 onto a real monitoring stack.  The matching
:func:`parse_prometheus_text` / :func:`lint_prometheus_text` pair is
the scrape side: ``repro top`` polls and parses the endpoint with it,
and the test suite lints every export against the exposition grammar
(contiguous metric groups, ``# TYPE`` first, escaped label values,
complete histogram series).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

from repro.obs.tracer import Span

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]")


# -- JSON traces ------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """A JSON-serializable dict of one span subtree."""
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "duration_s": span.duration_s,
        "io": dict(span.io),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: dict) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output."""
    span = Span(payload["name"], dict(payload.get("attrs", {})))
    span.duration_s = float(payload.get("duration_s", 0.0))
    span.io = dict(payload.get("io", {}))
    span.children = [
        span_from_dict(child) for child in payload.get("children", [])
    ]
    return span


def trace_to_json(spans: list[Span] | Span, indent: int | None = 2) -> str:
    """Serialize one span or a list of root spans to JSON text."""
    if isinstance(spans, Span):
        spans = [spans]
    return json.dumps([span_to_dict(s) for s in spans], indent=indent)


def trace_from_json(text: str) -> list[Span]:
    """Parse :func:`trace_to_json` output back into span trees."""
    return [span_from_dict(payload) for payload in json.loads(text)]


# -- text tree ---------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def _span_line(span: Span, max_counters: int) -> str:
    parts = [span.name]
    if span.attrs:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        )
    parts.append(f"[{span.duration_s * 1000:.2f} ms]")
    if span.io:
        shown = sorted(
            span.io.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )[:max_counters]
        rendered = " ".join(f"{k}={_format_value(v)}" for k, v in sorted(shown))
        suffix = " ..." if len(span.io) > max_counters else ""
        parts.append(f"{{{rendered}{suffix}}}")
    return "  ".join(parts)


def render_span_tree(span: Span, max_counters: int = 8) -> str:
    """Render a span tree as an indented text diagram.

    Counter deltas shown per span are inclusive of children; at most
    ``max_counters`` (largest first) are printed per line.
    """
    lines = [_span_line(span, max_counters)]
    _render_children(span, "", lines, max_counters)
    return "\n".join(lines)


def _render_children(
    span: Span, prefix: str, lines: list[str], max_counters: int
) -> None:
    for i, child in enumerate(span.children):
        last = i == len(span.children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + _span_line(child, max_counters))
        _render_children(
            child, prefix + ("   " if last else "│  "), lines, max_counters
        )


# -- Prometheus text format ---------------------------------------------------


def _sanitize(name: str) -> str:
    return _METRIC_NAME.sub("_", name)


def _escape_label(value: str) -> str:
    """Escape a label *value* per the exposition format.

    Label values may contain any character; backslash, double quote and
    newline must be escaped (sanitizing them away, as this exporter
    once did, silently aliased distinct sources).
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_bound(bound: float) -> str:
    """A bucket bound rendered with enough digits to round-trip."""
    text = f"{bound:.12g}"
    return text


def prometheus_text(registry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus exposition text format.

    Counters get a ``_total`` suffix and a ``source`` label per
    registered bag; gauges are sampled once, unlabeled; histograms emit
    the standard cumulative ``_bucket`` series plus ``_sum`` and
    ``_count``.  All samples of one metric are contiguous with their
    ``# TYPE`` line first, as the exposition format requires — the
    old per-source iteration interleaved groups and real scrapers
    rejected the payload.
    """
    lines: list[str] = []
    by_source = registry.snapshot_by_source()
    grouped: dict[str, list[tuple[str, float]]] = {}
    for source, counters in by_source.items():
        for counter, value in counters.items():
            grouped.setdefault(_sanitize(counter), []).append((source, value))
    for metric in sorted(grouped):
        full = f"{prefix}_{metric}_total"
        lines.append(f"# TYPE {full} counter")
        for source, value in sorted(grouped[metric]):
            lines.append(
                f'{full}{{source="{_escape_label(source)}"}} {value:g}'
            )
    for name, snapshot in registry.histogram_snapshots().items():
        full = f"{prefix}_{_sanitize(name)}"
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0.0
        bounds = snapshot["bounds"]
        counts = snapshot["counts"]
        for bound, count in zip(bounds, counts):
            cumulative += count
            lines.append(
                f'{full}_bucket{{le="{_format_bound(bound)}"}} {cumulative:g}'
            )
        lines.append(f'{full}_bucket{{le="+Inf"}} {snapshot["count"]:g}')
        lines.append(f"{full}_sum {snapshot['sum']:g}")
        lines.append(f"{full}_count {snapshot['count']:g}")
        # per-bucket trace exemplars ride as comment lines (the classic
        # exposition format has no exemplar syntax; OpenMetrics-style
        # inline exemplars would fail parse_prometheus_text).  Scrapers
        # that care use parse_exemplar_comments; everyone else skips
        # them as free comments.
        exemplars = snapshot.get("exemplars")
        if exemplars:
            edges = [_format_bound(b) for b in bounds] + ["+Inf"]
            for le, exemplar in zip(edges, exemplars):
                if exemplar is None:
                    continue
                trace_id, value = exemplar
                lines.append(
                    f'# EXEMPLAR {full}_bucket{{le="{le}"}} '
                    f"trace_id={trace_id} value={value:g}"
                )
    for gauge, value in registry.gauge_values().items():
        metric = f"{prefix}_{_sanitize(gauge)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    resets = getattr(registry, "resets", None)
    if resets is not None:
        # the reset epoch rides along so scrape-side delta math (repro
        # top's QPS) can tell a counter reset from a negative rate
        metric = f"{prefix}_registry_resets"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(resets):g}")
    return "\n".join(lines) + "\n"


# -- Prometheus text parsing / linting ----------------------------------------

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


@dataclass
class PromSample:
    """One parsed exposition sample line."""

    name: str
    labels: dict[str, str]
    value: float


_EXEMPLAR_RE = re.compile(
    r"^# EXEMPLAR (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)_bucket"
    r'\{le="(?P<le>[^"]+)"\}'
    r" trace_id=(?P<trace_id>\S+) value=(?P<value>\S+)$"
)


def parse_exemplar_comments(text: str) -> dict[str, dict[str, dict]]:
    """Extract ``# EXEMPLAR`` comments from exposition text.

    Returns ``{histogram_name: {le: {"trace_id": ..., "value": ...}}}``
    keyed by the full exported histogram name (e.g.
    ``repro_serve_query_latency_seconds``).  The scrape half of the
    exemplar channel: ``repro top`` uses this to link a percentile
    bucket back to a concrete trace.
    """
    exemplars: dict[str, dict[str, dict]] = {}
    for line in text.splitlines():
        match = _EXEMPLAR_RE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        exemplars.setdefault(match.group("name"), {})[match.group("le")] = {
            "trace_id": match.group("trace_id"),
            "value": value,
        }
    return exemplars


def _parse_labels(body: str, line_no: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', body[i:])
        if match is None:
            raise ValueError(f"line {line_no}: malformed label set {body!r}")
        name = match.group(1)
        i += match.end()
        value_chars: list[str] = []
        while True:
            if i >= len(body):
                raise ValueError(
                    f"line {line_no}: unterminated label value in {body!r}"
                )
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body) or body[i + 1] not in ('\\', '"', "n"):
                    raise ValueError(
                        f"line {line_no}: invalid escape in label value"
                    )
                value_chars.append(
                    "\n" if body[i + 1] == "n" else body[i + 1]
                )
                i += 2
            elif ch == '"':
                i += 1
                break
            else:
                value_chars.append(ch)
                i += 1
        labels[name] = "".join(value_chars)
        if i < len(body):
            if body[i] != ",":
                raise ValueError(
                    f"line {line_no}: expected ',' between labels in {body!r}"
                )
            i += 1
    return labels


def parse_prometheus_text(
    text: str,
) -> tuple[list[PromSample], dict[str, str]]:
    """Parse exposition text into samples plus a metric→type map.

    Raises :class:`ValueError` on any line that is neither a valid
    comment nor a valid sample.  (``repro top`` and the lint test share
    this parser.)
    """
    samples: list[PromSample] = []
    types: dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {line_no}: malformed TYPE comment")
                _, _, metric, kind = parts
                if not _NAME_RE.match(metric):
                    raise ValueError(
                        f"line {line_no}: invalid metric name {metric!r}"
                    )
                if kind not in _TYPES:
                    raise ValueError(
                        f"line {line_no}: unknown metric type {kind!r}"
                    )
                if metric in types:
                    raise ValueError(
                        f"line {line_no}: duplicate TYPE for {metric!r}"
                    )
                types[metric] = kind
            continue  # HELP and free comments are unconstrained
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample {line!r}")
        labels = (
            _parse_labels(match.group("labels"), line_no)
            if match.group("labels")
            else {}
        )
        raw = match.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"line {line_no}: non-numeric sample value {raw!r}"
            ) from None
        samples.append(PromSample(match.group("name"), labels, value))
    return samples, types


def _base_metric(sample_name: str, types: dict[str, str]) -> str:
    """Map a sample name back to its declared metric family."""
    if sample_name in types:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in types:
            base = sample_name[: -len(suffix)]
            kind = types[base]
            if suffix == "_total" and kind == "counter":
                return base
            if suffix in ("_bucket", "_sum", "_count") and kind in (
                "histogram",
                "summary",
            ):
                return base
    return sample_name


def lint_prometheus_text(text: str) -> list[PromSample]:
    """Validate exposition-format structure; returns the parsed samples.

    Checks the grammar rules a real scraper enforces:

    - every sample belongs to a declared ``# TYPE`` family, and the
      declaration precedes its first sample;
    - all samples of one family are contiguous (no interleaving);
    - histogram families carry ``_sum``, ``_count`` and a ``+Inf``
      bucket, with non-decreasing cumulative bucket values;
    - label names are valid and label values round-trip the escaping.

    Raises :class:`ValueError` with the offending line on violation.
    """
    samples, types = parse_prometheus_text(text)
    declared_order = list(types)
    seen_order: list[str] = []
    for sample in samples:
        base = _base_metric(sample.name, types)
        if base not in types:
            raise ValueError(
                f"sample {sample.name!r} has no preceding # TYPE declaration"
            )
        if not seen_order or seen_order[-1] != base:
            if base in seen_order:
                raise ValueError(
                    f"samples of {base!r} are not contiguous: the "
                    "exposition format requires one group per metric"
                )
            seen_order.append(base)
        for label in sample.labels:
            if not _LABEL_NAME_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
    # TYPE must precede the first sample of its family: since parse
    # collects types as it goes, verify group order is consistent with
    # declaration order for families that do have samples
    sampled = [m for m in declared_order if m in seen_order]
    if sampled != seen_order:
        raise ValueError("a metric family was sampled before its # TYPE line")
    for metric, kind in types.items():
        if kind != "histogram":
            continue
        series = [s for s in samples if _base_metric(s.name, types) == metric]
        if not series:
            continue
        buckets = [s for s in series if s.name == f"{metric}_bucket"]
        sums = [s for s in series if s.name == f"{metric}_sum"]
        counts = [s for s in series if s.name == f"{metric}_count"]
        if not buckets or len(sums) != 1 or len(counts) != 1:
            raise ValueError(
                f"histogram {metric!r} must expose _bucket, _sum and _count"
            )
        if buckets[-1].labels.get("le") != "+Inf":
            raise ValueError(
                f"histogram {metric!r} is missing the +Inf bucket (or it "
                "is not last)"
            )
        values = [b.value for b in buckets]
        if any(b > a for b, a in zip(values, values[1:])):
            raise ValueError(
                f"histogram {metric!r} cumulative bucket counts decrease"
            )
        if buckets[-1].value != counts[0].value:
            raise ValueError(
                f"histogram {metric!r}: +Inf bucket != _count"
            )
    return samples
