"""Trace and metrics exporters: JSON, text tree, Prometheus format.

The JSON form is the machine-readable artifact the bench harness drops
next to ``benchmarks/results/``; the text tree is what ``python -m
repro trace`` prints; the Prometheus text format exposes the
:class:`~repro.obs.registry.MetricsRegistry` the way a scrape endpoint
would, so the counters map 1:1 onto a real monitoring stack.
"""

from __future__ import annotations

import json
import re

from repro.obs.tracer import Span

_METRIC_NAME = re.compile(r"[^a-zA-Z0-9_:]")


# -- JSON traces ------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """A JSON-serializable dict of one span subtree."""
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "duration_s": span.duration_s,
        "io": dict(span.io),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: dict) -> Span:
    """Rebuild a :class:`Span` tree from :func:`span_to_dict` output."""
    span = Span(payload["name"], dict(payload.get("attrs", {})))
    span.duration_s = float(payload.get("duration_s", 0.0))
    span.io = dict(payload.get("io", {}))
    span.children = [
        span_from_dict(child) for child in payload.get("children", [])
    ]
    return span


def trace_to_json(spans: list[Span] | Span, indent: int | None = 2) -> str:
    """Serialize one span or a list of root spans to JSON text."""
    if isinstance(spans, Span):
        spans = [spans]
    return json.dumps([span_to_dict(s) for s in spans], indent=indent)


def trace_from_json(text: str) -> list[Span]:
    """Parse :func:`trace_to_json` output back into span trees."""
    return [span_from_dict(payload) for payload in json.loads(text)]


# -- text tree ---------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return f"{int(value)}"


def _span_line(span: Span, max_counters: int) -> str:
    parts = [span.name]
    if span.attrs:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        )
    parts.append(f"[{span.duration_s * 1000:.2f} ms]")
    if span.io:
        shown = sorted(
            span.io.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )[:max_counters]
        rendered = " ".join(f"{k}={_format_value(v)}" for k, v in sorted(shown))
        suffix = " ..." if len(span.io) > max_counters else ""
        parts.append(f"{{{rendered}{suffix}}}")
    return "  ".join(parts)


def render_span_tree(span: Span, max_counters: int = 8) -> str:
    """Render a span tree as an indented text diagram.

    Counter deltas shown per span are inclusive of children; at most
    ``max_counters`` (largest first) are printed per line.
    """
    lines = [_span_line(span, max_counters)]
    _render_children(span, "", lines, max_counters)
    return "\n".join(lines)


def _render_children(
    span: Span, prefix: str, lines: list[str], max_counters: int
) -> None:
    for i, child in enumerate(span.children):
        last = i == len(span.children) - 1
        connector = "└─ " if last else "├─ "
        lines.append(prefix + connector + _span_line(child, max_counters))
        _render_children(
            child, prefix + ("   " if last else "│  "), lines, max_counters
        )


# -- Prometheus text format ---------------------------------------------------


def _sanitize(name: str) -> str:
    return _METRIC_NAME.sub("_", name)


def prometheus_text(registry, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus exposition text format.

    Counters get a ``_total`` suffix and a ``source`` label per
    registered bag; gauges are sampled once, unlabeled.
    """
    lines: list[str] = []
    by_source = registry.snapshot_by_source()
    seen: set[str] = set()
    for source in sorted(by_source):
        for counter in sorted(by_source[source]):
            metric = f"{prefix}_{_sanitize(counter)}_total"
            if metric not in seen:
                lines.append(f"# TYPE {metric} counter")
                seen.add(metric)
            value = by_source[source][counter]
            lines.append(
                f'{metric}{{source="{_sanitize(source)}"}} {value:g}'
            )
    for gauge, value in registry.gauge_values().items():
        metric = f"{prefix}_{_sanitize(gauge)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    return "\n".join(lines) + "\n"
