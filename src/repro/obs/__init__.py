"""Observability: tracing, metrics, latency histograms, live endpoint.

The paper's argument is a cost breakdown — chunk fetches vs. tuple
fetches, B-tree probes vs. positional access — so the reproduction
carries a first-class accounting layer:

- :mod:`repro.obs.tracer` — span-based tracing of query phases.  Every
  instrumented call site asks :func:`get_tracer` for the active tracer;
  the default is a shared no-op whose spans cost one method call, so
  benchmark numbers are unaffected unless a real :class:`Tracer` is
  installed (via :func:`tracing`, or per-thread via
  :class:`thread_tracing`).
- :mod:`repro.obs.registry` — a :class:`MetricsRegistry` into which
  every counter source (disk, buffer pool, WAL, fact files, OLAP
  arrays, per-query bags) registers.  A tracer bound to a registry
  snapshots it at span boundaries, so each span carries the simulated
  I/O it caused.  Gauges and latency :class:`Histogram` distributions
  ride along for the exporter.
- :mod:`repro.obs.histogram` — fixed log-scale-bucket latency
  histograms: lock-cheap ``observe``, mergeable, p50/p95/p99, JSON
  round-trip, Prometheus ``_bucket``/``_sum``/``_count`` export.
- :mod:`repro.obs.slowlog` — a ring buffer of profiled slow queries
  (span tree + counter deltas + plan choice per entry).
- :mod:`repro.obs.tracing` — the distributed layer over the tracer:
  :class:`TraceContext` identity propagated across threads, shard
  worker processes and async rollup rebuilds (follows-from links), and
  the bounded :class:`TraceStore` flight recorder behind ``/traces``
  and ``/trace/id/<trace_id>``.
- :mod:`repro.obs.explain` — EXPLAIN / EXPLAIN ANALYZE plan trees:
  per-node planner estimates, measured actuals from span counter
  deltas, misestimate factors, text rendering and a fingerprint-keyed
  :class:`PlanCache`.
- :mod:`repro.obs.heatmap` — bounded per-array chunk access counters
  (logical accesses vs. uncached disk reads) behind ``/heatmap/<cube>``
  and the ANALYZE heat overlay.
- :mod:`repro.obs.exporters` — JSON trace dump, text tree rendering,
  Prometheus text exposition plus a parser/linter for it.
- :mod:`repro.obs.server` — stdlib HTTP endpoint serving ``/metrics``,
  ``/healthz``, ``/slowlog`` and ``/trace/<fingerprint>`` live.
"""

from repro.obs.explain import (
    MISESTIMATE_FACTOR_THRESHOLD,
    PlanCache,
    PlanNode,
    QueryPlan,
    attach_actuals,
    render_plan,
)
from repro.obs.heatmap import ChunkHeatmap, heat_delta, hottest
from repro.obs.histogram import DEFAULT_BOUNDS, Histogram, quantile_from_buckets
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    thread_tracing,
    tracing,
)
from repro.obs.exporters import (
    PromSample,
    lint_prometheus_text,
    parse_exemplar_comments,
    parse_prometheus_text,
    prometheus_text,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    trace_from_json,
    trace_to_json,
)
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.server import ObservabilityServer
from repro.obs.tracing import (
    TraceContext,
    TraceRecord,
    TraceStore,
    add_trace_link,
    adopt_trace_id,
    current_trace_context,
    current_trace_links,
    new_trace_context,
    trace_context,
)

# importing the repro.obs.tracing submodule rebinds the package
# attribute "tracing" to the module object; restore the tracer's
# context manager, which this package has always exported as `tracing`
from repro.obs.tracer import tracing as tracing  # noqa: E402, F811
from repro.obs.timeseries import TimePoint, TimeSeriesStore
from repro.obs.alerts import AlertManager, SloRule, default_rules, load_rules
from repro.obs.profiler import SamplingProfiler

__all__ = [
    "AlertManager",
    "DEFAULT_BOUNDS",
    "MISESTIMATE_FACTOR_THRESHOLD",
    "ChunkHeatmap",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObservabilityServer",
    "PlanCache",
    "PlanNode",
    "PromSample",
    "QueryPlan",
    "SamplingProfiler",
    "SloRule",
    "SlowQueryLog",
    "SlowQueryRecord",
    "Span",
    "TimePoint",
    "TimeSeriesStore",
    "TraceContext",
    "TraceRecord",
    "TraceStore",
    "Tracer",
    "add_trace_link",
    "adopt_trace_id",
    "attach_actuals",
    "current_trace_context",
    "current_trace_links",
    "default_rules",
    "get_tracer",
    "load_rules",
    "heat_delta",
    "hottest",
    "lint_prometheus_text",
    "new_trace_context",
    "parse_exemplar_comments",
    "parse_prometheus_text",
    "prometheus_text",
    "quantile_from_buckets",
    "render_plan",
    "render_span_tree",
    "set_tracer",
    "span_from_dict",
    "span_to_dict",
    "thread_tracing",
    "trace_context",
    "trace_from_json",
    "trace_to_json",
    "tracing",
]
