"""Observability: query tracing and the central metrics registry.

The paper's argument is a cost breakdown — chunk fetches vs. tuple
fetches, B-tree probes vs. positional access — so the reproduction
carries a first-class accounting layer:

- :mod:`repro.obs.tracer` — span-based tracing of query phases.  Every
  instrumented call site asks :func:`get_tracer` for the active tracer;
  the default is a shared no-op whose spans cost one method call, so
  benchmark numbers are unaffected unless a real :class:`Tracer` is
  installed (via :func:`tracing`).
- :mod:`repro.obs.registry` — a :class:`MetricsRegistry` into which
  every counter source (disk, buffer pool, WAL, fact files, OLAP
  arrays, per-query bags) registers.  A tracer bound to a registry
  snapshots it at span boundaries, so each span carries the simulated
  I/O it caused.
- :mod:`repro.obs.exporters` — JSON trace dump, text tree rendering,
  and Prometheus-style text metrics.
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.exporters import (
    prometheus_text,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "prometheus_text",
    "render_span_tree",
    "span_from_dict",
    "span_to_dict",
    "trace_from_json",
    "trace_to_json",
]
