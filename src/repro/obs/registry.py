"""The central metrics registry.

Every component that accounts work into a
:class:`~repro.util.stats.Counters` bag — the simulated disk, the
buffer pool, the WAL, fact files, OLAP arrays, per-query counter bags —
registers that bag under a source name.  The registry then answers the
two questions the harness and the tracer keep asking:

- "what is the total of every counter right now?" (:meth:`merged_snapshot`,
  which replaced the hand-rolled ``disk + pool + query`` dict plumbing
  in ``olap/engine.py``), and
- "zero everything for the next cold run" (:meth:`reset_all`, which
  returns the pre-reset totals so no measurement is ever lost at a
  query boundary).

Sources registered with a ``reset`` callable get that called instead of
a plain counter reset — the simulated disk uses this to also forget its
arm position.  Gauges (callables sampled at export time: pool residency,
WAL size) ride along for the Prometheus exporter.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager

from repro.errors import MetricsError
from repro.util.stats import Counters


class MetricsRegistry:
    """Named :class:`Counters` sources plus sampled gauges."""

    def __init__(self) -> None:
        self._sources: dict[str, Counters] = {}
        self._resets: dict[str, Callable[[], object] | None] = {}
        self._gauges: dict[str, Callable[[], float]] = {}

    # -- sources -----------------------------------------------------------

    def register(
        self,
        name: str,
        counters: Counters,
        reset: Callable[[], object] | None = None,
        replace: bool = False,
    ) -> Counters:
        """Register one counter source under ``name``.

        ``reset`` overrides the boundary reset (default: zero the bag).
        """
        if name in self._sources and not replace:
            raise MetricsError(f"metrics source {name!r} already registered")
        self._sources[name] = counters
        self._resets[name] = reset
        return counters

    def unregister(self, name: str) -> None:
        """Remove one source (its counters stop contributing)."""
        if name not in self._sources:
            raise MetricsError(f"no metrics source named {name!r}")
        del self._sources[name]
        del self._resets[name]

    @contextmanager
    def scoped(self, name: str, counters: Counters):
        """Register ``counters`` for the duration of a ``with`` block.

        The engine uses this to expose a query's private counter bag
        (``chunks_read``, ``btree_probes``, ...) to the tracer while the
        query runs.
        """
        self.register(name, counters)
        try:
            yield counters
        finally:
            self.unregister(name)

    def counters(self, name: str) -> Counters:
        """The registered bag for ``name``."""
        try:
            return self._sources[name]
        except KeyError:
            raise MetricsError(f"no metrics source named {name!r}") from None

    def source_names(self) -> list[str]:
        """All registered source names, sorted."""
        return sorted(self._sources)

    # -- gauges ------------------------------------------------------------

    def register_gauge(
        self, name: str, fn: Callable[[], float], replace: bool = False
    ) -> None:
        """Register a point-in-time sampled value (e.g. pool residency)."""
        if name in self._gauges and not replace:
            raise MetricsError(f"gauge {name!r} already registered")
        self._gauges[name] = fn

    def gauge_values(self) -> dict[str, float]:
        """Sample every gauge now."""
        return {name: float(fn()) for name, fn in sorted(self._gauges.items())}

    # -- collection --------------------------------------------------------

    def merged(self) -> Counters:
        """A fresh bag holding every source's counters summed by name."""
        total = Counters()
        for counters in self._sources.values():
            total.merge(counters)
        return total

    def merged_snapshot(self) -> dict[str, float]:
        """Plain-dict totals across all sources (zero values dropped)."""
        return self.merged().snapshot()

    def snapshot_by_source(self) -> dict[str, dict[str, float]]:
        """Per-source snapshots, keyed by source name (empty ones kept)."""
        return {
            name: self._sources[name].snapshot()
            for name in sorted(self._sources)
        }

    def reset_all(self) -> dict[str, float]:
        """Zero every source; returns the pre-reset merged snapshot."""
        before = self.merged_snapshot()
        for name, counters in self._sources.items():
            reset = self._resets[name]
            if reset is not None:
                reset()
            else:
                counters.reset()
        return before
