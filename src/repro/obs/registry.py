"""The central metrics registry.

Every component that accounts work into a
:class:`~repro.util.stats.Counters` bag — the simulated disk, the
buffer pool, the WAL, fact files, OLAP arrays, per-query counter bags —
registers that bag under a source name.  The registry then answers the
two questions the harness and the tracer keep asking:

- "what is the total of every counter right now?" (:meth:`merged_snapshot`,
  which replaced the hand-rolled ``disk + pool + query`` dict plumbing
  in ``olap/engine.py``), and
- "zero everything for the next cold run" (:meth:`reset_all`, which
  returns the pre-reset totals so no measurement is ever lost at a
  query boundary).

Sources registered with a ``reset`` callable get that called instead of
a plain counter reset — the simulated disk uses this to also forget its
arm position.  Gauges (callables sampled at export time: pool residency,
WAL size) ride along for the Prometheus exporter, as do
:class:`~repro.obs.histogram.Histogram` latency distributions, which
are *cumulative*: :meth:`reset_all` (a per-query stat boundary) leaves
them alone so the serving dashboard sees the whole process history.

The registry itself is thread-safe: the 8-thread serving layer
registers per-query scoped sources, samples gauges and scrapes
snapshots concurrently, so every map mutation happens under one lock.
:meth:`scoped` additionally uniquifies its source name — two queries
in flight both registering ``"query"`` get distinct actual names
instead of a spurious duplicate-source error.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from contextlib import contextmanager

from repro.errors import MetricsError
from repro.obs.histogram import Histogram
from repro.util.stats import Counters


class MetricsRegistry:
    """Named :class:`Counters` sources plus sampled gauges and histograms."""

    def __init__(self) -> None:
        self._sources: dict[str, Counters] = {}
        self._resets: dict[str, Callable[[], object] | None] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._histograms: dict[str, Histogram] = {}
        self._reset_epoch = 0
        self._lock = threading.RLock()

    @property
    def resets(self) -> int:
        """Monotonic count of :meth:`reset_all` boundaries ever crossed.

        Counter samplers (the time-series store, ``repro top``) compare
        this epoch between two snapshots: when it moved, a smaller
        counter value means "the counter restarted from zero", not "work
        was un-done", so the delta since the reset is the current value
        rather than a negative difference.
        """
        with self._lock:
            return self._reset_epoch

    # -- sources -----------------------------------------------------------

    def register(
        self,
        name: str,
        counters: Counters,
        reset: Callable[[], object] | None = None,
        replace: bool = False,
    ) -> Counters:
        """Register one counter source under ``name``.

        ``reset`` overrides the boundary reset (default: zero the bag).
        """
        with self._lock:
            if name in self._sources and not replace:
                raise MetricsError(f"metrics source {name!r} already registered")
            self._sources[name] = counters
            self._resets[name] = reset
        return counters

    def unregister(self, name: str) -> None:
        """Remove one source (its counters stop contributing)."""
        with self._lock:
            if name not in self._sources:
                raise MetricsError(f"no metrics source named {name!r}")
            del self._sources[name]
            del self._resets[name]

    @contextmanager
    def scoped(self, name: str, counters: Counters):
        """Register ``counters`` for the duration of a ``with`` block.

        The engine uses this to expose a query's private counter bag
        (``chunks_read``, ``btree_probes``, ...) to the tracer while the
        query runs.  When ``name`` is already taken — two queries in
        flight — a uniquified ``name#N`` is used, so concurrent scoped
        sources never collide.
        """
        with self._lock:
            actual = name
            serial = 2
            while actual in self._sources:
                actual = f"{name}#{serial}"
                serial += 1
            self._sources[actual] = counters
            self._resets[actual] = None
        try:
            yield counters
        finally:
            self.unregister(actual)

    def counters(self, name: str) -> Counters:
        """The registered bag for ``name``."""
        with self._lock:
            try:
                return self._sources[name]
            except KeyError:
                raise MetricsError(f"no metrics source named {name!r}") from None

    def source_names(self) -> list[str]:
        """All registered source names, sorted."""
        with self._lock:
            return sorted(self._sources)

    # -- gauges ------------------------------------------------------------

    def register_gauge(
        self, name: str, fn: Callable[[], float], replace: bool = False
    ) -> None:
        """Register a point-in-time sampled value (e.g. pool residency)."""
        with self._lock:
            if name in self._gauges and not replace:
                raise MetricsError(f"gauge {name!r} already registered")
            self._gauges[name] = fn

    def gauge_values(self) -> dict[str, float]:
        """Sample every gauge now."""
        with self._lock:
            gauges = sorted(self._gauges.items())
        return {name: float(fn()) for name, fn in gauges}

    # -- histograms --------------------------------------------------------

    def register_histogram(
        self,
        name: str,
        histogram: Histogram | None = None,
        replace: bool = False,
    ) -> Histogram:
        """Register (or create) a latency histogram under ``name``.

        With ``replace=True`` an existing histogram under the same name
        is *kept* (and returned) when the caller did not supply one —
        re-registration at e.g. service restart must not discard the
        process's latency history.
        """
        with self._lock:
            existing = self._histograms.get(name)
            if existing is not None and not replace:
                raise MetricsError(f"histogram {name!r} already registered")
            if histogram is None:
                histogram = existing if existing is not None else Histogram()
            self._histograms[name] = histogram
        return histogram

    def histogram(self, name: str) -> Histogram:
        """The registered histogram for ``name``."""
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                raise MetricsError(f"no histogram named {name!r}") from None

    def histogram_names(self) -> list[str]:
        """All registered histogram names, sorted."""
        with self._lock:
            return sorted(self._histograms)

    def observe(
        self, name: str, value: float, trace_id: str | None = None
    ) -> None:
        """Record one observation, creating the histogram on first use.

        The instrumentation convenience: call sites do not need to
        thread a :class:`Histogram` handle around, just a registry.
        ``trace_id`` attaches an exemplar to the observation's bucket.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
        histogram.observe(value, trace_id=trace_id)

    def histogram_snapshots(self) -> dict[str, dict]:
        """Per-histogram :meth:`Histogram.to_dict` payloads, by name."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: histogram.to_dict() for name, histogram in items}

    # -- collection --------------------------------------------------------

    def merged(self) -> Counters:
        """A fresh bag holding every source's counters summed by name."""
        with self._lock:
            sources = list(self._sources.values())
        total = Counters()
        for counters in sources:
            total.merge(counters)
        return total

    def merged_snapshot(self) -> dict[str, float]:
        """Plain-dict totals across all sources (zero values dropped)."""
        return self.merged().snapshot()

    def snapshot_by_source(self) -> dict[str, dict[str, float]]:
        """Per-source snapshots, keyed by source name (empty ones kept)."""
        with self._lock:
            items = sorted(self._sources.items())
        return {name: counters.snapshot() for name, counters in items}

    def reset_all(self) -> dict[str, float]:
        """Zero every counter source; returns the pre-reset merged snapshot.

        Histograms and gauges are left untouched: they are cumulative
        serving telemetry, not per-run cost accounting.
        """
        before = self.merged_snapshot()
        with self._lock:
            items = list(self._sources.items())
            resets = dict(self._resets)
            self._reset_epoch += 1
        for name, counters in items:
            reset = resets[name]
            if reset is not None:
                reset()
            else:
                counters.reset()
        return before
