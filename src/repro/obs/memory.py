"""Byte-accurate resident-set accounting with pressure-aware eviction.

The paper's core trade spends memory-resident array structure — buffer
pool pages, decoded chunks, precomputed rollup grains, cached results —
to buy query speed.  Every one of those stores already bounds its
*entry count*, but none of them could answer "how many **bytes** is
this process holding, and in which store?".  The
:class:`MemoryAccountant` closes that gap: each resident store
registers a byte-accurate usage callback, the accountant exports
per-store ``memory.<store>.resident_bytes`` gauges plus one
``memory.total_resident_bytes`` through the
:class:`~repro.obs.registry.MetricsRegistry` (so /metrics, /timeseries
and the SLO alert rules all see them), and serves the ``/memory``
route and ``repro mem`` breakdowns.

On top of accounting sits *pressure-aware eviction*: when
``ServiceConfig.memory_budget_bytes`` is set, :meth:`maybe_reclaim`
shrinks stores in cheap-to-rebuild-first order (result cache →
decoded chunks → coldest rollup grains by routed-hit recency →
cached plans → telemetry rings) until the total fits the budget
again.  Pass one respects each store's soft
share of the budget — a store already below its share is skipped — and
pass two reclaims unconditionally if the overshoot survives pass one.
Evicted grains fall back to base-table scans exactly like the stale
path, so serving correctness is untouched; the reclaim itself is
counted (``memory.pressure_events`` / ``memory.reclaimed_bytes``) and
wrapped in a tracer span so it shows up in EXPLAIN ANALYZE and the
slowlog.
"""

from __future__ import annotations

import sys
import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.tracer import get_tracer
from repro.util.stats import Counters

#: fallback size for objects ``sys.getsizeof`` cannot measure.
_DEFAULT_OBJECT_BYTES = 64


def deep_sizeof(obj: object) -> int:
    """Recursively measure ``obj`` in bytes, cycle- and share-safe.

    Containers (dict / list / tuple / set / deque) descend into their
    elements; plain objects descend into ``__dict__``.  Anything with a
    numeric ``.nbytes`` (numpy arrays and scalars) is charged its
    buffer size directly instead of being walked — that is what makes
    the accounting *byte-accurate* for the array-heavy stores.  Shared
    sub-objects are charged once (id-memoised), so summing two entries
    that alias one array never double-counts it.
    """
    total = 0
    seen: set[int] = set()
    stack: list[object] = [obj]
    while stack:
        item = stack.pop()
        if id(item) in seen:
            continue
        seen.add(id(item))
        nbytes = getattr(item, "nbytes", None)
        if isinstance(nbytes, (int, float)) and not isinstance(item, memoryview):
            total += int(nbytes)
            continue
        try:
            total += sys.getsizeof(item)
        except TypeError:  # pragma: no cover - exotic C extension types
            total += _DEFAULT_OBJECT_BYTES
        if isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (list, tuple, set, frozenset, deque)):
            stack.extend(item)
        elif hasattr(item, "__dict__"):
            stack.extend(vars(item).values())
    return total


@dataclass
class StoreAccount:
    """One registered resident store.

    ``usage`` is sampled on every read — it must be O(1) and
    thread-safe (every in-tree store keeps a running byte total for
    exactly this reason).  ``reclaim(target)`` shrinks the store to at
    most ``target`` resident bytes and returns how many bytes it
    actually freed; stores without one (bounded rings, the buffer
    pool) are accounted but never evicted from here.  ``cost_rank``
    orders reclaim cheapest-to-rebuild first; ``share`` is the store's
    soft fraction of the budget, the floor pass one will not shrink
    below.
    """

    name: str
    usage: Callable[[], float]
    reclaim: Callable[[int], int] | None = None
    top_entries: Callable[[int], list[dict]] | None = None
    cost_rank: int = 100
    share: float = 0.0


class MemoryAccountant:
    """Central resident-set ledger plus the pressure-eviction coordinator."""

    def __init__(self, registry=None, budget_bytes: int = 0) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"memory budget must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = int(budget_bytes)
        self.counters = Counters()
        self._registry = registry
        self._stores: dict[str, StoreAccount] = {}
        self._lock = threading.RLock()
        # non-reentrant by design: a reclaim that triggers a pressure
        # callback (e.g. the chunk cache refilling during grain
        # fallback) must not recurse into a second reclaim
        self._reclaim_lock = threading.Lock()
        if registry is not None:
            # cumulative serving telemetry: survives per-query resets
            registry.register(
                "obs:memory", self.counters, reset=lambda: None, replace=True
            )
            registry.register_gauge(
                "memory.total_resident_bytes",
                self.total_resident_bytes,
                replace=True,
            )

    # -- registration ------------------------------------------------------

    def register_store(
        self,
        name: str,
        usage: Callable[[], float],
        *,
        reclaim: Callable[[int], int] | None = None,
        top_entries: Callable[[int], list[dict]] | None = None,
        cost_rank: int = 100,
        share: float = 0.0,
    ) -> None:
        """Register one resident store under ``name`` (idempotent)."""
        account = StoreAccount(
            name=name,
            usage=usage,
            reclaim=reclaim,
            top_entries=top_entries,
            cost_rank=cost_rank,
            share=share,
        )
        with self._lock:
            self._stores[name] = account
        if self._registry is not None:
            self._registry.register_gauge(
                f"memory.{name}.resident_bytes", usage, replace=True
            )

    def unregister_store(self, name: str) -> None:
        """Drop one store from the ledger (missing names are ignored)."""
        with self._lock:
            self._stores.pop(name, None)
        if self._registry is not None:
            # gauges cannot be removed; freeze the reading at zero so a
            # late scrape never calls into a closed store
            self._registry.register_gauge(
                f"memory.{name}.resident_bytes", lambda: 0.0, replace=True
            )

    def store_names(self) -> list[str]:
        """All registered store names, sorted."""
        with self._lock:
            return sorted(self._stores)

    # -- accounting --------------------------------------------------------

    def usage_by_store(self) -> dict[str, int]:
        """Current resident bytes per store, sampled now."""
        with self._lock:
            stores = list(self._stores.values())
        return {store.name: int(store.usage()) for store in stores}

    def total_resident_bytes(self) -> float:
        """Sum of every store's usage callback, sampled now."""
        return float(sum(self.usage_by_store().values()))

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest entries across every store that itemises."""
        with self._lock:
            stores = list(self._stores.values())
        merged: list[dict] = []
        for store in stores:
            if store.top_entries is None:
                continue
            for entry in store.top_entries(n):
                merged.append(
                    {
                        "store": store.name,
                        "key": str(entry.get("key", "")),
                        "bytes": int(entry.get("bytes", 0)),
                    }
                )
        merged.sort(key=lambda entry: entry["bytes"], reverse=True)
        return merged[:n]

    # -- pressure ----------------------------------------------------------

    def maybe_reclaim(self, reason: str = "") -> int:
        """Shrink reclaimable stores until the total fits the budget.

        Returns bytes freed (0 when unbudgeted, under budget, or when
        another thread is already reclaiming — pressure is a process
        condition, one reclaimer is enough).
        """
        if self.budget_bytes <= 0:
            return 0
        if not self._reclaim_lock.acquire(blocking=False):
            return 0
        try:
            usage = self.usage_by_store()
            total = sum(usage.values())
            if total <= self.budget_bytes:
                return 0
            overshoot = total - self.budget_bytes
            self.counters.add("memory.pressure_events")
            with self._lock:
                reclaimables = sorted(
                    (s for s in self._stores.values() if s.reclaim is not None),
                    key=lambda s: s.cost_rank,
                )
            freed_total = 0
            with get_tracer().span(
                "memory_reclaim",
                reason=reason,
                resident_bytes=total,
                budget_bytes=self.budget_bytes,
            ) as span:
                # pass 1: cheapest-first, down to each store's soft share
                for store in reclaimables:
                    remaining = overshoot - freed_total
                    if remaining <= 0:
                        break
                    current = usage.get(store.name, int(store.usage()))
                    floor = int(self.budget_bytes * store.share)
                    if current <= floor:
                        continue
                    target = max(floor, current - remaining)
                    freed_total += max(0, int(store.reclaim(target)))
                # pass 2: still over — shares stop protecting anybody
                if overshoot - freed_total > 0:
                    for store in reclaimables:
                        remaining = overshoot - freed_total
                        if remaining <= 0:
                            break
                        current = int(store.usage())
                        target = max(0, current - remaining)
                        if target < current:
                            freed_total += max(0, int(store.reclaim(target)))
                span.annotate(reclaimed_bytes=freed_total)
            self.counters.add("memory.reclaimed_bytes", freed_total)
            return freed_total
        finally:
            self._reclaim_lock.release()

    # -- sampling / export -------------------------------------------------

    def sample(self, reason: str = "sample") -> dict:
        """Enforce the budget, then read the ledger.

        Enforce-*then*-read is what lets a recorded trajectory (soak,
        replay) prove "the budget held at every sample" instead of
        merely "we eventually reclaimed".
        """
        reclaimed = self.maybe_reclaim(reason)
        usage = self.usage_by_store()
        return {
            "total_resident_bytes": sum(usage.values()),
            "stores": usage,
            "reclaimed_bytes": reclaimed,
        }

    def payload(self, top_n: int = 10) -> dict:
        """The ``/memory`` route / ``repro mem`` breakdown."""
        usage = self.usage_by_store()
        return {
            "budget_bytes": self.budget_bytes,
            "total_resident_bytes": sum(usage.values()),
            "stores": usage,
            "top_entries": self.top_entries(top_n),
            "counters": {
                key: value
                for key, value in self.counters.snapshot().items()
                if key.startswith("memory.")
            },
        }

    def close(self) -> None:
        """Unregister every store and the counter source."""
        with self._lock:
            names = list(self._stores)
        for name in names:
            self.unregister_store(name)
        if self._registry is not None:
            try:
                self._registry.unregister("obs:memory")
            except Exception:
                pass
            self._registry.register_gauge(
                "memory.total_resident_bytes", lambda: 0.0, replace=True
            )
