"""``repro top``: a terminal dashboard over the ``/metrics`` endpoint.

The dashboard is a thin Prometheus *client*: it polls the scrape
endpoint, parses the exposition text with
:func:`~repro.obs.exporters.parse_prometheus_text`, and derives the
serving headlines — QPS from counter deltas between polls, latency
quantiles from the ``_bucket`` series via
:func:`~repro.obs.histogram.quantile_from_buckets`, cache hit rates,
WAL fsync latency.  Everything here works on exposition text alone, so
the rendering is testable without a live HTTP server and works against
any endpoint that speaks the format.
"""

from __future__ import annotations

import math
import urllib.request
from dataclasses import dataclass, field

from repro.obs.exporters import (
    PromSample,
    parse_exemplar_comments,
    parse_prometheus_text,
)
from repro.obs.histogram import quantile_from_buckets


def fetch_metrics(url: str, timeout_s: float = 5.0) -> str:
    """GET one scrape; returns the exposition text."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read().decode("utf-8")


@dataclass
class MetricsView:
    """One scrape, aggregated for dashboard math.

    Counters are summed across their ``source`` labels (the registry
    exports one sample per source); histograms keep per-``le``
    cumulative counts plus ``_sum``/``_count``.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: name -> {le_string: cumulative count}
    histogram_buckets: dict[str, dict[str, float]] = field(default_factory=dict)
    histogram_sums: dict[str, float] = field(default_factory=dict)
    histogram_counts: dict[str, float] = field(default_factory=dict)
    #: name -> {le_string: {"trace_id", "value"}} from # EXEMPLAR lines
    exemplars: dict[str, dict[str, dict]] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str) -> "MetricsView":
        samples, types = parse_prometheus_text(text)
        view = cls()
        for sample in samples:
            view._ingest(sample, types)
        view.exemplars = parse_exemplar_comments(text)
        return view

    def _ingest(self, sample: PromSample, types: dict[str, str]) -> None:
        name = sample.name
        if name.endswith("_bucket") and "le" in sample.labels:
            base = name[: -len("_bucket")]
            buckets = self.histogram_buckets.setdefault(base, {})
            le = sample.labels["le"]
            buckets[le] = buckets.get(le, 0.0) + sample.value
            return
        if name.endswith("_sum") and types.get(name[: -len("_sum")]) == "histogram":
            base = name[: -len("_sum")]
            self.histogram_sums[base] = (
                self.histogram_sums.get(base, 0.0) + sample.value
            )
            return
        if (
            name.endswith("_count")
            and types.get(name[: -len("_count")]) == "histogram"
        ):
            base = name[: -len("_count")]
            self.histogram_counts[base] = (
                self.histogram_counts.get(base, 0.0) + sample.value
            )
            return
        if name.endswith("_total"):
            base = name[: -len("_total")]
            self.counters[base] = self.counters.get(base, 0.0) + sample.value
            return
        self.gauges[name] = sample.value

    # -- derived quantities --------------------------------------------------

    def counter(self, base: str) -> float:
        """Summed counter value for a base metric name (0 if absent)."""
        return self.counters.get(base, 0.0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def quantile(self, histogram: str, q: float) -> float:
        """Latency quantile from the scraped cumulative buckets."""
        buckets = self.histogram_buckets.get(histogram)
        if not buckets:
            return 0.0
        finite = sorted(
            (float(le), cumulative)
            for le, cumulative in buckets.items()
            if le != "+Inf"
        )
        if not finite:  # degenerate scrape: only the +Inf bucket
            return 0.0
        bounds = tuple(le for le, _ in finite)
        # de-cumulate: quantile_from_buckets wants per-bucket counts,
        # with one trailing overflow bucket
        cumulative_counts = [count for _, count in finite]
        total = buckets.get("+Inf", cumulative_counts[-1] if finite else 0.0)
        counts, previous = [], 0.0
        for value in cumulative_counts:
            counts.append(value - previous)
            previous = value
        counts.append(total - previous)
        return quantile_from_buckets(bounds, counts, q)

    def hit_rate(self, hits: str, misses: str) -> float:
        """``hits / (hits + misses)`` over two counter base names."""
        h, m = self.counter(hits), self.counter(misses)
        return h / (h + m) if (h + m) else 0.0

    def exemplar_for(self, histogram: str, q: float) -> dict | None:
        """The exemplar nearest the ``q``-quantile bucket, or ``None``.

        Prefers the smallest bucket whose upper edge still covers the
        quantile (the trace that *lived* that latency); when every
        recorded exemplar sits below it, falls back to the slowest one.
        """
        per_le = self.exemplars.get(histogram)
        if not per_le:
            return None
        target = self.quantile(histogram, q)

        def edge(le: str) -> float:
            return math.inf if le == "+Inf" else float(le)

        covering = [
            (edge(le), info)
            for le, info in per_le.items()
            if edge(le) >= target
        ]
        if covering:
            return min(covering, key=lambda pair: pair[0])[1]
        return max(
            ((edge(le), info) for le, info in per_le.items()),
            key=lambda pair: pair[0],
        )[1]


def counter_delta(
    previous: MetricsView, current: MetricsView, base: str
) -> float:
    """Reset-aware counter movement between two scrapes.

    The registry exports its monotonic reset epoch as the
    ``repro_registry_resets`` gauge; when it moved between the scrapes
    the counter restarted from zero, so the delta is the newer absolute
    value (what accumulated since the reset) — never a negative.
    """
    after = current.counter(base)
    if current.gauge("repro_registry_resets") != previous.gauge(
        "repro_registry_resets"
    ):
        return max(0.0, after)
    return max(0.0, after - previous.counter(base))


def qps(previous: MetricsView, current: MetricsView, interval_s: float) -> float:
    """Admitted queries per second between two scrapes."""
    if interval_s <= 0:
        return 0.0
    return counter_delta(previous, current, "repro_serve_admitted") / interval_s


def _fmt_ms(seconds: float) -> str:
    if not math.isfinite(seconds):
        return "inf"
    return f"{seconds * 1000:8.3f}ms"

#: rendered where a metric family is absent from the scrape — a bare
#: endpoint (no serving layer attached) must degrade, not crash or
#: report a misleading 0.000ms
ABSENT = "—"


def _quantile_cell(view: MetricsView, histogram: str, q: float) -> str:
    """A latency cell, or ``—`` when the family has no observations."""
    if not view.histogram_counts.get(histogram):
        return f"{ABSENT:>8}  "  # width of _fmt_ms
    return _fmt_ms(view.quantile(histogram, q))


def _rate_cell(view: MetricsView, hits: str, misses: str) -> str:
    """A hit-rate cell, or ``—`` when neither counter was exported."""
    if hits not in view.counters and misses not in view.counters:
        return f"{ABSENT:>6}"
    return f"{view.hit_rate(hits, misses):6.1%}"


def _gauge_cell(view: MetricsView, name: str, spec: str = "6.1%") -> str:
    if name not in view.gauges:
        return f"{ABSENT:>6}"
    return format(view.gauge(name), spec)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:7.1f}{unit}" if unit != "B" else f"{n:7.0f}B"
        n /= 1024.0
    return f"{n:7.1f}GiB"  # pragma: no cover - loop always returns


def _bytes_cell(view: MetricsView, name: str) -> str:
    """A resident-bytes cell, or ``—`` when the gauge is absent."""
    if name not in view.gauges:
        return f"{ABSENT:>10}"
    return _fmt_bytes(view.gauge(name))


def render_dashboard(
    previous: MetricsView | None,
    current: MetricsView,
    interval_s: float,
    prefix: str = "repro",
) -> str:
    """One dashboard frame as plain text.

    Families absent from the scrape render as ``—`` so the dashboard
    stays useful against a minimal registry (engine without a serving
    layer, or a foreign exporter).
    """
    q = f"{prefix}_serve_query_latency_seconds"
    lines = []
    rate = qps(previous, current, interval_s) if previous is not None else 0.0
    lines.append(
        f"qps {rate:8.1f}   in-flight {current.gauge(f'{prefix}_serve_in_flight'):4.0f}   "
        f"degraded cubes {current.gauge(f'{prefix}_serve_degraded_cubes'):2.0f}   "
        f"slowlog {current.gauge(f'{prefix}_serve_slowlog_entries'):3.0f}"
    )
    lines.append(
        f"query latency  p50 {_quantile_cell(current, q, 0.50)}  "
        f"p95 {_quantile_cell(current, q, 0.95)}  "
        f"p99 {_quantile_cell(current, q, 0.99)}  "
        f"({current.histogram_counts.get(q, 0.0):,.0f} obs)"
    )
    exemplar = current.exemplar_for(q, 0.95)
    if exemplar is not None:
        lines.append(
            f"p95 exemplar   trace {exemplar['trace_id']}  "
            f"({exemplar['value'] * 1000:.3f}ms — repro trace --id "
            f"{exemplar['trace_id']})"
        )
    wait = f"{prefix}_serve_queue_wait_seconds"
    lines.append(
        f"queue wait     p50 {_quantile_cell(current, wait, 0.50)}  "
        f"p95 {_quantile_cell(current, wait, 0.95)}"
    )
    lines.append(
        "cache hit-rate result "
        + _rate_cell(
            current,
            f"{prefix}_result_cache_hits",
            f"{prefix}_result_cache_misses",
        )
        + "   chunk "
        + _rate_cell(
            current,
            f"{prefix}_chunk_cache_hits",
            f"{prefix}_chunk_cache_misses",
        )
        + "   pool "
        + _gauge_cell(current, f"{prefix}_pool_hit_rate")
    )
    mem = f"{prefix}_memory_total_resident_bytes"
    lines.append(
        f"mem resident   total {_bytes_cell(current, mem)}   "
        f"pool {_bytes_cell(current, f'{prefix}_memory_buffer_pool_resident_bytes')}  "
        f"chunks {_bytes_cell(current, f'{prefix}_memory_chunk_cache_resident_bytes')}  "
        f"results {_bytes_cell(current, f'{prefix}_memory_result_cache_resident_bytes')}  "
        f"rollups {_bytes_cell(current, f'{prefix}_memory_rollup_grains_resident_bytes')}"
    )
    pressure = f"{prefix}_memory_pressure_events"
    if pressure in current.counters:
        lines.append(
            f"mem pressure   events {current.counter(pressure):,.0f}   "
            "reclaimed "
            + _fmt_bytes(current.counter(f"{prefix}_memory_reclaimed_bytes")).strip()
        )
    fsync = f"{prefix}_wal_fsync_seconds"
    if current.histogram_counts.get(fsync):
        lines.append(
            f"wal fsync      p50 {_fmt_ms(current.quantile(fsync, 0.50))}  "
            f"p99 {_fmt_ms(current.quantile(fsync, 0.99))}  "
            f"fsyncs {current.counter(f'{prefix}_wal_fsyncs'):,.0f}  "
            f"segments {current.gauge(f'{prefix}_wal_segments'):.0f}"
        )
    return "\n".join(lines)
