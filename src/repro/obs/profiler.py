"""A thread-sampling wall-clock profiler attributing time to spans.

Histograms say how slow; the slow-query log says why one query was
slow; the profiler says where the *process* spends its wall-clock time
while serving.  A daemon thread periodically snapshots every thread's
Python frame via ``sys._current_frames()`` and classifies each
(thread, tick) sample:

- **span** — the thread is inside at least one live tracer span (the
  cross-thread view from
  :func:`repro.obs.tracer.current_span_stacks`): the sample is
  attributed to the innermost span, keyed by the whole span-name path
  (``serve_query;query;probe_chunks``) so the output collapses
  directly into a flame view;
- **idle** — the innermost frame is a known stdlib wait (lock/condition
  waits, selectors, ``time.sleep``, socket accept/recv, queue gets):
  parked threads are not engine work;
- **other** — busy Python outside any span, keyed by
  ``module:function`` of the innermost frame (instrumentation gaps
  show up here instead of silently vanishing).

The profiler's own thread — and any thread whose name matches
``exclude_prefixes`` (the observability stack's samplers and HTTP
handlers) — is skipped entirely: a profiler that mostly profiles
itself is noise.

``attributed_fraction`` is span / (span + other): of the *busy*
samples worth attributing, how many landed in a named phase.  The soak
harness gates on it staying ≥ 0.8, which is what keeps the span
instrumentation honest as the engine grows.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter

from repro.obs.tracer import current_span_stacks

#: innermost co_names that mean "parked, not working"
_IDLE_FUNCTIONS = frozenset(
    {
        "wait",
        "wait_for",
        "sleep",
        "select",
        "poll",
        "accept",
        "recv",
        "recv_into",
        "read",
        "readinto",
        "get",
        "acquire",
        "_wait_for_tstate_lock",
        "epoll",
        "kqueue",
        # a ThreadPoolExecutor worker parked on SimpleQueue.get: the get
        # is C code, so the pool loop is the innermost Python frame
        "_worker",
    }
)

#: filename fragments that mean the frame is stdlib plumbing where a
#: blocked thread parks (not repro code doing work)
_IDLE_FILES = (
    "threading.py",
    "selectors.py",
    "queue.py",
    "socket.py",
    "socketserver.py",
    "ssl.py",
    "concurrent/futures",
    "concurrent\\futures",
)


def _is_idle(frame) -> bool:
    name = frame.f_code.co_name
    filename = frame.f_code.co_filename
    if name in _IDLE_FUNCTIONS and any(
        fragment in filename for fragment in _IDLE_FILES
    ):
        return True
    # time.sleep has no Python frame of its own; the caller shows as the
    # innermost frame, so catch the canonical sleep wrappers too
    if name == "sleep":
        return True
    return False


class SamplingProfiler:
    """Wall-clock sampling profiler over every thread in the process."""

    def __init__(
        self,
        interval_s: float = 0.005,
        exclude_prefixes: tuple[str, ...] = ("repro-obs",),
    ):
        self.interval_s = interval_s
        self.exclude_prefixes = exclude_prefixes
        self._lock = threading.Lock()
        self._span_samples: Counter[tuple[str, ...]] = Counter()
        self._other_samples: Counter[str] = Counter()
        self._idle = 0
        self._ticks = 0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- sampling ------------------------------------------------------------

    def _excluded_idents(self) -> set[int]:
        excluded = {threading.get_ident()}
        for thread in threading.enumerate():
            if thread.ident is None:
                continue
            if any(
                thread.name.startswith(prefix)
                for prefix in self.exclude_prefixes
            ):
                excluded.add(thread.ident)
        return excluded

    def sample_once(self) -> int:
        """Take one tick over all threads; returns samples recorded."""
        excluded = self._excluded_idents()
        stacks = current_span_stacks()
        frames = sys._current_frames()
        span_hits: list[tuple[str, ...]] = []
        other_hits: list[str] = []
        idle = 0
        for ident, frame in frames.items():
            if ident in excluded:
                continue
            names = stacks.get(ident)
            if names:
                span_hits.append(tuple(names))
            elif _is_idle(frame):
                idle += 1
            else:
                code = frame.f_code
                module = code.co_filename.rsplit("/", 1)[-1]
                other_hits.append(f"{module}:{code.co_name}")
        with self._lock:
            self._ticks += 1
            self._idle += idle
            for key in span_hits:
                self._span_samples[key] += 1
            for key in other_hits:
                self._other_samples[key] += 1
        return len(span_hits) + len(other_hits) + idle

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Run the sampler on a daemon thread; returns self."""
        if self._thread is not None:
            return self

        def run() -> None:
            while not self._stop.is_set():
                self.sample_once()
                self._stop.wait(self.interval_s)

        self._stop.clear()
        self._thread = threading.Thread(
            target=run, name="repro-obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def reset(self) -> None:
        """Drop every accumulated sample (the profiler keeps running)."""
        with self._lock:
            self._span_samples.clear()
            self._other_samples.clear()
            self._idle = 0
            self._ticks = 0

    # -- reading -------------------------------------------------------------

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._ticks

    def stats(self) -> dict:
        """Sample-class totals plus the attribution fraction."""
        with self._lock:
            span = sum(self._span_samples.values())
            other = sum(self._other_samples.values())
            idle = self._idle
            ticks = self._ticks
        busy = span + other
        return {
            "ticks": ticks,
            "samples": span + other + idle,
            "span_samples": span,
            "other_samples": other,
            "idle_samples": idle,
            "attributed_fraction": span / busy if busy else 0.0,
        }

    def collapsed(self) -> dict[str, int]:
        """Collapsed-stack output: ``"a;b;c" -> samples`` (span paths),
        plus ``"(other);module:function"`` buckets for unattributed busy
        samples — the format flamegraph tooling eats directly."""
        with self._lock:
            out = {
                ";".join(path): count
                for path, count in self._span_samples.items()
            }
            for key, count in self._other_samples.items():
                out[f"(other);{key}"] = count
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    def hottest(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-sampled collapsed stacks, hottest first."""
        return list(self.collapsed().items())[:n]

    def to_dict(self) -> dict:
        """The ``/profile`` JSON body."""
        payload = self.stats()
        payload["running"] = self.running
        payload["interval_s"] = self.interval_s
        payload["collapsed"] = self.collapsed()
        return payload

    def render_flame(self, width: int = 60, max_rows: int = 20) -> str:
        """A terminal flame view: one bar per collapsed stack."""
        collapsed = self.collapsed()
        stats = self.stats()
        busy = stats["span_samples"] + stats["other_samples"]
        lines = [
            f"profile: {stats['samples']} samples over {stats['ticks']} "
            f"ticks  (busy {busy}, idle {stats['idle_samples']}, "
            f"attributed {stats['attributed_fraction']:.0%})"
        ]
        if not collapsed:
            lines.append("  (no busy samples)")
            return "\n".join(lines)
        top = max(collapsed.values())
        for stack, count in list(collapsed.items())[:max_rows]:
            bar = "█" * max(1, round(width * count / top))
            lines.append(f"{count:>6}  {bar:<{width}}  {stack}")
        if len(collapsed) > max_rows:
            lines.append(f"  ... {len(collapsed) - max_rows} more stacks")
        return "\n".join(lines)

