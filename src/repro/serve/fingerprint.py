"""Canonical query fingerprints for the result cache.

Two :class:`~repro.olap.query.ConsolidationQuery` objects that must
return identical rows get identical fingerprints: selections are ANDed,
so their order is canonicalized away, as is the order of values inside
an IN-list.  Everything that *does* change the answer — the group-by
order (it fixes the output column order), the aggregate, the measure
projection, the backend, the execution mode and the scan order — stays
significant.
"""

from __future__ import annotations

import hashlib

from repro.olap.query import ConsolidationQuery, SelectionPredicate


def _selection_token(sel: SelectionPredicate) -> str:
    if sel.is_range:
        body = f"between:{sel.low!r}:{sel.high!r}"
    else:
        body = "in:" + ",".join(sorted(repr(v) for v in sel.values))
    return f"{sel.dimension}.{sel.attribute}|{body}"


def query_fingerprint(
    query: ConsolidationQuery,
    backend: str = "auto",
    mode: str = "interpreted",
    order: str = "chunk",
) -> str:
    """Hex digest identifying one (cube, backend, query) evaluation."""
    parts = [
        f"cube={query.cube}",
        f"backend={backend}",
        f"mode={mode}",
        f"order={order}",
        "group_by=" + ";".join(f"{d}.{a}" for d, a in query.group_by),
        "selections=" + ";".join(
            sorted(_selection_token(s) for s in query.selections)
        ),
        f"aggregate={query.aggregate}",
        "measures=" + (
            ",".join(query.measures) if query.measures is not None else "*"
        ),
    ]
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:32]
