"""Canonical query fingerprints for the result cache.

Two :class:`~repro.olap.query.ConsolidationQuery` objects that must
return identical rows get identical fingerprints: selections are ANDed,
so their order is canonicalized away, as is the order of values inside
an IN-list.  Everything that *does* change the answer — the group-by
order (it fixes the output column order), the aggregate, the measure
projection, the backend, the execution mode and the scan order — stays
significant.

``mode`` is canonicalized through :func:`repro.olap.options.
resolve_mode` before hashing, so ``mode="auto"`` fingerprints equal the
concrete mode it resolves to and cached results never alias across
modes.  The shard plan (``shards``/``executor``) joins the fingerprint
only when ``shards > 1`` — single-shard fingerprints are bit-identical
to the pre-sharding release, keeping warm caches valid across the
upgrade.
"""

from __future__ import annotations

import hashlib

from repro.olap.options import resolve_mode
from repro.olap.query import ConsolidationQuery, SelectionPredicate


def _selection_token(sel: SelectionPredicate) -> str:
    if sel.is_range:
        body = f"between:{sel.low!r}:{sel.high!r}"
    else:
        body = "in:" + ",".join(sorted(repr(v) for v in sel.values))
    return f"{sel.dimension}.{sel.attribute}|{body}"


def query_fingerprint(
    query: ConsolidationQuery,
    backend: str = "auto",
    mode: str = "auto",
    order: str = "chunk",
    shards: int = 1,
    executor: str = "local",
) -> str:
    """Hex digest identifying one (cube, backend, query) evaluation."""
    parts = [
        f"cube={query.cube}",
        f"backend={backend}",
        f"mode={resolve_mode(mode, query.aggregate, backend)}",
        f"order={order}",
        "group_by=" + ";".join(f"{d}.{a}" for d, a in query.group_by),
        "selections=" + ";".join(
            sorted(_selection_token(s) for s in query.selections)
        ),
        f"aggregate={query.aggregate}",
        "measures=" + (
            ",".join(query.measures) if query.measures is not None else "*"
        ),
    ]
    if shards > 1:
        parts.append(f"shards={shards}")
        parts.append(f"executor={executor}")
    digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()
    return digest[:32]
