"""The LRU query-result cache with generation-based invalidation.

Entries are keyed by ``(cube, fingerprint)`` (see
:mod:`repro.serve.fingerprint`) and stamped with the cube's write
generation at compute time.  Invalidation is belt *and* braces:

- eagerly, the :class:`~repro.serve.service.QueryService` write listener
  calls :meth:`invalidate_cube` — exactly the written cube's entries
  drop, never the whole cache;
- lazily, :meth:`get` re-validates the stored generation against the
  cube's current one, so even a racing write that lands between a
  lookup and a store can never cause a stale read.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.util.stats import Counters


@dataclass(frozen=True)
class CacheEntry:
    """One cached result and the generation it was computed at."""

    generation: int
    value: Any


class ResultCache:
    """Thread-safe LRU of query results keyed by canonical fingerprint."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = Counters()
        self._entries: OrderedDict[tuple[str, str], CacheEntry] = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, cube: str, fingerprint: str, generation: int):
        """The cached value, or ``None`` on miss / generation mismatch."""
        key = (cube, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.counters.add("result_cache.misses")
                return None
            if entry.generation != generation:
                # lazy invalidation: computed against older data
                del self._entries[key]
                self.counters.add("result_cache.stale_drops")
                self.counters.add("result_cache.misses")
                return None
            self._entries.move_to_end(key)
            self.counters.add("result_cache.hits")
            return entry.value

    def put(self, cube: str, fingerprint: str, generation: int, value) -> None:
        """Store one result computed at ``generation``."""
        key = (cube, fingerprint)
        with self._lock:
            self._entries[key] = CacheEntry(generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.add("result_cache.evictions")

    def invalidate_cube(self, cube: str) -> int:
        """Drop exactly one cube's entries; returns how many dropped."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == cube]
            for key in stale:
                del self._entries[key]
            if stale:
                self.counters.add("result_cache.invalidations", len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._entries.clear()

    def keys(self) -> list[tuple[str, str]]:
        """The live ``(cube, fingerprint)`` keys, LRU-first."""
        with self._lock:
            return list(self._entries)
