"""The LRU query-result cache with generation-based invalidation.

Entries are keyed by ``(cube, fingerprint)`` (see
:mod:`repro.serve.fingerprint`) and stamped with the cube's write
generation at compute time.  Invalidation is belt *and* braces:

- eagerly, the :class:`~repro.serve.service.QueryService` write listener
  calls :meth:`invalidate_cube` — exactly the written cube's entries
  drop, never the whole cache;
- lazily, :meth:`get` re-validates the stored generation against the
  cube's current one, so even a racing write that lands between a
  lookup and a store can never cause a stale read.

Every entry's byte footprint is measured at store time
(:func:`~repro.obs.memory.deep_sizeof`) into a running total, so the
memory accountant's usage callback is O(1); :meth:`reclaim` shrinks
LRU-first under memory pressure — the cache is the cheapest store to
rebuild, so it is first in the eviction order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.obs.memory import deep_sizeof
from repro.util.stats import Counters


@dataclass(frozen=True)
class CacheEntry:
    """One cached result and the generation it was computed at."""

    generation: int
    value: Any


class ResultCache:
    """Thread-safe LRU of query results keyed by canonical fingerprint."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.counters = Counters()
        self._entries: OrderedDict[tuple[str, str], CacheEntry] = OrderedDict()
        self._sizes: dict[tuple[str, str], int] = {}
        self._resident_bytes = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _drop(self, key: tuple[str, str]) -> None:
        # caller holds the lock
        del self._entries[key]
        self._resident_bytes -= self._sizes.pop(key, 0)

    def get(self, cube: str, fingerprint: str, generation: int):
        """The cached value, or ``None`` on miss / generation mismatch."""
        key = (cube, fingerprint)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.counters.add("result_cache.misses")
                return None
            if entry.generation != generation:
                # lazy invalidation: computed against older data
                self._drop(key)
                self.counters.add("result_cache.stale_drops")
                self.counters.add("result_cache.misses")
                return None
            self._entries.move_to_end(key)
            self.counters.add("result_cache.hits")
            return entry.value

    def put(self, cube: str, fingerprint: str, generation: int, value) -> None:
        """Store one result computed at ``generation``."""
        key = (cube, fingerprint)
        nbytes = deep_sizeof((key, generation, value))
        with self._lock:
            if key in self._entries:
                self._resident_bytes -= self._sizes.pop(key, 0)
            self._entries[key] = CacheEntry(generation, value)
            self._sizes[key] = nbytes
            self._resident_bytes += nbytes
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                victim = next(iter(self._entries))
                self._drop(victim)
                self.counters.add("result_cache.evictions")

    def invalidate_cube(self, cube: str) -> int:
        """Drop exactly one cube's entries; returns how many dropped."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == cube]
            for key in stale:
                self._drop(key)
            if stale:
                self.counters.add("result_cache.invalidations", len(stale))
            return len(stale)

    def clear(self) -> None:
        """Drop everything."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._resident_bytes = 0

    def keys(self) -> list[tuple[str, str]]:
        """The live ``(cube, fingerprint)`` keys, LRU-first."""
        with self._lock:
            return list(self._entries)

    # -- memory accounting -------------------------------------------------

    def resident_bytes(self) -> int:
        """Measured bytes across every live entry (O(1))."""
        with self._lock:
            return self._resident_bytes

    def reclaim(self, target_bytes: int) -> int:
        """Evict LRU-first until at most ``target_bytes`` remain.

        Returns bytes freed.  Called by the memory accountant under
        pressure; distinct from capacity eviction so dashboards can
        tell "cache churn" from "process under memory pressure".
        """
        freed = 0
        with self._lock:
            while self._resident_bytes > target_bytes and self._entries:
                victim = next(iter(self._entries))
                freed += self._sizes.get(victim, 0)
                self._drop(victim)
                self.counters.add("result_cache.pressure_evictions")
        return freed

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest entries as ``{"key", "bytes"}`` dicts."""
        with self._lock:
            sized = sorted(
                self._sizes.items(), key=lambda item: item[1], reverse=True
            )
        return [
            {"key": f"{cube}/{fingerprint}", "bytes": nbytes}
            for (cube, fingerprint), nbytes in sized[:n]
        ]
