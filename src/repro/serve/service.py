"""`QueryService`: the concurrent serving façade over `OlapEngine`.

The engine itself is deliberately single-threaded (its buffer pool,
tracer spans and non-blocking lock manager assume one caller), so the
service layers concurrency *around* it:

- a thread pool runs admitted queries; admission control rejects work
  beyond ``max_in_flight`` with :class:`~repro.errors.AdmissionError`
  (backpressure, not unbounded queueing);
- a :class:`~repro.serve.result_cache.ResultCache` serves repeated
  queries without touching the engine at all — cache hits are the
  concurrency win, engine misses serialize behind one lock;
- a :class:`~repro.serve.chunk_cache.ChunkCache` is attached to every
  cube's array so consolidations reuse decoded chunks;
- every write path (:meth:`write_cell`, :meth:`append_facts`,
  :meth:`rebuild_array`) bumps the cube generation and eagerly
  invalidates exactly that cube's cached fingerprints;
- the service is **recovery-aware**: engine calls that raise a
  :class:`~repro.errors.TransientError` retry with capped exponential
  backoff, a :class:`~repro.errors.PermanentError` (or an exhausted
  retry budget) flips the cube into *degraded mode* — cache hits keep
  being served, misses and writes raise
  :class:`~repro.errors.DegradedError` — and :meth:`recover_cube`
  replays the WAL in place and lifts the degradation.

All cache and admission counters register in the
:class:`~repro.obs.registry.MetricsRegistry` with a no-op reset so they
stay cumulative across the engine's per-query stat boundaries, and
queue depth / cache residency export as gauges.

The service also owns the **temporal** observability stack: a
:class:`~repro.obs.timeseries.TimeSeriesStore` over the engine's
registry, an :class:`~repro.obs.alerts.AlertManager` evaluated at every
sampler tick (its firing count exports as the ``serve.alerts_firing``
gauge), and a :class:`~repro.obs.profiler.SamplingProfiler`.  Both
background threads are opt-in via :class:`ServiceConfig`
(``timeseries_interval_s`` / ``profile_sampling_s``) and stop in
:meth:`close`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import (
    AdmissionError,
    DegradedError,
    MetricsError,
    PermanentError,
    ReproError,
    RetryExhaustedError,
    TransientError,
)
from repro.obs.alerts import AlertManager, SloRule
from repro.obs.explain import PlanCache, QueryPlan, attach_actuals
from repro.obs.memory import MemoryAccountant
from repro.obs.profiler import SamplingProfiler
from repro.obs.exporters import span_to_dict
from repro.obs.slowlog import SlowQueryLog
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracer import Tracer, get_tracer, thread_tracing
from repro.obs.tracing import (
    TraceContext,
    TraceStore,
    current_trace_context,
    current_trace_links,
    trace_context,
)
from repro.olap.engine import OlapEngine, QueryResult
from repro.olap.options import ExecutionOptions, coerce_options
from repro.olap.query import ConsolidationQuery
from repro.serve.chunk_cache import ChunkCache
from repro.serve.fingerprint import query_fingerprint
from repro.serve.result_cache import ResultCache
from repro.storage.wal import recover as wal_recover
from repro.util.stats import Counters, Timer


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`QueryService`."""

    #: worker threads executing admitted queries
    max_workers: int = 4
    #: admitted-but-unfinished queries beyond which :meth:`submit`
    #: rejects with :class:`AdmissionError` (queued + running)
    max_in_flight: int = 16
    #: LRU capacity of the query-result cache, in entries
    result_cache_size: int = 256
    #: LRU capacity of the shared decoded-chunk cache, in chunks
    chunk_cache_chunks: int = 1024
    #: run engine misses cold (paper methodology) instead of warm
    cold: bool = False
    #: retries after a :class:`TransientError` before the cube degrades
    retry_attempts: int = 3
    #: first retry backoff, seconds (doubles per attempt)
    retry_base_s: float = 0.001
    #: backoff ceiling, seconds
    retry_cap_s: float = 0.05
    #: end-to-end latency beyond which a query's profile is captured
    #: into the slow-query log
    slowlog_threshold_s: float = 0.25
    #: ring-buffer capacity of the slow-query log, in entries
    slowlog_capacity: int = 64
    #: run every query under a per-thread tracer so slow ones capture
    #: their full span tree; disable to shave the per-span registry
    #: snapshots off the hot path (slowlog entries then carry no trace)
    profile_queries: bool = True
    #: fingerprint-keyed LRU of EXPLAIN payloads (``/explain/<fp>``)
    plan_cache_size: int = 64
    #: embed an analyzed plan (estimate vs. actual per node) into every
    #: slow-query record; needs ``profile_queries`` for the actuals
    slowlog_plans: bool = True
    #: sample the registry into the time-series ring every this many
    #: seconds (0 keeps the sampler off; the store still answers
    #: windowed queries over manually-taken samples)
    timeseries_interval_s: float = 0.0
    #: ring capacity of the time-series store, in snapshots
    timeseries_capacity: int = 600
    #: SLO rules the alert manager evaluates at every sampler tick
    #: (``None`` installs :func:`repro.obs.alerts.default_rules`)
    slo_rules: tuple[SloRule, ...] | None = None
    #: wall-clock sampling-profiler tick interval (0 keeps it off)
    profile_sampling_s: float = 0.0
    #: chunk-range shards engine misses scatter over (1 = classic
    #: single-scan path; >1 routes misses through the shard coordinator)
    shards: int = 1
    #: where shard scans run: ``local`` / ``thread`` / ``process``
    executor: str = "local"
    #: ring capacity of the flight-recorder trace store, in traces
    trace_store_capacity: int = 256
    #: head-sampling probability for traces that are neither slow,
    #: errored nor explicitly requested (those are always kept)
    trace_sample_rate: float = 1.0
    #: process resident-set budget across every accounted store, in
    #: bytes (0 = unbounded: accounting only, no pressure eviction).
    #: When the accounted total exceeds this, the memory accountant
    #: reclaims in cheap-to-rebuild-first order: result cache →
    #: decoded chunks → coldest rollup grains
    memory_budget_bytes: int = 0


class QueryService:
    """Concurrent, cached query execution over one :class:`OlapEngine`.

    Use as a context manager or call :meth:`close` to release the
    thread pool and detach the write listener.  Mutations must go
    through the service's write methods — direct engine writes while
    queries are in flight would trip the engine's non-blocking lock
    manager (the service serializes engine access for both).
    """

    def __init__(self, engine: OlapEngine, config: ServiceConfig | None = None):
        self.engine = engine
        self.config = config or ServiceConfig()
        self.results = ResultCache(self.config.result_cache_size)
        self.chunks = ChunkCache(self.config.chunk_cache_chunks)
        self.counters = Counters()
        self.slowlog = SlowQueryLog(
            capacity=self.config.slowlog_capacity,
            threshold_s=self.config.slowlog_threshold_s,
        )
        self.plans = PlanCache(self.config.plan_cache_size)
        self.traces = TraceStore(
            capacity=self.config.trace_store_capacity,
            sample_rate=self.config.trace_sample_rate,
            slow_threshold_s=self.config.slowlog_threshold_s,
        )
        self.timeseries = TimeSeriesStore(
            engine.db.metrics, capacity=self.config.timeseries_capacity
        )
        rules = self.config.slo_rules
        self.alerts = AlertManager(
            self.timeseries,
            rules=list(rules) if rules is not None else None,
            slowlog=self.slowlog,
        )
        self.profiler = SamplingProfiler(
            interval_s=self.config.profile_sampling_s or 0.005
        )
        self._engine_lock = threading.RLock()
        self._admission_lock = threading.Lock()
        self._in_flight = 0
        self._closed = False
        self._degraded: set[str] = set()  # guarded by _admission_lock
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-serve",
        )
        engine.add_write_listener(self._on_write)
        for name in list(engine._cubes):
            self._attach_chunk_cache(name)
        self._register_metrics()
        self.memory = MemoryAccountant(
            engine.db.metrics,
            budget_bytes=self.config.memory_budget_bytes,
        )
        self._register_memory_stores()
        if self.config.timeseries_interval_s > 0:
            self.timeseries.start(
                self.config.timeseries_interval_s,
                hooks=(self.alerts.evaluate, self._memory_tick),
            )
        if self.config.profile_sampling_s > 0:
            self.profiler.start()

    # -- metrics -----------------------------------------------------------

    def _register_metrics(self) -> None:
        registry = self.engine.db.metrics
        keep = lambda: None  # noqa: E731 — cumulative across query resets
        registry.register("serve:service", self.counters, reset=keep, replace=True)
        registry.register(
            "serve:result_cache", self.results.counters, reset=keep, replace=True
        )
        registry.register(
            "serve:chunk_cache", self.chunks.counters, reset=keep, replace=True
        )
        registry.register(
            "serve:traces", self.traces.counters, reset=keep, replace=True
        )
        registry.register_gauge(
            "serve.in_flight", lambda: float(self._in_flight), replace=True
        )
        registry.register_gauge(
            "serve.result_cache_entries", lambda: float(len(self.results)),
            replace=True,
        )
        registry.register_gauge(
            "serve.chunk_cache_entries", lambda: float(len(self.chunks)),
            replace=True,
        )
        registry.register_gauge(
            "serve.degraded_cubes", lambda: float(len(self._degraded)),
            replace=True,
        )
        registry.register_gauge(
            "serve.slowlog_entries", lambda: float(len(self.slowlog)),
            replace=True,
        )
        registry.register_gauge(
            "serve.plan_cache_entries", lambda: float(len(self.plans)),
            replace=True,
        )
        registry.register_gauge(
            "serve.traces_resident", lambda: float(len(self.traces)),
            replace=True,
        )
        registry.register_gauge(
            "serve.alerts_firing",
            lambda: float(self.alerts.firing_count()),
            replace=True,
        )
        # replace=True with no histogram supplied *keeps* an existing
        # histogram, so a service restarted over the same engine
        # continues the process's latency history
        self._histograms = {
            name: registry.register_histogram(name, replace=True)
            for name in (
                "serve.query_latency_seconds",
                "serve.queue_wait_seconds",
                "serve.cache_lookup_seconds",
                "serve.admission_depth",
                "serve.recovery_seconds",
            )
        }
        for name, histogram in self.chunks.histograms.items():
            registry.register_histogram(name, histogram, replace=True)

    def _register_memory_stores(self) -> None:
        """Wire every resident store into the memory accountant.

        Reclaim order (``cost_rank``) is cheapest-to-rebuild first:
        result cache (one engine query) → decoded chunks (one pool
        read + decode each) → rollup grains (rank 2, registered by the
        API endpoint that owns the router) → cached plans → telemetry
        rings (slowlog, traces), whose loss costs a debugging
        breadcrumb but never a wrong answer.  The buffer pool and the
        time-series ring are accounted but never evicted from here:
        both enforce their own capacity bounds.
        """
        memory = self.memory
        memory.register_store(
            "result_cache",
            self.results.resident_bytes,
            reclaim=self.results.reclaim,
            top_entries=self.results.top_entries,
            cost_rank=0,
            share=0.10,
        )
        memory.register_store(
            "chunk_cache",
            self.chunks.resident_bytes,
            reclaim=self.chunks.reclaim,
            top_entries=self.chunks.top_entries,
            cost_rank=1,
            share=0.25,
        )
        memory.register_store("buffer_pool", self.engine.db.pool.resident_bytes)
        memory.register_store(
            "plan_cache",
            self.plans.resident_bytes,
            reclaim=self.plans.reclaim,
            top_entries=self.plans.top_entries,
            cost_rank=3,
            share=0.02,
        )
        memory.register_store(
            "slowlog",
            self.slowlog.resident_bytes,
            reclaim=self.slowlog.reclaim,
            cost_rank=4,
            share=0.02,
        )
        memory.register_store(
            "traces",
            self.traces.resident_bytes,
            reclaim=self.traces.reclaim,
            top_entries=self.traces.top_entries,
            cost_rank=5,
            share=0.02,
        )
        memory.register_store("timeseries", self.timeseries.resident_bytes)
        memory.register_store("shard_workers", self._shard_worker_bytes)
        # the chunk cache's only growth point is a miss insert; check
        # the budget right there instead of waiting for a sampler tick
        self.chunks.pressure_callback = (
            lambda: memory.maybe_reclaim("chunk_cache_insert")
        )

    def _shard_worker_bytes(self) -> float:
        """Process-worker buffer-pool bytes, as last folded back."""
        coordinator = getattr(self.engine, "_shard_coordinator", None)
        if coordinator is None:
            return 0.0
        return coordinator.worker_pool_resident_bytes()

    def _memory_tick(self, _point) -> None:
        """Sampler hook: enforce the budget once per time-series tick."""
        self.memory.maybe_reclaim("sampler")

    def stats(self) -> dict[str, float]:
        """Cumulative service + cache counters, merged."""
        merged = Counters()
        merged.merge(self.counters)
        merged.merge(self.results.counters)
        merged.merge(self.chunks.counters)
        return merged.snapshot()

    @property
    def in_flight(self) -> int:
        """Admitted queries not yet finished (queued + running)."""
        return self._in_flight

    # -- cache plumbing ----------------------------------------------------

    def _attach_chunk_cache(self, cube: str) -> None:
        state = self.engine.cube(cube)
        if state.array is not None and state.array.chunk_cache is None:
            state.array.chunk_cache = self.chunks

    def _on_write(self, cube: str) -> None:
        dropped = self.results.invalidate_cube(cube)
        self.counters.add("serve.writes")
        if dropped:
            self.counters.add("serve.entries_invalidated", dropped)

    # -- query path --------------------------------------------------------

    def _resolve_options(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None,
        legacy: dict,
        where: str,
    ) -> ExecutionOptions:
        """Precedence: explicit ``options`` > options attached to the
        query > the service config's ``shards``/``executor`` defaults."""
        if options is None and query.options is not None:
            options = query.options
        if options is None and not legacy:
            return ExecutionOptions(
                shards=self.config.shards, executor=self.config.executor
            )
        return coerce_options(options, legacy, where)

    def query(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        **legacy,
    ) -> QueryResult:
        """Execute under one :class:`ExecutionOptions` surface and wait.

        Precedence: explicit ``options`` > options attached to the query
        > the service config's ``shards``/``executor`` defaults.  The
        removed loose keywords (``backend=``, ``mode=``, ...) raise
        :class:`TypeError`.
        """
        opts = self._resolve_options(query, options, legacy, "QueryService.query")
        return self.submit(query, opts).result()

    def submit(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        **legacy,
    ) -> "Future[QueryResult]":
        """Admit one query onto the pool; returns its future.

        ``options`` defaults to the query's attached options, then to
        the service config's ``shards``/``executor``.  Raises
        :class:`AdmissionError` when the service is closed or
        ``max_in_flight`` queries are already admitted.
        """
        opts = self._resolve_options(
            query, options, legacy, "QueryService.submit"
        )
        # resolve the trace identity on the *caller's* thread, before the
        # hop onto the pool loses its thread-locals: an explicit options
        # context wins, then whatever the caller (API handler, CLI) has
        # installed, then a fresh service-minted root
        trace = opts.trace or current_trace_context()
        if trace is None:
            trace = self.traces.mint(origin="service")
        with self._admission_lock:
            if self._closed:
                raise AdmissionError("service is closed")
            if self._in_flight >= self.config.max_in_flight:
                self.counters.add("serve.rejected")
                raise AdmissionError(
                    f"{self._in_flight} queries in flight (limit "
                    f"{self.config.max_in_flight})"
                )
            self._in_flight += 1
            depth = self._in_flight
        self.counters.add("serve.admitted")
        self._histograms["serve.admission_depth"].observe(float(depth))
        return self._pool.submit(
            self._run,
            query,
            opts,
            trace,
            time.perf_counter(),
        )

    def execute(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        **legacy,
    ) -> QueryResult:
        """Admit one query and wait for its result."""
        return self.submit(query, options, **legacy).result()

    def _run(
        self, query, opts: ExecutionOptions, trace: TraceContext, admitted_s
    ) -> QueryResult:
        start = time.perf_counter()
        self._histograms["serve.queue_wait_seconds"].observe(
            start - admitted_s
        )
        fingerprint = query_fingerprint(
            query, opts.backend, opts.mode, opts.order,
            shards=opts.shards, executor=opts.executor,
        )
        tracer: Tracer | None = None
        status = "ok"
        try:
            with trace_context(trace):
                try:
                    if self.config.profile_queries:
                        tracer = Tracer(registry=self.engine.db.metrics)
                        with thread_tracing(tracer):
                            result = self._execute(query, opts, fingerprint)
                    else:
                        result = self._execute(query, opts, fingerprint)
                except Exception as exc:
                    status = type(exc).__name__
                    raise
                finally:
                    latency = time.perf_counter() - start
                    self._record_trace(
                        trace, query, fingerprint, status, latency, tracer
                    )
            self._note_latency(
                latency, query, opts, fingerprint, result, tracer, trace
            )
            return result
        finally:
            self._histograms["serve.query_latency_seconds"].observe(
                time.perf_counter() - start, trace_id=trace.trace_id
            )
            with self._admission_lock:
                self._in_flight -= 1

    def _record_trace(
        self, trace, query, fingerprint, status, latency_s, tracer
    ) -> None:
        """Contribute this query's outcome (and span trees) to the store.

        Runs inside the :class:`trace_context` block so links attached
        below (a stale-grain rollup fallback scheduling a rebuild) ride
        along.  The store merges by trace_id, so an API request and the
        queries it fanned out accumulate into one record.
        """
        roots = (
            [span_to_dict(root) for root in tracer.roots]
            if tracer is not None
            else None
        )
        self.traces.record(
            trace,
            name=f"query:{query.cube}",
            origin=trace.origin or "service",
            status=status,
            latency_s=latency_s,
            roots=roots,
            links=current_trace_links(),
            attrs={"fingerprint": fingerprint, "cube": query.cube},
        )

    def _note_latency(
        self, latency, query, opts, fingerprint, result, tracer, trace
    ) -> None:
        """Feed one finished query into the slow-query log."""
        if not self.slowlog.should_capture(latency):
            return
        # snapshot the query's own span trees first: the plan rebuild
        # below runs in its own span, which must not ride into this
        # entry's trace
        roots = list(tracer.roots) if tracer is not None else None
        explain = self._slow_plan(query, opts, result, tracer)
        entry = self.slowlog.record(
            fingerprint=fingerprint,
            cube=query.cube,
            backend=result.backend,
            latency_s=latency,
            roots=roots,
            cache="hit" if result.stats.get("result_cache_hit") else "miss",
            requested_backend=opts.backend,
            explain=explain,
            trace_id=trace.trace_id if trace is not None else None,
        )
        if entry is not None:
            self.counters.add("serve.slow_queries")
            if explain is not None:
                self.plans.put(fingerprint, explain)

    def _slow_plan(self, query, opts, result, tracer) -> dict | None:
        """Best-effort analyzed plan for one slow engine miss.

        Rebuilds the planner's estimates (deterministic, so the plan
        matches the run we just traced) and attaches the actuals from
        the already-captured span tree — the query is *not* re-run.
        Cache hits never touched the engine, so they carry no plan.
        """
        if not self.config.slowlog_plans or tracer is None:
            return None
        if result.stats.get("result_cache_hit"):
            return None
        span = None
        for root in tracer.roots:
            span = root.find("query")
            if span is not None:
                break
        if span is None:
            return None
        # a named span so the profiler attributes the planner rebuild
        # (significant on miss-heavy workloads, e.g. under a memory
        # budget that keeps evicting the result cache)
        try:
            with tracer.span("slow_plan", cube=query.cube):
                with self._engine_lock:
                    plan = self.engine.explain(query, opts)
        except ReproError:
            return None
        attach_actuals(plan.root, span)
        plan.analyzed = True
        plan.rows = len(result.rows)
        plan.elapsed_s = result.elapsed_s
        plan.sim_io_s = result.sim_io_s
        plan.totals = dict(result.stats)
        return plan.to_dict()

    def explain(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        analyze: bool = False,
        **legacy,
    ) -> QueryPlan:
        """EXPLAIN (optionally ANALYZE) one query through the service.

        The same ``(options, analyze)`` signature as
        :meth:`OlapEngine.explain <repro.olap.engine.OlapEngine.explain>`
        and :meth:`ConsolidationQuery.explain
        <repro.olap.query.ConsolidationQuery.explain>`.  Serializes
        behind the engine lock like any miss; an ANALYZE run executes
        with the service's warm/cold policy.  The payload is kept in
        the fingerprint-keyed plan cache for ``/explain/<fingerprint>``.
        """
        self._check_degraded(query.cube)
        opts = self._resolve_options(
            query, options, legacy, "QueryService.explain"
        )
        with self._engine_lock:
            self._attach_chunk_cache(query.cube)
            plan = self.engine.explain(
                query,
                opts,
                analyze=analyze,
                cold=self.config.cold,
            )
        self.plans.put(plan.fingerprint, plan.to_dict())
        self.counters.add("serve.explains")
        if analyze:
            self.counters.add("serve.explain_analyzes")
        return plan

    def _execute(
        self, query, opts: ExecutionOptions, fingerprint=None
    ) -> QueryResult:
        cube = query.cube
        if fingerprint is None:
            fingerprint = query_fingerprint(
                query, opts.backend, opts.mode, opts.order,
                shards=opts.shards, executor=opts.executor,
            )
        tracer = get_tracer()
        with Timer() as timer:
            cached = self.results.get(
                cube, fingerprint, self.engine.cube_generation(cube)
            )
        self._histograms["serve.cache_lookup_seconds"].observe(timer.elapsed)
        if cached is not None:
            with tracer.span(
                "serve_query", cube=cube, cache="hit", backend=cached.backend
            ):
                return self._from_cache(cached, timer)
        self._check_degraded(cube)
        # each retry attempt takes the engine lock by itself, so backoff
        # sleeps never stall other cubes' queued queries
        result = self._with_retries(
            cube,
            lambda: self._execute_miss(query, opts, fingerprint),
        )
        # the miss grew the result cache; check the budget after the
        # engine lock is released so reclaim never runs under it
        self.memory.maybe_reclaim("result_cache_insert")
        return result

    def _execute_miss(self, query, opts: ExecutionOptions, fingerprint):
        """One serialized attempt at an engine miss (runs under retry)."""
        cube = query.cube
        tracer = get_tracer()
        with self._engine_lock:
            # double-check: another worker may have computed it while
            # this one waited for the engine (or slept between attempts)
            with Timer() as timer:
                generation = self.engine.cube_generation(cube)
                cached = self.results.get(cube, fingerprint, generation)
            self._histograms["serve.cache_lookup_seconds"].observe(
                timer.elapsed
            )
            if cached is not None:
                with tracer.span(
                    "serve_query", cube=cube, cache="hit", backend=cached.backend
                ):
                    return self._from_cache(cached, timer)
            self._check_degraded(cube)  # may have degraded while we waited
            with tracer.span(
                "serve_query", cube=cube, cache="miss", backend=opts.backend
            ):
                self._attach_chunk_cache(cube)
                result = self.engine.query(
                    query,
                    backend=opts.backend,
                    mode=opts.mode,
                    cold=self.config.cold,
                    order=opts.order,
                    shards=opts.shards,
                    executor=opts.executor,
                    allow_partial=opts.allow_partial,
                )
                # the generation cannot have moved: writes also
                # serialize behind the engine lock.  Inside the span so
                # the insert's byte measurement attributes to the query
                self.results.put(cube, fingerprint, generation, result)
            return result

    def _from_cache(self, result: QueryResult, timer: Timer) -> QueryResult:
        out = QueryResult(
            rows=result.rows,
            backend=result.backend,
            mode=result.mode,
            elapsed_s=timer.elapsed,
            sim_io_s=0.0,
            stats=dict(result.stats),
        )
        out.stats["result_cache_hit"] = 1.0
        return out

    # -- fault handling ----------------------------------------------------

    def _check_degraded(self, cube: str) -> None:
        with self._admission_lock:
            degraded = cube in self._degraded
        if degraded:
            self.counters.add("serve.degraded_rejections")
            raise DegradedError(
                f"cube {cube!r} is degraded (serving cache hits only); "
                "call recover_cube() and retry"
            )

    def _mark_degraded(self, cube: str) -> None:
        with self._admission_lock:
            if cube not in self._degraded:
                self._degraded.add(cube)
                self.counters.add("serve.degradations")

    def is_degraded(self, cube: str) -> bool:
        """Whether ``cube`` is currently serving cache hits only."""
        with self._admission_lock:
            return cube in self._degraded

    def degraded_cubes(self) -> list[str]:
        """Names of cubes currently in degraded mode, sorted."""
        with self._admission_lock:
            return sorted(self._degraded)

    def _with_retries(self, cube: str, action):
        """Run ``action`` retrying :class:`TransientError` failures.

        Backoff doubles from ``retry_base_s`` up to ``retry_cap_s``.
        A :class:`PermanentError` (or an exhausted retry budget) flips
        the cube into degraded mode, after which only cache hits are
        served until :meth:`recover_cube` runs.  ``action`` must take
        the engine lock itself: the backoff sleep here runs with no
        locks held, so one cube's retry storm never blocks the others.
        """
        tracer = get_tracer()
        delay = self.config.retry_base_s
        last: TransientError | None = None
        for attempt in range(self.config.retry_attempts + 1):
            try:
                return action()
            except DegradedError:
                raise  # already degraded: not a fault to retry or re-mark
            except PermanentError:
                self._mark_degraded(cube)
                raise
            except TransientError as exc:
                last = exc
                self.counters.add("serve.transient_faults")
                if attempt >= self.config.retry_attempts:
                    break
                self.counters.add("serve.retries")
                with tracer.span(
                    "serve_retry", cube=cube, attempt=attempt + 1
                ):
                    time.sleep(delay)
                delay = min(delay * 2, self.config.retry_cap_s)
        self.counters.add("serve.retries_exhausted")
        self._mark_degraded(cube)
        raise RetryExhaustedError(
            f"cube {cube!r}: {self.config.retry_attempts} retries failed "
            f"({last}); cube degraded"
        ) from last

    def recover_cube(self, cube: str) -> int:
        """Recover a cube and lift degraded mode; returns pages replayed.

        With a WAL the pool is crashed (dropping every possibly-suspect
        frame) and committed after-images are replayed onto the disk —
        the same path a process restart takes, run in place.  Without a
        WAL there is nothing to replay; the caches are still dropped so
        the next read re-reads authoritative disk state.  Cached query
        *results* are kept: they were computed from committed state,
        which recovery preserves by definition.
        """
        db = self.engine.db
        state = self.engine.cube(cube)  # validates the name
        tracer = get_tracer()
        start = time.perf_counter()
        with self._engine_lock:
            with tracer.span("recover_cube", cube=cube):
                replayed = 0
                if db.wal is not None:
                    db.pool.crash()
                    replayed = wal_recover(db.disk, db.wal)
                else:
                    db.pool.clear()
                if state.array is not None:
                    self.chunks.invalidate_array(state.array.name)
                with self._admission_lock:
                    self._degraded.discard(cube)
                self.counters.add("serve.recoveries")
                if replayed:
                    self.counters.add("serve.pages_replayed", replayed)
        self._histograms["serve.recovery_seconds"].observe(
            time.perf_counter() - start
        )
        return replayed

    # -- write path --------------------------------------------------------

    def write_cell(self, cube: str, keys, measures) -> None:
        """Serialized :meth:`OlapEngine.write_cell` + cache invalidation."""
        self._check_degraded(cube)
        with self._engine_lock:
            self.engine.write_cell(cube, keys, measures)

    def append_facts(self, cube: str, rows) -> None:
        """Serialized :meth:`OlapEngine.append_facts` + cache invalidation."""
        self._check_degraded(cube)
        with self._engine_lock:
            self.engine.append_facts(cube, rows)

    def rebuild_array(self, cube: str, **kwargs):
        """Serialized :meth:`OlapEngine.rebuild_array` + cache invalidation."""
        self._check_degraded(cube)
        with self._engine_lock:
            return self.engine.rebuild_array(cube, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop admitting, drain the pool, detach listener and metrics."""
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        self.timeseries.stop()
        self.profiler.stop()
        self._pool.shutdown(wait=wait)
        self.chunks.pressure_callback = None
        self.memory.close()
        # shard worker pools / scratch volume images are engine-owned
        # but serving-driven; release them with the serving layer (the
        # coordinator lazily recreates everything if queried again)
        self.engine.close_shards()
        try:
            self.engine.remove_write_listener(self._on_write)
        except ValueError:  # pragma: no cover — already detached
            pass
        for state in self.engine._cubes.values():
            if state.array is not None and state.array.chunk_cache is self.chunks:
                state.array.chunk_cache = None
        registry = self.engine.db.metrics
        for name in (
            "serve:service",
            "serve:result_cache",
            "serve:chunk_cache",
            "serve:traces",
        ):
            try:
                registry.unregister(name)
            except MetricsError:  # pragma: no cover — replaced by a newer service
                pass

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
