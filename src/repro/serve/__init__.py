"""Concurrent serving over the OLAP engine (the ROADMAP north star).

``repro.serve`` wraps the single-threaded :class:`~repro.olap.engine.
OlapEngine` for concurrent traffic: a thread pool with admission
control, an LRU result cache with generation-based invalidation, and a
shared decoded-chunk cache.  See :class:`QueryService`.
"""

from repro.serve.chunk_cache import ChunkCache
from repro.serve.fingerprint import query_fingerprint
from repro.serve.result_cache import CacheEntry, ResultCache
from repro.serve.service import QueryService, ServiceConfig

__all__ = [
    "CacheEntry",
    "ChunkCache",
    "QueryService",
    "ResultCache",
    "ServiceConfig",
    "query_fingerprint",
]
