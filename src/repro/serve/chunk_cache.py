"""A shared decoded-chunk cache layered over the buffer pool.

The buffer pool caches *pages*; every chunk read still pays the
large-object fetch and the codec decode.  :class:`ChunkCache` keeps the
decoded ``(offsets, values)`` pair per ``(array name, chunk number)``
in an LRU map so concurrent consolidations of the same array reuse the
decompressed chunk — the layering Rusu & Cheng describe as the standard
array-engine serving architecture.

Thread-safety: the map itself is guarded by one lock; a *separate* I/O
lock serializes the underlying buffer-pool read on a miss (the pool's
pin/evict bookkeeping is single-threaded) with a double-check so a
chunk decoded while a reader waited is not decoded twice.  Cached
arrays are shared — callers must treat them as read-only, which every
in-tree consumer already does.

Byte accounting: an entry's footprint is the two numpy buffers'
``nbytes`` (plus a small fixed overhead), maintained as a running
total so the memory accountant's usage callback is O(1).  A miss
insert is the cache's only growth point, so it fires the optional
``pressure_callback`` — the accountant's budget enforcement hook —
*after* the I/O lock is released, never under it.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.obs.histogram import Histogram
from repro.util.stats import Counters

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.core.olap_array import OLAPArray

_Chunk = "tuple[np.ndarray, np.ndarray]"

#: per-entry bookkeeping overhead (tuple, dict slots, key) in bytes.
_ENTRY_OVERHEAD = 160


class ChunkCache:
    """LRU cache of decoded chunks, shared across arrays and threads."""

    def __init__(self, max_chunks: int = 1024):
        if max_chunks <= 0:
            raise ValueError(f"max_chunks must be positive, got {max_chunks}")
        self.max_chunks = max_chunks
        self.counters = Counters()
        #: lookup = whole get_chunk (hit or miss, including I/O-lock
        #: wait); decode = the serialized disk read + codec decode on a
        #: miss.  Registered by ``QueryService._register_metrics``.
        self.histograms: dict[str, Histogram] = {
            "chunk_cache.lookup_seconds": Histogram(),
            "chunk_cache.decode_seconds": Histogram(),
        }
        #: called after a miss insert grew the cache; the memory
        #: accountant installs its budget check here
        self.pressure_callback: Callable[[], object] | None = None
        self._entries: OrderedDict[tuple[str, int], object] = OrderedDict()
        self._sizes: dict[tuple[str, int], int] = {}
        self._resident_bytes = 0
        self._lock = threading.RLock()
        self._io_lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def _chunk_bytes(chunk) -> int:
        offsets, values = chunk
        return int(offsets.nbytes) + int(values.nbytes) + _ENTRY_OVERHEAD

    def _drop(self, key: tuple[str, int]) -> None:
        # caller holds the lock
        del self._entries[key]
        self._resident_bytes -= self._sizes.pop(key, 0)

    def get_chunk(self, array: "OLAPArray", chunk_no: int):
        """The decoded chunk, from cache or via one serialized disk read."""
        key = (array.name, chunk_no)
        lookup_start = time.perf_counter()
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.counters.add("chunk_cache.hits")
                self.histograms["chunk_cache.lookup_seconds"].observe(
                    time.perf_counter() - lookup_start
                )
                return hit
        with self._io_lock:
            # double-check: another thread may have filled it while we
            # waited for the I/O lock
            with self._lock:
                hit = self._entries.get(key)
                if hit is not None:
                    self._entries.move_to_end(key)
                    self.counters.add("chunk_cache.hits")
                    self.histograms["chunk_cache.lookup_seconds"].observe(
                        time.perf_counter() - lookup_start
                    )
                    return hit
            decode_start = time.perf_counter()
            chunk = array._read_chunk_direct(chunk_no)
            self.histograms["chunk_cache.decode_seconds"].observe(
                time.perf_counter() - decode_start
            )
            with self._lock:
                self.counters.add("chunk_cache.misses")
                if key in self._entries:
                    self._resident_bytes -= self._sizes.pop(key, 0)
                self._entries[key] = chunk
                self._sizes[key] = self._chunk_bytes(chunk)
                self._resident_bytes += self._sizes[key]
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_chunks:
                    victim = next(iter(self._entries))
                    self._drop(victim)
                    self.counters.add("chunk_cache.evictions")
        # outside both locks: the pressure hook may call right back
        # into reclaim(), which takes the entry lock
        if self.pressure_callback is not None:
            self.pressure_callback()
        self.histograms["chunk_cache.lookup_seconds"].observe(
            time.perf_counter() - lookup_start
        )
        return chunk

    def invalidate_chunk(self, array_name: str, chunk_no: int) -> None:
        """Drop one chunk (called by copy-on-write cell writes)."""
        with self._lock:
            key = (array_name, chunk_no)
            if key in self._entries:
                self._drop(key)
                self.counters.add("chunk_cache.invalidations")

    def invalidate_array(self, array_name: str) -> None:
        """Drop every chunk of one array (rebuilds, cold-cache runs)."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == array_name]
            for key in stale:
                self._drop(key)
            if stale:
                self.counters.add("chunk_cache.invalidations", len(stale))

    def clear(self) -> None:
        """Drop everything (no counters: not an invalidation event)."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._resident_bytes = 0

    # -- memory accounting -------------------------------------------------

    def resident_bytes(self) -> int:
        """Decoded-buffer bytes across every live chunk (O(1))."""
        with self._lock:
            return self._resident_bytes

    def reclaim(self, target_bytes: int) -> int:
        """Evict LRU-first until at most ``target_bytes`` remain.

        Returns bytes freed.  An evicted chunk is re-decoded from the
        buffer pool on next touch — correctness is untouched, only the
        decode cost returns.
        """
        freed = 0
        with self._lock:
            while self._resident_bytes > target_bytes and self._entries:
                victim = next(iter(self._entries))
                freed += self._sizes.get(victim, 0)
                self._drop(victim)
                self.counters.add("chunk_cache.pressure_evictions")
        return freed

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest chunks as ``{"key", "bytes"}`` dicts."""
        with self._lock:
            sized = sorted(
                self._sizes.items(), key=lambda item: item[1], reverse=True
            )
        return [
            {"key": f"{name}#{chunk_no}", "bytes": nbytes}
            for (name, chunk_no), nbytes in sized[:n]
        ]
