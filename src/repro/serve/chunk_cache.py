"""A shared decoded-chunk cache layered over the buffer pool.

The buffer pool caches *pages*; every chunk read still pays the
large-object fetch and the codec decode.  :class:`ChunkCache` keeps the
decoded ``(offsets, values)`` pair per ``(array name, chunk number)``
in an LRU map so concurrent consolidations of the same array reuse the
decompressed chunk — the layering Rusu & Cheng describe as the standard
array-engine serving architecture.

Thread-safety: the map itself is guarded by one lock; a *separate* I/O
lock serializes the underlying buffer-pool read on a miss (the pool's
pin/evict bookkeeping is single-threaded) with a double-check so a
chunk decoded while a reader waited is not decoded twice.  Cached
arrays are shared — callers must treat them as read-only, which every
in-tree consumer already does.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.obs.histogram import Histogram
from repro.util.stats import Counters

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.core.olap_array import OLAPArray

_Chunk = "tuple[np.ndarray, np.ndarray]"


class ChunkCache:
    """LRU cache of decoded chunks, shared across arrays and threads."""

    def __init__(self, max_chunks: int = 1024):
        if max_chunks <= 0:
            raise ValueError(f"max_chunks must be positive, got {max_chunks}")
        self.max_chunks = max_chunks
        self.counters = Counters()
        #: lookup = whole get_chunk (hit or miss, including I/O-lock
        #: wait); decode = the serialized disk read + codec decode on a
        #: miss.  Registered by ``QueryService._register_metrics``.
        self.histograms: dict[str, Histogram] = {
            "chunk_cache.lookup_seconds": Histogram(),
            "chunk_cache.decode_seconds": Histogram(),
        }
        self._entries: OrderedDict[tuple[str, int], object] = OrderedDict()
        self._lock = threading.RLock()
        self._io_lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_chunk(self, array: "OLAPArray", chunk_no: int):
        """The decoded chunk, from cache or via one serialized disk read."""
        key = (array.name, chunk_no)
        lookup_start = time.perf_counter()
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.counters.add("chunk_cache.hits")
                self.histograms["chunk_cache.lookup_seconds"].observe(
                    time.perf_counter() - lookup_start
                )
                return hit
        with self._io_lock:
            # double-check: another thread may have filled it while we
            # waited for the I/O lock
            with self._lock:
                hit = self._entries.get(key)
                if hit is not None:
                    self._entries.move_to_end(key)
                    self.counters.add("chunk_cache.hits")
                    self.histograms["chunk_cache.lookup_seconds"].observe(
                        time.perf_counter() - lookup_start
                    )
                    return hit
            decode_start = time.perf_counter()
            chunk = array._read_chunk_direct(chunk_no)
            self.histograms["chunk_cache.decode_seconds"].observe(
                time.perf_counter() - decode_start
            )
            with self._lock:
                self.counters.add("chunk_cache.misses")
                self._entries[key] = chunk
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_chunks:
                    self._entries.popitem(last=False)
                    self.counters.add("chunk_cache.evictions")
        self.histograms["chunk_cache.lookup_seconds"].observe(
            time.perf_counter() - lookup_start
        )
        return chunk

    def invalidate_chunk(self, array_name: str, chunk_no: int) -> None:
        """Drop one chunk (called by copy-on-write cell writes)."""
        with self._lock:
            if self._entries.pop((array_name, chunk_no), None) is not None:
                self.counters.add("chunk_cache.invalidations")

    def invalidate_array(self, array_name: str) -> None:
        """Drop every chunk of one array (rebuilds, cold-cache runs)."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == array_name]
            for key in stale:
                del self._entries[key]
            if stale:
                self.counters.add("chunk_cache.invalidations", len(stale))

    def clear(self) -> None:
        """Drop everything (no counters: not an invalidation event)."""
        with self._lock:
            self._entries.clear()
