"""repro — Array-based evaluation of multi-dimensional OLAP queries.

A full reproduction of Zhao, Ramasamy, Naughton & Tufte, *"Array-Based
Evaluation of Multi-Dimensional Queries in Object-Relational Database
Systems"* (ICDE 1998): the OLAP Array ADT with chunk-offset
compression, the relational star-schema baselines (Starjoin operator,
fact file, bitmap join indices), and a shared SHORE-like storage
substrate, all in Python.

Quick start::

    from repro import (CubeSchema, DimensionDef, OlapEngine,
                       ConsolidationQuery)

    schema = CubeSchema("sales", dimensions=(
        DimensionDef("product", key="pid", levels=(("type", "str:8"),)),
        DimensionDef("store", key="sid", levels=(("city", "str:8"),)),
    ))
    engine = OlapEngine()
    engine.load_cube(schema, dimension_rows={...}, fact_rows=[...])
    result = engine.query(ConsolidationQuery.build(
        "sales", group_by={"product": "type", "store": "city"}))

See ``examples/`` for runnable programs and ``benchmarks/`` for the
paper's figures.
"""

from repro.aggregates import get_aggregate
from repro.core import (
    ChunkGeometry,
    ConsolidationSpec,
    OLAPArray,
    Selection,
    build_olap_array,
    compute_cube,
    consolidate,
    consolidate_partitioned,
    consolidate_with_selection,
)
from repro.errors import ReproError
from repro.olap import (
    Backend,
    ConsolidationQuery,
    CubeSchema,
    DimensionDef,
    ExecutionOptions,
    MeasureDef,
    OlapEngine,
    QueryResult,
    SelectionPredicate,
    parse_query,
    register_backend,
)
from repro.relational import Database, Schema
from repro.serve import QueryService, ServiceConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "get_aggregate",
    # core ADT
    "ChunkGeometry",
    "OLAPArray",
    "build_olap_array",
    "ConsolidationSpec",
    "Selection",
    "consolidate",
    "consolidate_with_selection",
    "consolidate_partitioned",
    "compute_cube",
    # OLAP layer
    "CubeSchema",
    "DimensionDef",
    "MeasureDef",
    "ConsolidationQuery",
    "SelectionPredicate",
    "ExecutionOptions",
    "Backend",
    "register_backend",
    "OlapEngine",
    "QueryResult",
    "parse_query",
    # relational layer
    "Database",
    "Schema",
    # serving layer
    "QueryService",
    "ServiceConfig",
]
