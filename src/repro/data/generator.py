"""Synthetic OLAP cubes matching §5.1/§5.4.

The test schema is::

    fact (d0, d1, d2, d3, volume)
    dimX (dX, hX1, hX2)        -- hX1/hX2 uniform and hierarchical

``hX1`` takes ``fanout1`` distinct values (``AA0``, ``AA1``, ...),
``hX2`` takes ``fanout2`` distinct values functionally determined by
``hX1`` (a proper hierarchy, key → hX1 → hX2).  Valid cells are drawn
uniformly without replacement from the logical cell space, exactly the
paper's uniform data; volumes are uniform small integers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DataGenError
from repro.olap.model import CubeSchema, DimensionDef, MeasureDef


@dataclass(frozen=True)
class SyntheticCubeConfig:
    """Shape and content parameters of one synthetic cube."""

    name: str
    dim_sizes: tuple[int, ...]
    n_valid: int
    chunk_shape: tuple[int, ...]
    fanout1: int = 10
    fanout2: int = 5
    seed: int = 1997
    measure_max: int = 100

    def __post_init__(self):
        if any(s <= 0 for s in self.dim_sizes):
            raise DataGenError(f"dimension sizes must be positive: {self.dim_sizes}")
        if len(self.chunk_shape) != len(self.dim_sizes):
            raise DataGenError("chunk shape rank must match dimension count")
        if not 0 <= self.n_valid <= self.logical_cells:
            raise DataGenError(
                f"n_valid={self.n_valid} outside [0, {self.logical_cells}]"
            )
        if self.fanout1 <= 0 or self.fanout2 <= 0:
            raise DataGenError("fanouts must be positive")

    @property
    def ndim(self) -> int:
        return len(self.dim_sizes)

    @property
    def logical_cells(self) -> int:
        return math.prod(self.dim_sizes)

    @property
    def density(self) -> float:
        """Fraction of valid cells (the paper's ρ)."""
        return self.n_valid / self.logical_cells


def h1_value(config: SyntheticCubeConfig, key: int) -> str:
    """The hX1 attribute of a dimension key (uniform over fanout1 values)."""
    return f"AA{key % config.fanout1}"


def h2_value(config: SyntheticCubeConfig, key: int) -> str:
    """The hX2 attribute (functionally determined by hX1)."""
    return f"BB{(key % config.fanout1) % config.fanout2}"


def generate_dimension_rows(
    config: SyntheticCubeConfig,
) -> dict[str, list[tuple]]:
    """Rows for every dimension table: ``(dX, hX1, hX2)``."""
    return {
        f"dim{d}": [
            (key, h1_value(config, key), h2_value(config, key))
            for key in range(size)
        ]
        for d, size in enumerate(config.dim_sizes)
    }


def _sample_distinct_cells(
    rng: np.random.Generator, total: int, count: int
) -> np.ndarray:
    """``count`` distinct linear cell indices, memory-frugally.

    Sampling with replacement + dedup (re-drawing the shortfall) avoids
    materializing a permutation of the whole (possibly 64M-cell)
    logical space.
    """
    if count == total:
        return np.arange(total, dtype=np.int64)
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < count:
        need = count - chosen.size
        draw = rng.integers(0, total, size=int(need * 1.1) + 16, dtype=np.int64)
        chosen = np.unique(np.concatenate([chosen, draw]))
    return rng.permutation(chosen)[:count]


def generate_fact_rows(config: SyntheticCubeConfig) -> list[tuple]:
    """Fact tuples ``(d0, ..., dn-1, volume)`` for the valid cells."""
    rng = np.random.default_rng(config.seed)
    linear = _sample_distinct_cells(rng, config.logical_cells, config.n_valid)
    coords = np.empty((config.n_valid, config.ndim), dtype=np.int64)
    remainder = linear
    for d in range(config.ndim - 1, -1, -1):
        remainder, coords[:, d] = np.divmod(remainder, config.dim_sizes[d])
    volumes = rng.integers(1, config.measure_max + 1, size=config.n_valid)
    return [
        tuple(coords[i].tolist()) + (int(volumes[i]),)
        for i in range(config.n_valid)
    ]


def cube_schema_for(config: SyntheticCubeConfig) -> CubeSchema:
    """The §5.1 star schema as a :class:`CubeSchema`."""
    return CubeSchema(
        name=config.name,
        dimensions=tuple(
            DimensionDef(
                f"dim{d}",
                key=f"d{d}",
                key_type="int32",
                levels=((f"h{d}1", "str:8"), (f"h{d}2", "str:8")),
            )
            for d in range(config.ndim)
        ),
        measures=(MeasureDef("volume", "int64"),),
    )
