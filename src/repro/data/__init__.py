"""Synthetic workload generation (§5.4's Data Set 1 and Data Set 2)."""

from repro.data.generator import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.data.datasets import (
    SCALES,
    dataset1,
    dataset2,
    get_scale,
    selectivity_configs,
)

__all__ = [
    "SyntheticCubeConfig",
    "cube_schema_for",
    "generate_dimension_rows",
    "generate_fact_rows",
    "SCALES",
    "dataset1",
    "dataset2",
    "get_scale",
    "selectivity_configs",
]
