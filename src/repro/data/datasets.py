"""§5.4's Data Set 1 and Data Set 2, at three scales.

The paper's configurations (``paper`` scale):

- **Data Set 1** — three 4-D arrays, 40×40×40×{50, 100, 1000}, each
  with 640 000 valid cells (densities 20 %, 10 %, 1 %), chunk shape
  (20, 20, 20, 10) giving 40 / 80 / 800 chunks;
- **Data Set 2** — 40×40×40×100 with density swept 0.5 %–20 %.

``small`` and ``medium`` scales preserve every shape ratio the figures
depend on — densities, chunk counts (40/80/800) and per-dimension
fanouts — at CI-friendly cell counts.  Pick a scale via the
``REPRO_SCALE`` environment variable or per call.
"""

from __future__ import annotations

import math
import os

from repro.data.generator import SyntheticCubeConfig
from repro.errors import DataGenError

SCALES = ("small", "medium", "paper")

# Per scale: the cube geometry for Data Set 1.  The fourth dimension and
# its chunk width are kept at paper values at every scale so that chunk
# counts (40/80/800) *and* the chunk-width : selection-stride ratio that
# drives Query 2's pruning behaviour are preserved; only the first three
# dimensions (and hence cell counts) shrink.
_DS1_GEOMETRY = {
    "small": {
        "base": (8, 8, 8),
        "fourth": (50, 100, 1000),
        "chunk": (4, 4, 4, 10),
        "n_valid": 5_120,
    },
    "medium": {
        "base": (20, 20, 20),
        "fourth": (50, 100, 1000),
        "chunk": (10, 10, 10, 10),
        "n_valid": 80_000,
    },
    "paper": {
        "base": (40, 40, 40),
        "fourth": (50, 100, 1000),
        "chunk": (20, 20, 20, 10),
        "n_valid": 640_000,
    },
}

_DS2_GEOMETRY = {
    "small": {"dims": (8, 8, 8, 100), "chunk": (4, 4, 4, 10)},
    "medium": {"dims": (20, 20, 20, 100), "chunk": (10, 10, 10, 10)},
    "paper": {"dims": (40, 40, 40, 100), "chunk": (20, 20, 20, 10)},
}

DATASET2_DENSITIES = (0.005, 0.01, 0.025, 0.05, 0.10, 0.20)

# Query 2's sweep: "we vary the number of distinct values for the second
# attribute of each dimension table from 2, 3, 4, 5, 8, to 10"
QUERY2_FANOUTS = (2, 3, 4, 5, 8, 10)


def get_scale(default: str = "small") -> str:
    """Scale from the ``REPRO_SCALE`` environment variable."""
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise DataGenError(
            f"REPRO_SCALE={scale!r} invalid; expected one of {SCALES}"
        )
    return scale


def dataset1(scale: str | None = None, fanout1: int = 10) -> list[SyntheticCubeConfig]:
    """The three Data Set 1 cubes (fixed valid cells, varying 4th dim)."""
    scale = scale or get_scale()
    geometry = _DS1_GEOMETRY[scale]
    configs = []
    for fourth in geometry["fourth"]:
        dims = geometry["base"] + (fourth,)
        configs.append(
            SyntheticCubeConfig(
                name=f"ds1_{scale}_x{fourth}",
                dim_sizes=dims,
                n_valid=geometry["n_valid"],
                chunk_shape=geometry["chunk"],
                fanout1=fanout1,
            )
        )
    return configs


def dataset2(
    scale: str | None = None,
    densities: tuple[float, ...] = DATASET2_DENSITIES,
    fanout1: int = 10,
) -> list[SyntheticCubeConfig]:
    """The Data Set 2 cubes (fixed dims, varying density)."""
    scale = scale or get_scale()
    geometry = _DS2_GEOMETRY[scale]
    logical = math.prod(geometry["dims"])
    configs = []
    for density in densities:
        configs.append(
            SyntheticCubeConfig(
                name=f"ds2_{scale}_p{density * 1000:g}",
                dim_sizes=geometry["dims"],
                n_valid=max(1, round(density * logical)),
                chunk_shape=geometry["chunk"],
                fanout1=fanout1,
            )
        )
    return configs


def selectivity_configs(
    scale: str | None = None,
    fourth_dim: str = "large",
    fanouts: tuple[int, ...] = QUERY2_FANOUTS,
) -> list[SyntheticCubeConfig]:
    """Query 2's sweep cubes: same cells, varying hX1 fanout.

    ``fourth_dim`` picks the 40×40×40×1000-analog (``large``, figures
    6/8) or the ×100-analog (``small``, figures 7/9/10).  Per-dimension
    selectivity for ``hX1 = 'AA0'`` is ≈ 1/fanout, so the four-way
    star-join selectivity S ≈ fanout⁻⁴ — the paper's 0.0625 … 0.0001.
    """
    scale = scale or get_scale()
    geometry = _DS1_GEOMETRY[scale]
    index = {"large": -1, "small": 1}[fourth_dim]
    fourth = geometry["fourth"][index]
    dims = geometry["base"] + (fourth,)
    return [
        SyntheticCubeConfig(
            name=f"q2_{scale}_x{fourth}_f{fanout}",
            dim_sizes=dims,
            n_valid=geometry["n_valid"],
            chunk_shape=geometry["chunk"],
            fanout1=fanout,
            fanout2=max(1, fanout // 2),
        )
        for fanout in fanouts
    ]
