"""`repro.api`: the slicer-style JSON-over-HTTP query surface.

A logical model (named cubes, dimensions, hierarchies, measures —
:mod:`repro.api.model`) maps drilldown/cut requests onto
:class:`~repro.olap.query.ConsolidationQuery` objects; a rollup router
(:mod:`repro.api.rollup`) answers each request from the coarsest
materialized aggregate that covers it, falling back to base-cube
consolidation through the :class:`~repro.serve.service.QueryService`;
and :class:`~repro.api.server.ApiServer` exposes the whole stack over
stdlib HTTP.  :mod:`repro.api.replay` replays seeded, skewed workloads
against a live server so the bench/soak layers measure the stack
end-to-end.
"""

from repro.api.model import (
    LogicalCube,
    LogicalDimension,
    LogicalMeasure,
    LogicalModel,
    RollupDecl,
    load_model,
    model_from_dict,
)
from repro.api.replay import (
    ReplayReport,
    ReplaySettings,
    run_replay,
    write_replay_artifact,
)
from repro.api.rollup import RollupRouter, RouteDecision
from repro.api.server import AggregateRequest, ApiEndpoint, ApiServer

__all__ = [
    "AggregateRequest",
    "ApiEndpoint",
    "ApiServer",
    "LogicalCube",
    "LogicalDimension",
    "LogicalMeasure",
    "LogicalModel",
    "ReplayReport",
    "ReplaySettings",
    "RollupDecl",
    "RollupRouter",
    "RouteDecision",
    "load_model",
    "model_from_dict",
    "run_replay",
    "write_replay_artifact",
]
