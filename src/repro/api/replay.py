"""``repro replay``: seeded HTTP traffic replay against the API stack.

The soak measures the service layer in-process; the replay measures the
*whole* stack — logical-model parsing, rollup routing, base fallback,
JSON shaping — over real loopback HTTP.  A seeded ``Random`` produces a
deterministic request schedule with the skew real dashboards have:

- ~60% hot coarse drilldowns drawn from a small template set (the
  rollup router should answer these from materialized grains),
- ~25% cut variants at mixed levels (mostly routable),
- ~15% deliberate base-cube fallbacks (key-grain drilldowns and
  ``avg``, which is never navigable from pre-aggregated cells),

with zero-think bursts, plus a churn writer that bumps the cube
generation every ``write_every`` requests so rollup invalidation and
asynchronous refresh happen *under* traffic (a request that catches a
grain stale is answered from base while the refresh worker rebuilds).  The run summarizes into a
``BENCH_api.json`` artifact: status-class counts (the gate demands zero
5xx), router hit rate, routed-vs-base latency quantiles, the ``api.*``
and ``rollup.*`` counter snapshots, and one EXPLAIN ANALYZE probe whose
plan must carry a ``rollup.route`` root with actuals bound.
"""

from __future__ import annotations

import json
import random
import tempfile
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

#: weights for the hot / cut / fallback request classes
_MIX = (0.60, 0.25, 0.15)

#: one request in ``_BURST_EVERY`` starts a zero-think burst this long
_BURST_LENGTH = 4
_BURST_EVERY = 10

#: default logical model document (see ``benchmarks/api_model.json``)
DEFAULT_MODEL_PATH = "benchmarks/api_model.json"


@dataclass(frozen=True)
class ReplaySettings:
    """Knobs for one replay run (all randomness flows from ``seed``)."""

    scale: str | None = None
    requests: int = 200
    seed: int = 0
    clients: int = 4
    write_every: int = 40
    model_path: str = DEFAULT_MODEL_PATH
    cube: str = "sales"
    timeout_s: float = 30.0
    #: resident-set budget in bytes (0: accounting only, no eviction)
    memory_budget: int = 0
    #: memory trajectory sampling interval while clients run
    memory_sample_s: float = 0.25


@dataclass
class ReplayReport:
    """The replay outcome: the artifact payload plus its gate failures."""

    payload: dict
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return self.payload


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _schedule(rng: random.Random, cube: str, n: int) -> list[dict]:
    """The deterministic request list: each entry carries ``kind``
    ("hot" / "cut" / "base"), ``method``, ``path`` and optional
    ``body`` — everything a client needs to issue it verbatim."""
    hot_templates = [
        {"method": "GET", "query": "drilldown=dim0"},
        {"method": "GET", "query": "drilldown=dim0:h01,dim1:h11"},
        {"method": "GET", "query": "drilldown=dim1,dim2"},
        {"method": "GET", "query": "drilldown=dim3:h31&aggregate=max"},
        {
            "method": "POST",
            "body": {"drilldown": ["dim0:h01", "dim1"]},
        },
    ]
    cut_templates = [
        {
            "method": "GET",
            "query": "drilldown=dim0:h01&cut=dim1.h11:AA1;AA2",
        },
        {
            "method": "GET",
            "query": "drilldown=dim2&cut=dim3.h32:BB0..BB2",
        },
        {
            "method": "POST",
            "body": {
                "drilldown": ["dim1:h11"],
                "cut": [
                    {
                        "dimension": "dim0",
                        "level": "h02",
                        "values": ["BB0", "BB1"],
                    }
                ],
                "aggregate": "min",
            },
        },
        {
            "method": "GET",
            "query": "drilldown=dim0,dim3&cut=dim0.h01:AA3",
        },
    ]
    def base_template(brng: random.Random) -> dict:
        # the long tail: key-grain drilldowns and ``avg`` with
        # rng-drawn predicates, so (unlike the hot set) these rarely
        # repeat and mostly miss the service's result cache — the
        # honest cost of not having a covering rollup
        pick = brng.randrange(3)
        if pick == 0:
            low = brng.randrange(0, 80)
            high = low + brng.randrange(5, 20)
            return {
                "method": "GET",
                "query": f"drilldown=dim3:d3&cut=dim3.d3:{low}..{high}",
            }
        if pick == 1:
            member = brng.randrange(5)
            return {
                "method": "GET",
                "query": f"drilldown=dim0:d0&cut=dim1.h11:AA{member}",
            }
        low = brng.randrange(0, 50)
        return {
            "method": "GET",
            "query": (
                f"drilldown=dim0&aggregate=avg&cut=dim3.d3:{low}..{low + 25}"
            ),
        }

    schedule = []
    for _ in range(n):
        pick = rng.random()
        if pick < _MIX[0]:
            kind = "hot"
            # hot traffic is zipf-ish: the first template dominates
            if rng.random() < 0.5:
                template = hot_templates[0]
            else:
                template = rng.choice(hot_templates)
        elif pick < _MIX[0] + _MIX[1]:
            kind = "cut"
            template = rng.choice(cut_templates)
        else:
            kind = "base"
            template = base_template(rng)
        entry = {
            "kind": kind,
            "method": template["method"],
            "path": f"/cube/{cube}/aggregate",
        }
        if template["method"] == "GET":
            entry["path"] += "?" + template["query"]
        else:
            entry["body"] = template["body"]
        schedule.append(entry)
    return schedule


def _issue(
    base_url: str, entry: dict, timeout_s: float
) -> tuple[int, dict, str | None]:
    """One HTTP request; returns ``(status, parsed body, trace_id)``
    — the ``X-Trace-Id`` response header — and never raises for HTTP
    error statuses (they are workload data)."""
    url = base_url + entry["path"]
    if entry["method"] == "GET":
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(entry["body"]).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return (
                response.status,
                json.loads(response.read()),
                response.headers.get("X-Trace-Id"),
            )
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except ValueError:
            body = {}
        return exc.code, body, exc.headers.get("X-Trace-Id")


def run_replay(settings: ReplaySettings | None = None) -> ReplayReport:
    """Build the stack, serve it over loopback HTTP, replay the seeded
    schedule, and gate the outcome.  See the module docstring."""
    from repro.api.model import load_model
    from repro.api.server import ApiEndpoint, ApiServer
    from repro.bench.harness import bench_settings, build_cube_engine
    from repro.data.datasets import dataset1
    from repro.data.generator import generate_fact_rows
    from repro.serve import QueryService, ServiceConfig

    settings = settings or ReplaySettings()
    bench = bench_settings(settings.scale)
    config = dataset1(bench.scale)[1]  # the x100 cube
    model = load_model(settings.model_path, scale=bench.scale)
    logical = model.cube(settings.cube)  # fail fast on a bad model/cube
    rng = random.Random(settings.seed)
    schedule = _schedule(rng, settings.cube, settings.requests)
    client_rngs = [
        random.Random(rng.randrange(2**31))
        for _ in range(settings.clients)
    ]
    failures: list[str] = []
    #: (kind, status, latency_s, route_source)
    events: list[tuple[str, int, float, str | None]] = []
    events_lock = threading.Lock()
    issued_count = [0]  # shared request counter driving the churn writer
    sample_response: dict | None = None
    sample_trace_id: str | None = None
    traced = [0]  # responses carrying an X-Trace-Id header
    trace_mismatches = [0]  # header disagreeing with the body field
    writes = [0]

    with tempfile.TemporaryDirectory(prefix="repro-replay-") as wal_dir:
        engine = build_cube_engine(config, bench, wal_dir=wal_dir)
        write_row = next(iter(generate_fact_rows(config)))
        write_keys = tuple(write_row[: config.ndim])
        write_measures = tuple(write_row[config.ndim :])
        service = QueryService(
            engine,
            ServiceConfig(
                max_workers=settings.clients,
                max_in_flight=8 * settings.clients,
                memory_budget_bytes=settings.memory_budget,
            ),
        )
        endpoint = ApiEndpoint(engine, service, model)
        memory_track: list[dict] = []
        memory_lock = threading.Lock()
        stop_mem = threading.Event()
        run_started = time.monotonic()

        def sample_memory() -> None:
            # enforce-then-read: each point proves the budget held then
            snap = service.memory.sample("replay")
            point = {
                "t_s": round(time.monotonic() - run_started, 3),
                **snap,
            }
            with memory_lock:
                memory_track.append(point)

        def memory_sampler() -> None:
            while not stop_mem.wait(settings.memory_sample_s):
                sample_memory()
        try:
            with ApiServer(endpoint) as server:
                base_url = server.url

                def client(index: int) -> None:
                    nonlocal sample_response, sample_trace_id
                    crng = client_rngs[index]
                    pause = threading.Event()
                    burst_left = 0
                    # round-robin partition keeps the schedule
                    # deterministic regardless of thread interleaving
                    for position in range(
                        index, len(schedule), settings.clients
                    ):
                        entry = schedule[position]
                        started = time.perf_counter()
                        status, body, trace_id = _issue(
                            base_url, entry, settings.timeout_s
                        )
                        latency = time.perf_counter() - started
                        source = (body.get("route") or {}).get("source")
                        with events_lock:
                            events.append(
                                (entry["kind"], status, latency, source)
                            )
                            issued_count[0] += 1
                            total = issued_count[0]
                            if trace_id is not None:
                                traced[0] += 1
                                if body.get("trace_id") not in (
                                    None, trace_id
                                ):
                                    trace_mismatches[0] += 1
                            if (
                                sample_response is None
                                and status == 200
                                and source == "rollup"
                            ):
                                sample_response = body
                                sample_trace_id = trace_id
                        if (
                            settings.write_every
                            and total % settings.write_every == 0
                        ):
                            # churn: bump the generation under traffic so
                            # rollups go stale and lazily rebuild
                            service.write_cell(
                                config.name, write_keys, write_measures
                            )
                            with events_lock:
                                writes[0] += 1
                        if burst_left > 0:
                            burst_left -= 1
                            continue
                        if crng.randrange(_BURST_EVERY) == 0:
                            burst_left = _BURST_LENGTH
                            continue
                        pause.wait(crng.uniform(0.0, 0.005))

                threads = [
                    threading.Thread(
                        target=client, args=(i,), name=f"replay-client-{i}"
                    )
                    for i in range(settings.clients)
                ]
                mem_thread = threading.Thread(
                    target=memory_sampler,
                    name="repro-obs-replay-mem",
                    daemon=True,
                )
                for thread in threads:
                    thread.start()
                mem_thread.start()
                for thread in threads:
                    thread.join()
                stop_mem.set()
                mem_thread.join(timeout=5)
                sample_memory()  # drained end-state closes the trajectory

                # the EXPLAIN ANALYZE probe: the hottest routable
                # template must show a rollup.route root with actuals
                probe_entry = {
                    "kind": "probe",
                    "method": "GET",
                    "path": (
                        f"/cube/{settings.cube}/aggregate"
                        "?drilldown=dim0&explain=1&analyze=1"
                    ),
                }
                probe_status, probe_body, _probe_trace = _issue(
                    base_url, probe_entry, settings.timeout_s
                )
            payload = _summarize(
                endpoint, logical, bench, settings, events, writes[0],
                sample_response, probe_status, probe_body, failures,
                trace_stats={
                    "responses_with_header": traced[0],
                    "header_body_mismatches": trace_mismatches[0],
                    "sample_trace_id": sample_trace_id,
                },
                memory_track=memory_track,
                memory_counters=service.memory.counters.snapshot(),
            )
        finally:
            stop_mem.set()
            endpoint.close()
            service.close()
    return ReplayReport(payload=payload, failures=failures)


def _summarize(
    endpoint, logical, bench, settings, events, writes,
    sample_response, probe_status, probe_body, failures,
    trace_stats=None, memory_track=None, memory_counters=None,
) -> dict:
    statuses = {"2xx": 0, "4xx": 0, "5xx": 0, "other": 0}
    latencies: dict[str, list[float]] = {"all": [], "rollup": [], "base": []}
    hits = misses = 0
    for _, status, latency, source in events:
        bucket = f"{status // 100}xx"
        if bucket in statuses:
            statuses[bucket] += 1
        else:
            statuses["other"] += 1
        latencies["all"].append(latency)
        if source == "rollup":
            hits += 1
            latencies["rollup"].append(latency)
        elif source == "base":
            misses += 1
            latencies["base"].append(latency)

    def quantiles(values: list[float]) -> dict:
        ordered = sorted(values)
        return {
            "count": len(ordered),
            "p50_s": _percentile(ordered, 0.50),
            "p95_s": _percentile(ordered, 0.95),
            "p99_s": _percentile(ordered, 0.99),
        }

    answered = hits + misses
    hit_rate = hits / answered if answered else 0.0
    explain = probe_body.get("explain") or {}
    plan_root = explain.get("plan") or {}
    probe = {
        "status": probe_status,
        "backend": explain.get("backend"),
        "analyzed": explain.get("analyzed"),
        "root_op": plan_root.get("op"),
        "rollup": (plan_root.get("detail") or {}).get("rollup"),
        "grain": (plan_root.get("detail") or {}).get("grain"),
        "worst_misestimate": explain.get("worst_misestimate"),
        "plan": explain or None,
    }
    payload = {
        "scale": bench.scale,
        "cube": logical.name,
        "physical_cube": logical.cube,
        "requests": len(events),
        "seed": settings.seed,
        "clients": settings.clients,
        "write_every": settings.write_every,
        "writes": writes,
        "statuses": statuses,
        "trace": dict(trace_stats or {}),
        "rollup": {
            "hits": hits,
            "base_fallbacks": misses,
            "hit_rate": hit_rate,
            "resident": endpoint.router.resident_rollups(),
            "resident_rows": endpoint.router.resident_rows(),
            "grains": endpoint.router.grain_rows(),
            "counters": {
                name: value
                for name, value in sorted(
                    endpoint.router.counters.snapshot().items()
                )
            },
        },
        "latency": {
            "all": quantiles(latencies["all"]),
            "routed": quantiles(latencies["rollup"]),
            "base": quantiles(latencies["base"]),
        },
        "api_counters": {
            name: value
            for name, value in sorted(endpoint.counters.snapshot().items())
        },
        "sample_response": sample_response,
        "explain_probe": probe,
        "memory": {
            "budget_bytes": int(settings.memory_budget),
            "high_water_bytes": max(
                (
                    int(s["total_resident_bytes"])
                    for s in (memory_track or [])
                ),
                default=0,
            ),
            "pressure_events": (memory_counters or {}).get(
                "memory.pressure_events", 0.0
            ),
            "reclaimed_bytes": (memory_counters or {}).get(
                "memory.reclaimed_bytes", 0.0
            ),
            "samples": list(memory_track or []),
        },
        "failures": failures,
    }
    _gate(payload, failures)
    return payload


def _gate(payload: dict, failures: list[str]) -> None:
    """The replay's acceptance checks; appends into ``failures``."""
    if not payload["requests"]:
        failures.append("replay issued no requests")
    if payload["statuses"].get("5xx"):
        failures.append(
            f"{payload['statuses']['5xx']} responses were 5xx (gate: zero)"
        )
    rollup = payload["rollup"]
    if rollup["hits"] + rollup["base_fallbacks"] and rollup["hit_rate"] <= 0.5:
        failures.append(
            f"rollup hit rate {rollup['hit_rate']:.0%} at or below the "
            "50% floor for the skewed mix"
        )
    routed = payload["latency"]["routed"]
    base = payload["latency"]["base"]
    if (
        routed["count"] >= 10
        and base["count"] >= 3
        and routed["p95_s"] >= base["p95_s"]
    ):
        failures.append(
            f"routed p95 {routed['p95_s'] * 1000:.3f}ms did not beat "
            f"base-fallback p95 {base['p95_s'] * 1000:.3f}ms"
        )
    probe = payload["explain_probe"]
    if probe["status"] != 200:
        failures.append(f"explain probe returned {probe['status']}")
    elif probe["root_op"] != "rollup.route":
        failures.append(
            f"explain probe root op {probe['root_op']!r} != 'rollup.route'"
        )
    elif not probe["analyzed"]:
        failures.append("explain probe plan was not analyzed")
    if payload["writes"] == 0 and payload["write_every"]:
        failures.append("churn writer never ran")
    trace = payload.get("trace") or {}
    if trace and trace.get("responses_with_header", 0) < payload["requests"]:
        failures.append(
            f"only {trace.get('responses_with_header', 0)} of "
            f"{payload['requests']} responses carried X-Trace-Id"
        )
    if trace.get("header_body_mismatches"):
        failures.append(
            f"{trace['header_body_mismatches']} responses' X-Trace-Id "
            "disagreed with the body's trace_id"
        )
    memory = payload.get("memory")
    if memory and memory["budget_bytes"] > 0:
        over = [
            s
            for s in memory["samples"]
            if s["total_resident_bytes"] > memory["budget_bytes"]
        ]
        if over:
            worst = max(s["total_resident_bytes"] for s in over)
            failures.append(
                f"memory trajectory exceeded the "
                f"{memory['budget_bytes']}-byte budget in {len(over)} of "
                f"{len(memory['samples'])} samples (high water {worst})"
            )
        if not memory["samples"]:
            failures.append(
                "memory budget set but no trajectory sample recorded"
            )


def write_replay_artifact(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
