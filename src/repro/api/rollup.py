"""The rollup router: multi-grain materialized aggregates + routing.

The AppLovin pre-aggregation strategy: maintain a small family of
aggregates materialized at declared grains (built through the same §4
consolidation engine as every other query), route each API request to
the **coarsest covering** aggregate, and fall back to base-cube
consolidation when nothing covers.  A rollup covers a request when

- the aggregate is mergeable over pre-aggregated cells (``sum``,
  ``count``, ``min``, ``max`` — ``count`` re-rolls as a sum of counts;
  ``avg`` is never navigable without carrying sum+count, so it always
  falls back), and
- every dimension the request references (drilldown *or* cut) is
  present in the rollup grain at a finer-or-equal hierarchy level, so
  the requested attribute is a function of the stored one.

Materialized rows are invalidated exactly like the serving layer's
result cache: each entry is keyed to the cube generation it was built
at, and any write bumps the generation.  Refresh is *asynchronous*: a
request that finds its chosen rollup stale (or not yet built) is
answered from the base cube — the same cost it would pay with no
router — while a daemon worker rebuilds the grain, so serving-path
latency never includes a build.  Routing metadata surfaces through
EXPLAIN as a
``rollup.route`` plan node (chosen grain vs. base, candidate set, exact
row estimates) whose ANALYZE actuals bind to the scan's registry
counter deltas, like every engine plan node.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass

from repro.api.model import LogicalCube, RollupDecl
from repro.errors import ApiRequestError
from repro.obs.memory import deep_sizeof
from repro.obs.tracing import (
    TraceContext,
    add_trace_link,
    current_trace_context,
    new_trace_context,
    trace_context,
)
from repro.olap.query import ConsolidationQuery
from repro.util.stats import Counters

#: aggregates whose pre-aggregated cells merge exactly (``count`` cells
#: merge additively; ``avg`` would need a (sum, count) sketch)
NAVIGABLE_AGGREGATES = frozenset({"sum", "count", "min", "max"})

_MERGE = {
    "sum": lambda a, b: a + b,
    "count": lambda a, b: a + b,
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class RouteDecision:
    """Where one aggregate request will be answered."""

    source: str  # "rollup" or "base"
    rollup: RollupDecl | None
    reason: str
    candidates: tuple[str, ...]
    estimated_rows: int | None = None


class RollupRouter:
    """Routes aggregate requests onto materialized multi-grain rollups.

    Thread-safe: the store lock only guards the dict, never a build —
    concurrent rebuilds of the same grain are harmless (last write
    wins, both are correct for their sampled generation).
    """

    def __init__(self, engine, service, registry=None):
        self.engine = engine
        self.service = service
        self._registry = registry
        self._grain_gauges: set[tuple] = set()
        self.counters = Counters()
        self._lock = threading.Lock()
        #: (logical cube, rollup name, aggregate) -> (generation, rows)
        self._store: dict[tuple, tuple[int, list]] = {}
        #: measured bytes per stored entry (parallel to ``_store``)
        self._bytes: dict[tuple, int] = {}
        #: monotonic time of each grain's last routed hit — the
        #: "coldest grain" ordering for pressure eviction
        self._last_hit: dict[tuple, float] = {}
        #: called after a build grew the store; the memory accountant
        #: installs its budget check here
        self.pressure_callback = None
        #: (physical cube, dim, from_attr, to_attr) -> value map or None
        self._maps: dict[tuple, dict | None] = {}
        #: (physical cube, dim, attr) -> distinct value count
        self._cardinalities: dict[tuple, int] = {}
        #: async refresh machinery (lazy: no thread until first schedule)
        self._refresh_queue: queue.Queue = queue.Queue()
        #: in-flight (cube, rollup, aggregate) -> the build's trace_id,
        #: so a deduplicated schedule still links to the running build
        self._inflight: dict[tuple, str] = {}
        self._worker: threading.Thread | None = None
        if registry is not None:
            registry.register(
                "api:rollup", self.counters, reset=lambda: None, replace=True
            )
            registry.register_gauge(
                "rollup.resident_rows",
                lambda: float(self.resident_rows()),
                replace=True,
            )
            registry.register_gauge(
                "rollup.resident_bytes",
                lambda: float(self.resident_bytes()),
                replace=True,
            )

    # -- hierarchy value maps ----------------------------------------------

    def _attr_map(self, physical: str, dim: str, attr: str) -> dict:
        """key → attribute value for one physical dimension."""
        key = (physical, dim, attr, attr)
        cached = self._maps.get(key)
        if cached is None:
            state = self.engine.cube(physical)
            cached = self.engine._dimension_attr_map(state, dim, attr)
            with self._lock:
                self._maps[key] = cached
        return cached

    def derive_map(
        self, physical: str, dim: str, from_attr: str, to_attr: str
    ) -> dict | None:
        """``from_attr`` value → ``to_attr`` value, or ``None`` when
        ``to_attr`` is not functionally determined by ``from_attr``.

        Derivability is *verified*, not assumed: the map is built by
        composing the two key-indexed attribute maps and rejected if any
        ``from`` value would need two different ``to`` values.
        """
        if from_attr == to_attr:
            return None  # identity: callers skip mapping entirely
        key = (physical, dim, from_attr, to_attr)
        with self._lock:
            if key in self._maps:
                return self._maps[key]
        from_map = self._attr_map(physical, dim, from_attr)
        to_map = self._attr_map(physical, dim, to_attr)
        derived: dict | None = {}
        for dim_key, from_value in from_map.items():
            to_value = to_map[dim_key]
            seen = derived.get(from_value, to_value)
            if seen != to_value:
                derived = None  # not functional: to varies within from
                break
            derived[from_value] = to_value
        with self._lock:
            self._maps[key] = derived
        return derived

    def cardinality(self, physical: str, dim: str, attr: str) -> int:
        """Distinct values of one dimension attribute (exact)."""
        key = (physical, dim, attr)
        cached = self._cardinalities.get(key)
        if cached is None:
            cached = len(set(self._attr_map(physical, dim, attr).values()))
            with self._lock:
                self._cardinalities[key] = cached
        return cached

    # -- routing ------------------------------------------------------------

    def estimated_rows(self, cube: LogicalCube, rollup: RollupDecl) -> int:
        """Upper bound on a rollup's row count (cardinality product)."""
        rows = 1
        for dim, attr in rollup.grain:
            rows *= self.cardinality(cube.cube, dim, attr)
        return rows

    def _covers(
        self,
        cube: LogicalCube,
        rollup: RollupDecl,
        referenced: dict[str, int],
    ) -> bool:
        """Whether every referenced (dim → coarsest-needed level index)
        is present in the grain at a finer-or-equal level."""
        grain = rollup.grain_dict()
        for dim_name, needed_index in referenced.items():
            grain_attr = grain.get(dim_name)
            if grain_attr is None:
                return False  # dimension consolidated away entirely
            dim = cube.dimension(dim_name)
            if dim.level_index(grain_attr) > needed_index:
                return False  # stored coarser than requested
            if grain_attr != dim.hierarchy[needed_index]:
                # requested level must be derivable from the stored one
                derived = self.derive_map(
                    cube.cube, dim_name, grain_attr,
                    dim.hierarchy[needed_index],
                )
                if derived is None:
                    return False
        return True

    def route(
        self,
        cube: LogicalCube,
        group_by: list[tuple[str, str]],
        cuts: list,
        aggregate: str,
    ) -> RouteDecision:
        """Pick the smallest covering rollup, or fall back to base.

        ``cuts`` items carry ``dimension`` and ``attribute`` fields
        (see :class:`repro.api.server.Cut`).
        """
        referenced: dict[str, int] = {}
        for dim_name, attr in list(group_by) + [
            (c.dimension, c.attribute) for c in cuts
        ]:
            index = cube.dimension(dim_name).level_index(attr)
            previous = referenced.get(dim_name, index)
            referenced[dim_name] = min(previous, index)
        if aggregate not in NAVIGABLE_AGGREGATES:
            return RouteDecision(
                source="base",
                rollup=None,
                reason=f"aggregate {aggregate!r} is not navigable",
                candidates=(),
            )
        covering = [
            r for r in cube.rollups if self._covers(cube, r, referenced)
        ]
        if not covering:
            return RouteDecision(
                source="base",
                rollup=None,
                reason="no declared rollup covers the request",
                candidates=(),
            )
        sized = sorted(
            (self.estimated_rows(cube, r), r.name, r) for r in covering
        )
        rows, _, chosen = sized[0]
        return RouteDecision(
            source="rollup",
            rollup=chosen,
            reason=(
                f"rollup {chosen.name!r} is the smallest of "
                f"{len(covering)} covering grain(s)"
            ),
            candidates=tuple(name for _, name, _ in sized),
            estimated_rows=rows,
        )

    # -- materialization -----------------------------------------------------

    def rollup_query(
        self, cube: LogicalCube, rollup: RollupDecl, aggregate: str
    ) -> ConsolidationQuery:
        """The base-cube consolidation that materializes one grain."""
        return ConsolidationQuery.build(
            cube.cube,
            group_by=dict(rollup.grain),
            aggregate=aggregate,
        )

    def rows_for(
        self, cube: LogicalCube, rollup: RollupDecl, aggregate: str
    ) -> list:
        """The materialized rows of one (grain, aggregate), rebuilt
        *synchronously* when the cube generation has moved (the EXPLAIN
        path and the refresh worker use this; the serving path goes
        through :meth:`try_rows` so a request never waits on a build)."""
        generation = self.engine.cube_generation(cube.cube)
        key = (cube.name, rollup.name, aggregate)
        with self._lock:
            entry = self._store.get(key)
            if entry is not None and entry[0] == generation:
                self._last_hit[key] = time.monotonic()
                return entry[1]
        # build outside the lock: it is a real (serialized) engine query
        # run under the service's configured ExecutionOptions defaults
        result = self.service.execute(self.rollup_query(cube, rollup, aggregate))
        rows = list(result.rows)
        self.counters.add("rollup.rebuilds")
        nbytes = deep_sizeof(rows)
        # a write racing the build would bump the generation; storing the
        # pre-build sample is conservative (next request rebuilds again)
        with self._lock:
            self._store[key] = (generation, rows)
            self._bytes[key] = nbytes
            self._last_hit[key] = time.monotonic()
        self._register_grain_gauge(key)
        # outside the lock: the pressure hook may call right back into
        # reclaim_grains(), which takes it
        if self.pressure_callback is not None:
            self.pressure_callback()
        return rows

    def _register_grain_gauge(self, key: tuple) -> None:
        """Per-grain resident-row gauge, registered on first build."""
        if self._registry is None or key in self._grain_gauges:
            return

        def sample(k: tuple = key) -> float:
            with self._lock:
                entry = self._store.get(k)
            return float(len(entry[1])) if entry is not None else 0.0

        self._registry.register_gauge(
            "rollup.rows." + ".".join(key), sample, replace=True
        )
        self._grain_gauges.add(key)

    def try_rows(
        self, cube: LogicalCube, rollup: RollupDecl, aggregate: str
    ) -> list | None:
        """Fresh materialized rows, or ``None`` with a background
        refresh scheduled.

        The serving-path contract: a request must never pay a rollup
        build inline.  Stale or missing entries hand the request back
        to base-cube consolidation (same cost the request would pay
        with no router at all) while the refresh worker rebuilds; the
        next request at this grain scans the fresh rows.
        """
        generation = self.engine.cube_generation(cube.cube)
        key = (cube.name, rollup.name, aggregate)
        with self._lock:
            entry = self._store.get(key)
            if entry is not None and entry[0] == generation:
                self._last_hit[key] = time.monotonic()
                return entry[1]
        if entry is not None:
            self.counters.add("rollup.stale")
        self.schedule_refresh(cube, rollup, aggregate)
        return None

    def schedule_refresh(
        self, cube: LogicalCube, rollup: RollupDecl, aggregate: str
    ) -> str:
        """Queue one (grain, aggregate) rebuild, deduplicating in-flight
        work; starts the daemon refresh worker on first use.

        The build's :class:`TraceContext` is minted *here*, at schedule
        time, so the scheduling request can record which background
        build it caused before the build has run a single instruction:
        a ``schedules`` link is attached to the caller's active trace,
        and the build later records the reverse ``follows_from`` link.
        A deduplicated schedule links to the already-running build
        instead of minting a second identity.  Returns the build's
        trace_id.
        """
        key = (cube.name, rollup.name, aggregate)
        refresh_ctx = new_trace_context(origin="rollup-refresh")
        with self._lock:
            existing = self._inflight.get(key)
            if existing is None:
                self._inflight[key] = refresh_ctx.trace_id
                if self._worker is None:
                    self._worker = threading.Thread(
                        target=self._refresh_loop,
                        name="rollup-refresh",
                        daemon=True,
                    )
                    self._worker.start()
        trace_id = existing if existing is not None else refresh_ctx.trace_id
        detail = f"rollup {cube.name}/{rollup.name}/{aggregate}"
        add_trace_link("schedules", trace_id, detail=detail)
        if existing is not None:
            return existing
        scheduler = current_trace_context()
        self.counters.add("rollup.refreshes_scheduled")
        self._refresh_queue.put(
            (
                cube,
                rollup,
                aggregate,
                refresh_ctx,
                scheduler.trace_id if scheduler is not None else None,
            )
        )
        return refresh_ctx.trace_id

    def _refresh_loop(self) -> None:
        while True:
            item = self._refresh_queue.get()
            if item is None:
                return
            cube, rollup, aggregate, refresh_ctx, scheduler_trace_id = item
            key = (cube.name, rollup.name, aggregate)
            status = "ok"
            start = time.perf_counter()
            try:
                # the build runs under its own trace identity: the
                # service query it issues reads the thread-local and
                # joins this trace, not the request that scheduled it
                with trace_context(refresh_ctx):
                    self.rows_for(cube, rollup, aggregate)
            except Exception as exc:
                # a degraded cube or admission pressure fails the
                # refresh, not the requests it was serving; the next
                # stale hit reschedules
                status = type(exc).__name__
                self.counters.add("rollup.refresh_failures")
            finally:
                self._record_refresh(
                    refresh_ctx,
                    scheduler_trace_id,
                    cube,
                    rollup,
                    aggregate,
                    status,
                    time.perf_counter() - start,
                )
                with self._lock:
                    self._inflight.pop(key, None)

    def _record_refresh(
        self,
        refresh_ctx: TraceContext,
        scheduler_trace_id: str | None,
        cube: LogicalCube,
        rollup: RollupDecl,
        aggregate: str,
        status: str,
        latency_s: float,
    ) -> None:
        """Record the finished build's trace, linked back to its cause."""
        store = getattr(self.service, "traces", None)
        if store is None:
            return
        detail = f"rollup {cube.name}/{rollup.name}/{aggregate}"
        links = []
        if scheduler_trace_id is not None:
            links.append(
                {
                    "kind": "follows_from",
                    "trace_id": scheduler_trace_id,
                    "detail": "stale-grain fallback scheduled this build",
                }
            )
        store.record(
            refresh_ctx,
            name=f"rollup-refresh:{cube.name}/{rollup.name}/{aggregate}",
            origin="rollup-refresh",
            status=status,
            latency_s=latency_s,
            links=links,
            attrs={
                "cube": cube.name,
                "rollup": rollup.name,
                "aggregate": aggregate,
            },
            force=True,  # causally linked builds are always kept
        )
        if scheduler_trace_id is not None:
            # belt and braces: if the scheduling request's record is
            # already resident, attach the forward link there too (its
            # own add_trace_link only lands if its layer records links)
            store.link(
                scheduler_trace_id,
                {
                    "kind": "schedules",
                    "trace_id": refresh_ctx.trace_id,
                    "detail": detail,
                },
            )

    def close(self) -> None:
        """Stop the refresh worker (if it ever started)."""
        with self._lock:
            worker = self._worker
            self._worker = None
        if worker is not None:
            self._refresh_queue.put(None)
            worker.join(timeout=5)

    def resident_rollups(self) -> int:
        """Materialized (grain, aggregate) entries currently stored."""
        with self._lock:
            return len(self._store)

    def resident_rows(self) -> int:
        """Total materialized rows held across every stored grain (the
        ``rollup.resident_rows`` gauge: the router's memory footprint
        in cells, not entries)."""
        with self._lock:
            return sum(len(rows) for _, rows in self._store.values())

    def grain_rows(self) -> dict[str, int]:
        """Materialized row count per stored entry, keyed
        ``<cube>/<rollup>/<aggregate>``, for the rollup stats payload."""
        with self._lock:
            return {
                "/".join(key): len(rows)
                for key, (_, rows) in sorted(self._store.items())
            }

    # -- memory accounting ---------------------------------------------------

    def resident_bytes(self) -> int:
        """Measured bytes across every stored grain (O(entries))."""
        with self._lock:
            return sum(self._bytes.values())

    def grain_stats(self) -> dict[str, dict]:
        """Per-entry ``{rows, resident_bytes, last_hit_age_s}``, keyed
        ``<cube>/<rollup>/<aggregate>`` — the ``/rollups`` breakdown."""
        now = time.monotonic()
        with self._lock:
            return {
                "/".join(key): {
                    "rows": len(rows),
                    "resident_bytes": self._bytes.get(key, 0),
                    "last_hit_age_s": (
                        round(now - self._last_hit[key], 3)
                        if key in self._last_hit
                        else None
                    ),
                }
                for key, (_, rows) in sorted(self._store.items())
            }

    def top_entries(self, n: int = 10) -> list[dict]:
        """The ``n`` largest grains as ``{"key", "bytes"}`` dicts."""
        with self._lock:
            sized = sorted(
                self._bytes.items(), key=lambda item: item[1], reverse=True
            )
        return [
            {"key": "/".join(key), "bytes": nbytes}
            for key, nbytes in sized[:n]
        ]

    def reclaim_grains(self, target_bytes: int) -> int:
        """Evict coldest-first (by routed-hit recency) until at most
        ``target_bytes`` remain; returns bytes freed.

        An evicted grain is indistinguishable from a never-built one:
        the next request routed to it falls back to base-cube
        consolidation and schedules an async rebuild — exactly the
        stale path, so serving correctness is untouched.
        """
        freed = 0
        with self._lock:
            coldest = sorted(
                self._store, key=lambda key: self._last_hit.get(key, 0.0)
            )
            for key in coldest:
                if sum(self._bytes.values()) <= target_bytes:
                    break
                del self._store[key]
                freed += self._bytes.pop(key, 0)
                self._last_hit.pop(key, None)
                self.counters.add("rollup.evictions")
        return freed

    # -- answering -----------------------------------------------------------

    def scan(
        self,
        cube: LogicalCube,
        rollup: RollupDecl,
        rows: list,
        group_by: list[tuple[str, str]],
        cuts: list,
        aggregate: str,
        measure_indexes: list[int],
    ) -> list[tuple]:
        """Re-aggregate materialized rows to the requested shape.

        Each stored row is ``(grain values..., measure values...)`` in
        grain order; requested attributes derive from stored ones via
        the verified hierarchy maps, cuts filter on derived values, and
        measures merge with the aggregate's exact merge function.
        """
        merge = _MERGE[aggregate]
        grain = rollup.grain
        grain_pos = {dim: i for i, (dim, _) in enumerate(grain)}
        grain_attr = dict(grain)
        n_grain = len(grain)

        def deriver(dim: str, attr: str):
            stored = grain_attr[dim]
            pos = grain_pos[dim]
            if stored == attr:
                return lambda row: row[pos]
            mapping = self.derive_map(cube.cube, dim, stored, attr)
            if mapping is None:  # pragma: no cover — routing verified it
                raise ApiRequestError(
                    f"{attr!r} is not derivable from rollup grain "
                    f"{stored!r} on dimension {dim!r}"
                )
            return lambda row: mapping[row[pos]]

        group_fns = [deriver(dim, attr) for dim, attr in group_by]
        cut_fns = [(deriver(c.dimension, c.attribute), c) for c in cuts]

        cells: dict[tuple, list] = {}
        scanned = 0
        for row in rows:
            scanned += 1
            if any(not cut.matches(fn(row)) for fn, cut in cut_fns):
                continue
            key = tuple(fn(row) for fn in group_fns)
            measures = [row[n_grain + m] for m in measure_indexes]
            cell = cells.get(key)
            if cell is None:
                cells[key] = measures
            else:
                for i, value in enumerate(measures):
                    cell[i] = merge(cell[i], value)
        self.counters.add("rollup.rows_scanned", scanned)
        self.counters.add("rollup.cells_emitted", len(cells))
        return sorted(key + tuple(values) for key, values in cells.items())

    def answer(
        self,
        cube: LogicalCube,
        decision: RouteDecision,
        group_by: list[tuple[str, str]],
        cuts: list,
        aggregate: str,
        measure_indexes: list[int],
    ) -> tuple[list[tuple], int, float]:
        """Serve one routed request: ``(rows, rows_scanned, elapsed_s)``."""
        rollup = decision.rollup
        assert rollup is not None
        start = time.perf_counter()
        stored = self.rows_for(cube, rollup, aggregate)
        rows = self.scan(
            cube, rollup, stored, group_by, cuts, aggregate, measure_indexes
        )
        self.counters.add("rollup.hits")
        return rows, len(stored), time.perf_counter() - start
