"""The HTTP query surface: slicer-style aggregate requests over stdlib.

``ApiEndpoint`` owns the request pipeline — parse → validate against
the logical model → route (rollup vs. base) → answer → shape the JSON
response — and ``ApiServer`` puts it behind a
:class:`~http.server.ThreadingHTTPServer` exactly like the
observability endpoint.  Routes:

- ``GET /``                        — server info + route list
- ``GET /cubes``                   — logical cube names
- ``GET /cube/<name>/model``       — one cube's logical model
- ``GET|POST /cube/<name>/aggregate`` — the aggregate request
- ``GET /metrics``                 — Prometheus text (``api.*`` included)
- ``GET /healthz``                 — liveness via the attached service

Aggregate request surface (GET params or POST JSON body; the body shape
is pinned by ``benchmarks/schemas/api_request.schema.json``):

- ``drilldown`` — comma-separated ``dim`` or ``dim:level`` (a bare
  dimension drills to its coarsest level); JSON: list of strings or
  ``{"dimension": ..., "level": ...}`` objects.
- ``cut`` — ``|``-separated ``dim.level:spec`` where spec is either an
  in-list ``v1;v2;v3`` or an inclusive range ``lo..hi``; JSON: list of
  strings or ``{"dimension", "level", "values" | "range"}`` objects.
- ``measure`` / ``measures``, ``aggregate`` (default ``sum``),
- ``explain=1`` embeds the plan JSON (same schema as ``/explain``),
  ``analyze=1`` additionally binds actuals.

Every client mistake maps to a structured 4xx body
``{"error": {"kind", "message", "status"}}`` — a 5xx from this module
is a bug (the replay harness gates on zero of them).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.model import API_AGGREGATES, LogicalCube, LogicalModel
from repro.api.rollup import RollupRouter, RouteDecision
from repro.errors import (
    AdmissionError,
    ApiError,
    ApiNotFoundError,
    ApiRequestError,
    ApiTooLargeError,
    DegradedError,
    ReproError,
)
from repro.obs.exporters import prometheus_text, span_to_dict
from repro.obs.explain import PlanNode, QueryPlan, attach_actuals
from repro.obs.tracer import Tracer, thread_tracing
from repro.obs.tracing import (
    TraceContext,
    adopt_trace_id,
    current_trace_context,
    current_trace_links,
    new_trace_context,
    trace_context,
)
from repro.olap.query import ConsolidationQuery, SelectionPredicate
from repro.serve.fingerprint import query_fingerprint
from repro.util.stats import Counters

#: hard caps keeping one request's work bounded (structured 4xx beyond)
MAX_DRILLDOWN_ITEMS = 16
MAX_CUT_ITEMS = 32
MAX_CUT_VALUES = 256


@dataclass(frozen=True)
class Cut:
    """One parsed cut: an in-list or an inclusive range on a level."""

    dimension: str
    attribute: str
    values: tuple = ()
    low: object = None
    high: object = None

    @property
    def is_range(self) -> bool:
        return not self.values

    def matches(self, value) -> bool:
        if self.values:
            return value in self.values
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def to_dict(self) -> dict:
        payload: dict = {"dimension": self.dimension, "level": self.attribute}
        if self.values:
            payload["values"] = list(self.values)
        else:
            payload["range"] = [self.low, self.high]
        return payload


@dataclass(frozen=True)
class AggregateRequest:
    """One validated aggregate request against a logical cube."""

    cube: LogicalCube
    drilldown: tuple[tuple[str, str], ...]
    cuts: tuple[Cut, ...] = ()
    aggregate: str = "sum"
    measures: tuple[str, ...] = ()
    explain: bool = False
    analyze: bool = False


def _coerce_key_value(cube: LogicalCube, dimension: str, raw):
    """Key-level cut values arrive as strings; keys are integers."""
    if isinstance(raw, int):
        return raw
    try:
        return int(raw)
    except (TypeError, ValueError):
        raise ApiRequestError(
            f"cut value {raw!r} on key level of dimension {dimension!r} "
            "must be an integer"
        ) from None


def _truthy(raw) -> bool:
    if isinstance(raw, bool):
        return raw
    return str(raw).strip().lower() in ("1", "true", "yes", "on")


class RequestParser:
    """Parses GET params / POST bodies into :class:`AggregateRequest`."""

    def __init__(self, cube: LogicalCube):
        self.cube = cube

    def _level_for(self, dimension: str, attr: str | None) -> str:
        dim = self.cube.dimension(dimension)
        if attr is None:
            return dim.default_level
        dim.level_index(attr)  # raises ApiNotFoundError on unknown level
        return attr

    def _coerce(self, dimension: str, attr: str, raw):
        dim = self.cube.dimension(dimension)
        if attr == dim.hierarchy[0]:
            return _coerce_key_value(self.cube, dimension, raw)
        if not isinstance(raw, str):
            raise ApiRequestError(
                f"cut value {raw!r} on level {attr!r} of dimension "
                f"{dimension!r} must be a string"
            )
        return raw

    # -- drilldown ---------------------------------------------------------

    def drilldown_item(self, raw) -> tuple[str, str]:
        if isinstance(raw, dict):
            dimension = raw.get("dimension")
            if not isinstance(dimension, str):
                raise ApiRequestError(
                    f"drilldown object needs a string 'dimension': {raw!r}"
                )
            level = raw.get("level")
            if level is not None and not isinstance(level, str):
                raise ApiRequestError(
                    f"drilldown 'level' must be a string: {raw!r}"
                )
            return dimension, self._level_for(dimension, level)
        if not isinstance(raw, str) or not raw:
            raise ApiRequestError(f"malformed drilldown item {raw!r}")
        dimension, _, level = raw.partition(":")
        return dimension, self._level_for(dimension, level or None)

    def drilldown(self, items) -> tuple[tuple[str, str], ...]:
        if len(items) > MAX_DRILLDOWN_ITEMS:
            raise ApiRequestError(
                f"{len(items)} drilldown items exceed the cap of "
                f"{MAX_DRILLDOWN_ITEMS}"
            )
        parsed = tuple(self.drilldown_item(item) for item in items)
        dims = [dim for dim, _ in parsed]
        if len(set(dims)) != len(dims):
            raise ApiRequestError(
                f"a dimension may appear once in a drilldown; got {dims}"
            )
        return parsed

    # -- cuts --------------------------------------------------------------

    def cut_item(self, raw) -> Cut:
        if isinstance(raw, dict):
            return self._cut_from_object(raw)
        if not isinstance(raw, str):
            raise ApiRequestError(f"malformed cut item {raw!r}")
        head, sep, spec = raw.partition(":")
        if not sep or not spec:
            raise ApiRequestError(
                f"malformed cut {raw!r}; expected 'dim.level:spec'"
            )
        dimension, sep, attr = head.partition(".")
        if not sep or not attr:
            raise ApiRequestError(
                f"malformed cut target {head!r}; expected 'dim.level'"
            )
        self._level_for(dimension, attr)
        if ".." in spec:
            low_raw, _, high_raw = spec.partition("..")
            low = (
                self._coerce(dimension, attr, low_raw) if low_raw else None
            )
            high = (
                self._coerce(dimension, attr, high_raw) if high_raw else None
            )
            if low is None and high is None:
                raise ApiRequestError(
                    f"cut range {spec!r} needs at least one bound"
                )
            return Cut(dimension=dimension, attribute=attr, low=low, high=high)
        values = tuple(
            self._coerce(dimension, attr, v)
            for v in spec.split(";")
            if v != ""
        )
        if not values:
            raise ApiRequestError(f"cut {raw!r} lists no values")
        if len(values) > MAX_CUT_VALUES:
            raise ApiRequestError(
                f"{len(values)} cut values exceed the cap of {MAX_CUT_VALUES}"
            )
        return Cut(dimension=dimension, attribute=attr, values=values)

    def _cut_from_object(self, raw: dict) -> Cut:
        dimension = raw.get("dimension")
        if not isinstance(dimension, str):
            raise ApiRequestError(
                f"cut object needs a string 'dimension': {raw!r}"
            )
        attr = self._level_for(dimension, raw.get("level"))
        if "values" in raw:
            values_raw = raw["values"]
            if not isinstance(values_raw, list) or not values_raw:
                raise ApiRequestError(
                    f"cut 'values' must be a non-empty list: {raw!r}"
                )
            if len(values_raw) > MAX_CUT_VALUES:
                raise ApiRequestError(
                    f"{len(values_raw)} cut values exceed the cap of "
                    f"{MAX_CUT_VALUES}"
                )
            values = tuple(
                self._coerce(dimension, attr, v) for v in values_raw
            )
            return Cut(dimension=dimension, attribute=attr, values=values)
        if "range" in raw:
            bounds = raw["range"]
            if not isinstance(bounds, list) or len(bounds) != 2:
                raise ApiRequestError(
                    f"cut 'range' must be a [low, high] pair: {raw!r}"
                )
            low = (
                self._coerce(dimension, attr, bounds[0])
                if bounds[0] is not None
                else None
            )
            high = (
                self._coerce(dimension, attr, bounds[1])
                if bounds[1] is not None
                else None
            )
            if low is None and high is None:
                raise ApiRequestError(
                    f"cut range needs at least one bound: {raw!r}"
                )
            return Cut(dimension=dimension, attribute=attr, low=low, high=high)
        raise ApiRequestError(
            f"cut object needs 'values' or 'range': {raw!r}"
        )

    def cuts(self, items) -> tuple[Cut, ...]:
        if len(items) > MAX_CUT_ITEMS:
            raise ApiRequestError(
                f"{len(items)} cuts exceed the cap of {MAX_CUT_ITEMS}"
            )
        return tuple(self.cut_item(item) for item in items)

    # -- whole requests ----------------------------------------------------

    def _finish(
        self, drilldown_items, cut_items, aggregate, measures, explain, analyze
    ) -> AggregateRequest:
        if aggregate not in API_AGGREGATES:
            raise ApiRequestError(
                f"unknown aggregate {aggregate!r}; "
                f"expected one of {list(API_AGGREGATES)}"
            )
        if not measures:
            measures = (self.cube.default_measure,)
        for name in measures:
            self.cube.measure(name)  # raises ApiNotFoundError
        drilldown = self.drilldown(drilldown_items)
        if not drilldown:
            raise ApiRequestError(
                "an aggregate request needs at least one drilldown item"
            )
        return AggregateRequest(
            cube=self.cube,
            drilldown=drilldown,
            cuts=self.cuts(cut_items),
            aggregate=aggregate,
            measures=tuple(measures),
            explain=_truthy(explain),
            analyze=_truthy(analyze),
        )

    def from_params(self, params: dict[str, str]) -> AggregateRequest:
        drilldown_items = [
            item for item in params.get("drilldown", "").split(",") if item
        ]
        cut_items = [
            item for item in params.get("cut", "").split("|") if item
        ]
        measures: tuple[str, ...] = ()
        raw_measures = params.get("measures", params.get("measure", ""))
        if raw_measures:
            measures = tuple(m for m in raw_measures.split(",") if m)
        return self._finish(
            drilldown_items,
            cut_items,
            params.get("aggregate", "sum"),
            measures,
            params.get("explain", ""),
            params.get("analyze", ""),
        )

    def from_body(self, body: dict) -> AggregateRequest:
        if not isinstance(body, dict):
            raise ApiRequestError("request body must be a JSON object")
        unknown = sorted(
            set(body)
            - {
                "drilldown", "cut", "cuts", "aggregate", "measures",
                "measure", "explain", "analyze",
            }
        )
        if unknown:
            raise ApiRequestError(f"unknown request keys {unknown}")
        drilldown_items = body.get("drilldown", [])
        if not isinstance(drilldown_items, list):
            raise ApiRequestError("'drilldown' must be a list")
        cut_items = body.get("cut", body.get("cuts", []))
        if not isinstance(cut_items, list):
            raise ApiRequestError("'cut' must be a list")
        measures_raw = body.get("measures", body.get("measure", []))
        if isinstance(measures_raw, str):
            measures_raw = [measures_raw]
        if not isinstance(measures_raw, list):
            raise ApiRequestError("'measures' must be a list or a string")
        aggregate = body.get("aggregate", "sum")
        if not isinstance(aggregate, str):
            raise ApiRequestError("'aggregate' must be a string")
        return self._finish(
            drilldown_items,
            cut_items,
            aggregate,
            tuple(measures_raw),
            body.get("explain", False),
            body.get("analyze", False),
        )


class ApiEndpoint:
    """The transport-independent request pipeline behind the server."""

    def __init__(
        self,
        engine,
        service,
        model: LogicalModel,
        max_body_bytes: int = 64 * 1024,
    ):
        self.engine = engine
        self.service = service
        self.model = model
        self.max_body_bytes = max_body_bytes
        registry = engine.db.metrics
        self.registry = registry
        #: the serving layer's flight recorder, shared so API-handler
        #: spans and the query spans below merge into one trace record
        self.traces = getattr(service, "traces", None)
        self.router = RollupRouter(engine, service, registry=registry)
        self.counters = Counters()
        registry.register(
            "api:server", self.counters, reset=lambda: None, replace=True
        )
        self._histograms = {
            name: registry.register_histogram(name, replace=True)
            for name in (
                "api.request_seconds",
                "api.routed_seconds",
                "api.base_seconds",
            )
        }
        registry.register_gauge(
            "api.rollups_resident",
            lambda: float(self.router.resident_rollups()),
            replace=True,
        )
        self._measure_lock = threading.Lock()
        self._measure_indexes: dict[tuple[str, str], int] = {}
        # grain eviction is the most expensive reclaim (a full rebuild
        # on next demand), so the router registers last in the order
        memory = getattr(service, "memory", None)
        if memory is not None:
            memory.register_store(
                "rollup_grains",
                self.router.resident_bytes,
                reclaim=self.router.reclaim_grains,
                top_entries=self.router.top_entries,
                cost_rank=2,
                share=0.25,
            )
            self.router.pressure_callback = (
                lambda: memory.maybe_reclaim("rollup_build")
            )

    def close(self) -> None:
        """Stop the router's background refresh worker."""
        self.router.pressure_callback = None
        memory = getattr(self.service, "memory", None)
        if memory is not None:
            memory.unregister_store("rollup_grains")
        self.router.close()

    # -- tracing -------------------------------------------------------------

    def mint_trace(self) -> TraceContext:
        """A fresh root context for one inbound request (store-sampled)."""
        if self.traces is not None:
            return self.traces.mint(origin="api")
        return new_trace_context(origin="api")

    def record_request_trace(
        self,
        ctx: TraceContext,
        *,
        method: str,
        path: str,
        status: int,
        latency_s: float,
        tracer: Tracer | None,
        explicit: bool,
        route_source: str | None,
        error_kind: str | None,
    ) -> None:
        """Contribute the handler-side view of one request to the store.

        Client 4xx are ``ok`` traces (the request worked, the caller was
        wrong); 5xx and unmapped exceptions are errors and force-kept,
        as is any request that arrived with an explicit ``X-Trace-Id``.
        Must run inside the request's :class:`trace_context` block so
        the links the pipeline attached (a scheduled rollup rebuild)
        are still on this thread.
        """
        if self.traces is None:
            return
        attrs: dict = {"method": method, "path": path, "http_status": status}
        if route_source is not None:
            attrs["route"] = route_source
        self.traces.record(
            ctx,
            name=f"{method} {path}",
            origin="api",
            status=(
                error_kind
                if error_kind is not None and status >= 500
                else ("ok" if status < 500 else f"http_{status}")
            ),
            latency_s=latency_s,
            roots=(
                [span_to_dict(root) for root in tracer.roots]
                if tracer is not None and tracer.roots
                else None
            ),
            links=current_trace_links(),
            attrs=attrs,
            force=explicit or status >= 500,
        )

    # -- static payloads ----------------------------------------------------

    def info_payload(self) -> dict:
        return {
            "service": "repro-api",
            "cubes": self.model.cube_names(),
            "routes": [
                "/",
                "/cubes",
                "/cube/<name>/model",
                "/cube/<name>/aggregate",
                "/rollups",
                "/metrics",
                "/healthz",
            ],
        }

    def rollup_stats_payload(self) -> dict:
        """Router residency + per-grain materialized row counts.

        ``grains`` stays a plain name → row-count map (pinned by
        clients); the byte/recency breakdown rides in ``grain_stats``.
        """
        return {
            "resident_entries": self.router.resident_rollups(),
            "resident_rows": self.router.resident_rows(),
            "resident_bytes": self.router.resident_bytes(),
            "grains": self.router.grain_rows(),
            "grain_stats": self.router.grain_stats(),
            "counters": self.router.counters.snapshot(),
        }

    def cubes_payload(self) -> dict:
        return {"cubes": self.model.cube_names()}

    def cube_model_payload(self, name: str) -> dict:
        return self.model.cube(name).to_dict()

    def health_payload(self) -> tuple[int, dict]:
        degraded = self.service.degraded_cubes()
        status = 503 if degraded else 200
        return status, {
            "status": "degraded" if degraded else "ok",
            "degraded_cubes": degraded,
        }

    # -- compilation ---------------------------------------------------------

    def _measure_index(self, cube: LogicalCube, measure: str) -> int:
        """Position of one measure in the physical cube's measure list
        (the column order rollup rows store after the grain values)."""
        key = (cube.cube, measure)
        with self._measure_lock:
            cached = self._measure_indexes.get(key)
        if cached is None:
            state = self.engine.cube(cube.cube)
            names = [m.name for m in state.schema.measures]
            try:
                cached = names.index(measure)
            except ValueError:
                raise ApiNotFoundError(
                    f"physical cube {cube.cube!r} has no measure "
                    f"{measure!r}; model and schema disagree"
                ) from None
            with self._measure_lock:
                self._measure_indexes[key] = cached
        return cached

    def base_query(self, request: AggregateRequest) -> ConsolidationQuery:
        """The base-cube consolidation equivalent to one API request."""
        selections = []
        for cut in request.cuts:
            if cut.is_range:
                selections.append(
                    SelectionPredicate.between(
                        cut.dimension, cut.attribute, cut.low, cut.high
                    )
                )
            else:
                selections.append(
                    SelectionPredicate.in_list(
                        cut.dimension, cut.attribute, *cut.values
                    )
                )
        return ConsolidationQuery.build(
            request.cube.cube,
            group_by=dict(request.drilldown),
            selections=selections,
            aggregate=request.aggregate,
            measures=list(request.measures),
        )

    # -- the aggregate pipeline ----------------------------------------------

    def aggregate(self, cube_name: str, request_of) -> tuple[int, dict]:
        """Answer one aggregate request; ``request_of(parser)`` builds
        the :class:`AggregateRequest` (param- or body-sourced)."""
        start = time.perf_counter()
        self.counters.add("api.aggregate_requests")
        ctx = current_trace_context()
        trace_id = ctx.trace_id if ctx is not None else None
        cube = self.model.cube(cube_name)
        request = request_of(RequestParser(cube))
        decision = self.router.route(
            cube, list(request.drilldown), list(request.cuts),
            request.aggregate,
        )
        payload: dict | None = None
        if decision.source == "rollup":
            payload = self._routed(cube, request, decision)
            if payload is None:
                # chosen rollup stale or not yet built: refresh runs in
                # the background, this request pays the base cost once
                self.counters.add("api.stale_fallbacks")
                decision = replace(
                    decision,
                    source="base",
                    reason=(
                        f"rollup {decision.rollup.name!r} not fresh; "
                        "refresh scheduled, answered from base"
                    ),
                )
        if payload is not None:
            self.counters.add("api.rollup_hits")
            self._histograms["api.routed_seconds"].observe(
                time.perf_counter() - start, trace_id=trace_id
            )
        else:
            payload = self._base(cube, request, decision)
            self.counters.add("api.base_fallbacks")
            self._histograms["api.base_seconds"].observe(
                time.perf_counter() - start, trace_id=trace_id
            )
        payload["elapsed_s"] = time.perf_counter() - start
        self._histograms["api.request_seconds"].observe(
            payload["elapsed_s"], trace_id=trace_id
        )
        return 200, payload

    def _labels(self, request: AggregateRequest) -> list[str]:
        return [f"{dim}.{attr}" for dim, attr in request.drilldown] + list(
            request.measures
        )

    def _shape(
        self,
        request: AggregateRequest,
        rows: list,
        decision: RouteDecision,
        rows_scanned: int | None,
        explain: dict | None,
    ) -> dict:
        labels = self._labels(request)
        payload: dict = {
            "cube": request.cube.name,
            "aggregate": request.aggregate,
            "measures": list(request.measures),
            "drilldown": [list(pair) for pair in request.drilldown],
            "cuts": [cut.to_dict() for cut in request.cuts],
            "cells": [dict(zip(labels, row)) for row in rows],
            "cell_count": len(rows),
            "route": {
                "source": decision.source,
                "rollup": (
                    decision.rollup.name
                    if decision.rollup is not None
                    else None
                ),
                "grain": (
                    decision.rollup.grain_dict()
                    if decision.rollup is not None
                    else None
                ),
                "reason": decision.reason,
                "candidates": list(decision.candidates),
                "rows_scanned": rows_scanned,
            },
        }
        if explain is not None:
            payload["explain"] = explain
        return payload

    def _routed(
        self, cube: LogicalCube, request: AggregateRequest,
        decision: RouteDecision,
    ) -> dict | None:
        measure_indexes = [
            self._measure_index(cube, m) for m in request.measures
        ]
        rollup = decision.rollup
        assert rollup is not None
        if not request.explain:
            stored = self.router.try_rows(cube, rollup, request.aggregate)
            if stored is None:
                return None  # caller falls back to base for this request
            rows = self.router.scan(
                cube, rollup, stored, list(request.drilldown),
                list(request.cuts), request.aggregate, measure_indexes,
            )
            self.router.counters.add("rollup.hits")
            return self._shape(request, rows, decision, len(stored), None)
        # EXPLAIN (and ANALYZE): answer once, under a tracer when
        # actuals are wanted, and bind them to the rollup plan nodes
        plan = self._rollup_plan(cube, request, decision)
        tracer = (
            Tracer(registry=self.registry) if request.analyze else None
        )
        started = time.perf_counter()
        if tracer is not None:
            with thread_tracing(tracer):
                with tracer.span(
                    "rollup.route", rollup=rollup.name, cube=cube.name
                ):
                    stored = self.router.rows_for(
                        cube, rollup, request.aggregate
                    )
                    with tracer.span("rollup.scan", rows=len(stored)):
                        rows = self.router.scan(
                            cube, rollup, stored, list(request.drilldown),
                            list(request.cuts), request.aggregate,
                            measure_indexes,
                        )
                    self.router.counters.add("rollup.hits")
        else:
            rows, _, _ = self.router.answer(
                cube, decision, list(request.drilldown), list(request.cuts),
                request.aggregate, measure_indexes,
            )
            stored = self.router.rows_for(cube, rollup, request.aggregate)
        elapsed = time.perf_counter() - started
        scan_node = plan.root.children[0]
        scan_node.estimates["rollup.rows_scanned"] = len(stored)
        if tracer is not None and tracer.roots:
            attach_actuals(plan.root, tracer.roots[0])
            plan.analyzed = True
            plan.rows = len(rows)
            plan.elapsed_s = elapsed
            plan.sim_io_s = 0.0
            plan.totals = dict(
                tracer.roots[0].io
            )
            self.engine._record_misestimates(plan)
            self.counters.add("api.explain_analyzes")
        self.counters.add("api.explains")
        return self._shape(
            request, rows, decision, len(stored), plan.to_dict()
        )

    def _rollup_plan(
        self, cube: LogicalCube, request: AggregateRequest,
        decision: RouteDecision,
    ) -> QueryPlan:
        """The ``rollup.route`` plan for one routed request."""
        rollup = decision.rollup
        assert rollup is not None
        base = self.base_query(request)
        est_cells = 1
        for dim, attr in request.drilldown:
            est_cells *= self.router.cardinality(cube.cube, dim, attr)
        root = PlanNode(
            op="rollup.route",
            span="rollup.route",
            detail={
                "rollup": rollup.name,
                "grain": rollup.grain_dict(),
                "base_cube": cube.cube,
                "candidates": list(decision.candidates),
                "drilldown": [list(p) for p in request.drilldown],
                "cuts": len(request.cuts),
            },
            estimates={},
        )
        root.add(
            PlanNode(
                op="rollup.scan",
                span="rollup.scan",
                detail={"aggregate": request.aggregate},
                estimates={
                    "rollup.rows_scanned": decision.estimated_rows or 0,
                    "rollup.cells_emitted": est_cells,
                },
            )
        )
        return QueryPlan(
            cube=cube.cube,
            backend="rollup",
            mode="interpreted",
            order="chunk",
            fingerprint=query_fingerprint(base, backend="rollup"),
            planner={
                "requested": "auto",
                "reason": decision.reason,
                "route": {
                    "source": "rollup",
                    "rollup": rollup.name,
                    "candidates": list(decision.candidates),
                },
            },
            root=root,
        )

    def _base(
        self, cube: LogicalCube, request: AggregateRequest,
        decision: RouteDecision,
    ) -> dict:
        query = self.base_query(request)
        explain: dict | None = None
        if request.explain:
            plan = self.service.explain(query, analyze=request.analyze)
            explain = plan.to_dict()
            self.counters.add("api.explains")
            if request.analyze:
                self.counters.add("api.explain_analyzes")
        result = self.service.execute(query)
        rows = sorted(result.rows)
        return self._shape(request, rows, decision, None, explain)

    # -- error shaping -------------------------------------------------------

    def error_payload(self, exc: Exception) -> tuple[int, dict]:
        """Map one failure to ``(status, structured body)``."""
        if isinstance(exc, ApiError):
            self.counters.add("api.client_errors")
            return exc.status, {
                "error": {
                    "kind": exc.kind,
                    "message": str(exc),
                    "status": exc.status,
                }
            }
        if isinstance(exc, AdmissionError):
            self.counters.add("api.admission_rejections")
            return 429, {
                "error": {
                    "kind": "admission",
                    "message": str(exc),
                    "status": 429,
                }
            }
        if isinstance(exc, DegradedError):
            self.counters.add("api.degraded_rejections")
            return 503, {
                "error": {
                    "kind": "degraded",
                    "message": str(exc),
                    "status": 503,
                }
            }
        if isinstance(exc, ReproError):
            # engine-side validation of a compiled query (unknown
            # physical attribute, bad aggregate): the client's fault
            self.counters.add("api.client_errors")
            return 400, {
                "error": {
                    "kind": "query_error",
                    "message": str(exc),
                    "status": 400,
                }
            }
        self.counters.add("api.server_errors")
        return 500, {
            "error": {
                "kind": "internal",
                "message": f"{type(exc).__name__}: {exc}",
                "status": 500,
            }
        }


class ApiServer:
    """``ApiEndpoint`` behind a stdlib threading HTTP server.

    The lifecycle mirrors
    :class:`~repro.obs.server.ObservabilityServer`: bind port 0 for an
    ephemeral port, serve from a daemon thread, ``stop()`` (or the
    context manager) shuts down cleanly.
    """

    def __init__(
        self,
        endpoint: ApiEndpoint,
        host: str = "127.0.0.1",
        port: int = 0,
        access_log: bool = False,
        access_log_stream=None,
    ):
        self.endpoint = endpoint
        self.host = host
        self.access_log = access_log
        self.access_log_stream = access_log_stream
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ApiServer":
        if self._httpd is not None:
            return self
        endpoint = self.endpoint
        access_log = self.access_log
        access_log_stream = self.access_log_stream

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:
                # the stdlib per-request line is replaced by the
                # structured JSON access log below (opt-in)
                pass

            def _access_log(
                self,
                method: str,
                path: str,
                status: int,
                latency_s: float,
                trace_id: str,
                route_source: str | None,
            ) -> None:
                if not access_log:
                    return
                line = json.dumps(
                    {
                        "ts": round(time.time(), 3),
                        "method": method,
                        "path": path,
                        "status": status,
                        "latency_ms": round(latency_s * 1000.0, 3),
                        "trace_id": trace_id,
                        "route": route_source,
                    },
                    sort_keys=True,
                )
                stream = access_log_stream or sys.stderr
                print(line, file=stream, flush=True)

            def _send(self, status: int, body: bytes, content_type: str):
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                trace_id = getattr(self, "_trace_id", None)
                if trace_id is not None:
                    self.send_header("X-Trace-Id", trace_id)
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, status: int, payload) -> None:
                body = json.dumps(payload).encode("utf-8")
                self._send(status, body, "application/json; charset=utf-8")

            def _params(self) -> dict[str, str]:
                parts = self.path.split("?", 1)
                if len(parts) != 2:
                    return {}
                from urllib.parse import parse_qsl

                return dict(parse_qsl(parts[1]))

            def _read_body(self) -> dict:
                length_raw = self.headers.get("Content-Length", "0")
                try:
                    length = int(length_raw)
                except ValueError:
                    raise ApiRequestError(
                        f"bad Content-Length {length_raw!r}"
                    ) from None
                if length > endpoint.max_body_bytes:
                    raise ApiTooLargeError(
                        f"request body of {length} bytes exceeds the "
                        f"{endpoint.max_body_bytes}-byte cap"
                    )
                raw = self.rfile.read(length) if length else b""
                if not raw:
                    raise ApiRequestError("request body is empty")
                try:
                    return json.loads(raw)
                except ValueError as exc:
                    raise ApiRequestError(
                        f"request body is not JSON: {exc}"
                    ) from None

            def _dispatch(self, method: str) -> None:
                endpoint.counters.add("api.requests")
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                started = time.perf_counter()
                ctx = adopt_trace_id(
                    self.headers.get("X-Trace-Id"), origin="api"
                )
                explicit = ctx is not None
                if ctx is None:
                    ctx = endpoint.mint_trace()
                self._trace_id = ctx.trace_id
                tracer = (
                    Tracer(registry=endpoint.registry)
                    if (ctx.sampled or explicit)
                    else None
                )
                error_kind: str | None = None
                with trace_context(ctx):
                    try:
                        if tracer is not None:
                            with thread_tracing(tracer):
                                with tracer.span(
                                    "api.request", method=method, path=path
                                ):
                                    status, payload, content_type = (
                                        self._route(method, path)
                                    )
                        else:
                            status, payload, content_type = self._route(
                                method, path
                            )
                    except Exception as exc:  # noqa: BLE001 — mapped, never raised
                        error_kind = type(exc).__name__
                        status, payload = endpoint.error_payload(exc)
                        content_type = None
                    latency_s = time.perf_counter() - started
                    route_source = None
                    if isinstance(payload, dict):
                        payload.setdefault("trace_id", ctx.trace_id)
                        route = payload.get("route")
                        if isinstance(route, dict):
                            route_source = route.get("source")
                    endpoint.record_request_trace(
                        ctx,
                        method=method,
                        path=path,
                        status=status,
                        latency_s=latency_s,
                        tracer=tracer,
                        explicit=explicit,
                        route_source=route_source,
                        error_kind=error_kind,
                    )
                bucket = f"api.responses_{status // 100}xx"
                endpoint.counters.add(bucket)
                if content_type is not None:
                    self._send(
                        status, payload.encode("utf-8"), content_type
                    )
                else:
                    self._send_json(status, payload)
                self._access_log(
                    method, path, status, latency_s, ctx.trace_id,
                    route_source,
                )

            def _route(self, method: str, path: str):
                if path == "/metrics" and method == "GET":
                    return (
                        200,
                        prometheus_text(endpoint.registry),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                if path == "/" and method == "GET":
                    return 200, endpoint.info_payload(), None
                if path == "/cubes" and method == "GET":
                    return 200, endpoint.cubes_payload(), None
                if path == "/rollups" and method == "GET":
                    return 200, endpoint.rollup_stats_payload(), None
                if path == "/healthz" and method == "GET":
                    status, payload = endpoint.health_payload()
                    return status, payload, None
                if path.startswith("/cube/"):
                    rest = path[len("/cube/") :]
                    name, _, action = rest.partition("/")
                    if action == "model" and method == "GET":
                        return 200, endpoint.cube_model_payload(name), None
                    if action == "aggregate":
                        if method == "GET":
                            params = self._params()
                            status, payload = endpoint.aggregate(
                                name,
                                lambda parser: parser.from_params(params),
                            )
                        else:
                            body = self._read_body()
                            status, payload = endpoint.aggregate(
                                name,
                                lambda parser: parser.from_body(body),
                            )
                        return status, payload, None
                raise ApiNotFoundError(
                    f"unknown route {method} {path!r}; see / for routes"
                )

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    self._dispatch("GET")
                except BrokenPipeError:  # pragma: no cover
                    pass

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                try:
                    self._dispatch("POST")
                except BrokenPipeError:  # pragma: no cover
                    pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-api-server",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ApiServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
