"""The logical model: named cubes, hierarchies, measures, rollups.

The slicer pattern (DataBrewery/cubes): clients speak a *logical* model
— cube names, dimension hierarchies, measure names — and the server
owns the mapping onto the physical layer.  Here a
:class:`LogicalCube` binds one logical name to one loaded engine cube,
declares each dimension's hierarchy path ordered **finest → coarsest**
(the key attribute first, exactly the order
:class:`~repro.olap.model.DimensionDef` stores levels in), and lists
the rollup grains the router may materialize.

The model is data, checked in as JSON (``benchmarks/api_model.json``)
and validated on load; ``{scale}`` placeholders in physical cube names
are substituted so one model file serves every benchmark scale.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ApiModelError, ApiNotFoundError

#: aggregate functions the API accepts (the engine supports more; the
#: API exposes the mergeable family EXPLAIN and the router understand)
API_AGGREGATES = ("sum", "count", "min", "max", "avg")


@dataclass(frozen=True)
class LogicalDimension:
    """One dimension: its name and hierarchy path, finest first."""

    name: str
    #: attribute names finest → coarsest; ``hierarchy[0]`` is the key
    hierarchy: tuple[str, ...]

    def level_index(self, attr: str) -> int:
        """Position of ``attr`` in the hierarchy (0 = finest/key)."""
        try:
            return self.hierarchy.index(attr)
        except ValueError:
            raise ApiNotFoundError(
                f"dimension {self.name!r} has no level {attr!r}; "
                f"hierarchy: {list(self.hierarchy)}"
            ) from None

    @property
    def default_level(self) -> str:
        """The drilldown default: the coarsest hierarchy level."""
        return self.hierarchy[-1]


@dataclass(frozen=True)
class LogicalMeasure:
    """One measure exposed by a logical cube."""

    name: str


@dataclass(frozen=True)
class RollupDecl:
    """One declared rollup grain: ``{dimension: level}`` (dims absent
    from the grain are consolidated away entirely)."""

    name: str
    grain: tuple[tuple[str, str], ...]

    def grain_dict(self) -> dict[str, str]:
        return dict(self.grain)


@dataclass(frozen=True)
class LogicalCube:
    """One logical cube bound to one physical engine cube."""

    name: str
    cube: str  # the physical (engine) cube name
    dimensions: tuple[LogicalDimension, ...]
    measures: tuple[LogicalMeasure, ...]
    rollups: tuple[RollupDecl, ...] = ()
    label: str = ""

    def dimension(self, name: str) -> LogicalDimension:
        for dim in self.dimensions:
            if dim.name == name:
                return dim
        raise ApiNotFoundError(
            f"cube {self.name!r} has no dimension {name!r}; "
            f"dimensions: {[d.name for d in self.dimensions]}"
        )

    def measure(self, name: str) -> LogicalMeasure:
        for measure in self.measures:
            if measure.name == name:
                return measure
        raise ApiNotFoundError(
            f"cube {self.name!r} has no measure {name!r}; "
            f"measures: {[m.name for m in self.measures]}"
        )

    @property
    def default_measure(self) -> str:
        return self.measures[0].name

    def to_dict(self) -> dict:
        """The ``/cube/<name>/model`` payload."""
        return {
            "name": self.name,
            "label": self.label or self.name,
            "cube": self.cube,
            "dimensions": [
                {"name": d.name, "hierarchy": list(d.hierarchy)}
                for d in self.dimensions
            ],
            "measures": [{"name": m.name} for m in self.measures],
            "aggregates": list(API_AGGREGATES),
            "rollups": [
                {"name": r.name, "grain": r.grain_dict()}
                for r in self.rollups
            ],
        }


@dataclass(frozen=True)
class LogicalModel:
    """Every logical cube the API serves, by name."""

    cubes: tuple[LogicalCube, ...] = field(default_factory=tuple)

    def cube(self, name: str) -> LogicalCube:
        for cube in self.cubes:
            if cube.name == name:
                return cube
        raise ApiNotFoundError(
            f"no logical cube named {name!r}; "
            f"cubes: {[c.name for c in self.cubes]}"
        )

    def cube_names(self) -> list[str]:
        return [c.name for c in self.cubes]


def _require(mapping: dict, key: str, where: str):
    if key not in mapping:
        raise ApiModelError(f"{where}: missing required key {key!r}")
    return mapping[key]


def model_from_dict(payload: dict, scale: str = "small") -> LogicalModel:
    """Build and validate a :class:`LogicalModel` from parsed JSON.

    ``{scale}`` in physical cube names is substituted with ``scale``.
    Validation is structural only — binding against the engine's loaded
    cubes happens when the server compiles a request.
    """
    if not isinstance(payload, dict):
        raise ApiModelError("model document must be a JSON object")
    cubes = []
    for i, raw in enumerate(_require(payload, "cubes", "model")):
        where = f"model cube #{i}"
        name = _require(raw, "name", where)
        dims = []
        for raw_dim in _require(raw, "dimensions", where):
            hierarchy = tuple(_require(raw_dim, "hierarchy", where))
            if not hierarchy:
                raise ApiModelError(f"{where}: empty hierarchy")
            dims.append(
                LogicalDimension(
                    name=_require(raw_dim, "name", where),
                    hierarchy=hierarchy,
                )
            )
        measures = tuple(
            LogicalMeasure(name=_require(m, "name", where))
            for m in _require(raw, "measures", where)
        )
        if not measures:
            raise ApiModelError(f"{where}: at least one measure required")
        dim_names = {d.name for d in dims}
        rollups = []
        for raw_rollup in raw.get("rollups", []):
            rollup_name = _require(raw_rollup, "name", where)
            grain_items = []
            grain = _require(raw_rollup, "grain", where)
            for dim_name, attr in grain.items():
                if dim_name not in dim_names:
                    raise ApiModelError(
                        f"{where}: rollup {rollup_name!r} names unknown "
                        f"dimension {dim_name!r}"
                    )
                grain_items.append((dim_name, attr))
            # canonical dimension order: the cube's declaration order
            order = {d.name: i for i, d in enumerate(dims)}
            grain_items.sort(key=lambda pair: order[pair[0]])
            rollups.append(
                RollupDecl(name=rollup_name, grain=tuple(grain_items))
            )
        cubes.append(
            LogicalCube(
                name=name,
                cube=str(_require(raw, "cube", where)).format(scale=scale),
                dimensions=tuple(dims),
                measures=measures,
                rollups=tuple(rollups),
                label=raw.get("label", ""),
            )
        )
    names = [c.name for c in cubes]
    if len(set(names)) != len(names):
        raise ApiModelError(f"duplicate logical cube names: {names}")
    return LogicalModel(cubes=tuple(cubes))


def load_model(path: str, scale: str = "small") -> LogicalModel:
    """Load and validate a model file (see :func:`model_from_dict`)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ApiModelError(f"cannot read model file {path!r}: {exc}") from exc
    except ValueError as exc:
        raise ApiModelError(f"model file {path!r} is not JSON: {exc}") from exc
    return model_from_dict(payload, scale=scale)
