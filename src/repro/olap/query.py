"""Consolidation queries (§2.1's generalized consolidation).

A :class:`ConsolidationQuery` captures the paper's query template::

    SELECT P, F_1(m_1), ..., F_p(m_p)
    FROM   C(D_1(A_11), ..., D_n(A_n1))
    WHERE  φ(D_1) AND ... AND φ(D_n)
    GROUP BY G

``group_by`` maps dimension names to the attribute grouped on (the key
attribute itself is allowed); dimensions absent from ``group_by`` are
aggregated away.  ``selections`` are equality / IN-list predicates on
dimension attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.olap.model import CubeSchema
from repro.olap.options import ExecutionOptions


@dataclass(frozen=True)
class SelectionPredicate:
    """``dimension.attribute IN values`` or ``BETWEEN low AND high``.

    Equality is a 1-tuple of values.  For a range predicate leave
    ``values`` as ``None`` and set ``low``/``high`` (inclusive; either
    bound may stay open).  ``values``/``low``/``high`` are keyword-only
    (the PR 2 positional form is gone); prefer the :meth:`in_list` /
    :meth:`between` constructors or the fluent
    :meth:`ConsolidationQuery.builder`.
    """

    dimension: str
    attribute: str
    values: tuple | None = field(default=None, kw_only=True)
    low: object = field(default=None, kw_only=True)
    high: object = field(default=None, kw_only=True)

    def __post_init__(self):
        is_range = self.low is not None or self.high is not None
        if is_range and self.values is not None:
            raise QueryError(
                f"selection on {self.dimension}.{self.attribute}: give "
                "either values or a range, not both"
            )
        if not is_range and not self.values:
            raise QueryError(
                f"selection on {self.dimension}.{self.attribute} needs "
                "at least one value"
            )

    @classmethod
    def in_list(
        cls, dimension: str, attribute: str, *values
    ) -> "SelectionPredicate":
        """``dimension.attribute IN (values...)`` (equality = one value)."""
        return cls(dimension, attribute, values=tuple(values))

    @classmethod
    def between(
        cls,
        dimension: str,
        attribute: str,
        low: object = None,
        high: object = None,
    ) -> "SelectionPredicate":
        """``dimension.attribute BETWEEN low AND high`` (bounds optional)."""
        return cls(dimension, attribute, low=low, high=high)

    @property
    def is_range(self) -> bool:
        """Whether this is a BETWEEN predicate."""
        return self.values is None

    def matches(self, value) -> bool:
        """Whether one attribute value satisfies the predicate."""
        if self.is_range:
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value > self.high:
                return False
            return True
        return value in self.values


@dataclass(frozen=True)
class ConsolidationQuery:
    """A consolidation with optional selections (Queries 1, 2 and 3)."""

    cube: str
    group_by: tuple[tuple[str, str], ...]  # (dimension, attribute) pairs
    selections: tuple[SelectionPredicate, ...] = ()
    aggregate: str = "sum"
    measures: tuple[str, ...] | None = None  # None = all cube measures
    #: how to execute (backend/mode/executor/shards); None = engine
    #: defaults.  Excluded from equality — options describe *how* a
    #: query runs, not *what* it asks, and fingerprints track the how.
    options: ExecutionOptions | None = field(default=None, compare=False)

    def __post_init__(self):
        if not self.group_by:
            raise QueryError("a consolidation needs at least one group-by")
        dims = [d for d, _ in self.group_by]
        if len(set(dims)) != len(dims):
            raise QueryError(f"dimension repeated in group-by: {dims}")

    @classmethod
    def build(
        cls,
        cube: str,
        group_by: dict[str, str],
        selections: list[SelectionPredicate] | None = None,
        aggregate: str = "sum",
        measures: list[str] | None = None,
        options: ExecutionOptions | None = None,
    ) -> "ConsolidationQuery":
        """Convenience constructor taking plain dicts/lists."""
        return cls(
            cube=cube,
            group_by=tuple(group_by.items()),
            selections=tuple(selections or ()),
            aggregate=aggregate,
            measures=tuple(measures) if measures is not None else None,
            options=options,
        )

    @classmethod
    def builder(
        cls, cube: str, options: ExecutionOptions | None = None
    ) -> "QueryBuilder":
        """Start a fluent builder for a query against ``cube``::

            query = (ConsolidationQuery.builder("sales")
                     .group_by("product", "type")
                     .where_in("store", "region", "West")
                     .where_between("time", "month", 1, 6)
                     .aggregate("volume", "sum")
                     .options(shards=4, executor="process")
                     .build())
        """
        return QueryBuilder(cube, options=options)

    @property
    def group_dims(self) -> tuple[str, ...]:
        """Dimensions appearing in the group-by, in declaration order."""
        return tuple(d for d, _ in self.group_by)

    def group_attr(self, dimension: str) -> str:
        """The attribute one dimension groups on."""
        for d, attr in self.group_by:
            if d == dimension:
                return attr
        raise QueryError(f"dimension {dimension!r} is not in the group-by")

    @property
    def selected_dims(self) -> tuple[str, ...]:
        """Dimensions carrying at least one selection."""
        seen: list[str] = []
        for s in self.selections:
            if s.dimension not in seen:
                seen.append(s.dimension)
        return tuple(seen)

    def validate(self, schema: CubeSchema) -> None:
        """Check every referenced dimension/attribute/measure exists."""
        if self.cube != schema.name:
            raise QueryError(
                f"query targets cube {self.cube!r}, schema is {schema.name!r}"
            )
        for dim_name, attr in self.group_by:
            dim = schema.dimension(dim_name)
            if attr != dim.key and attr not in dim.level_names:
                raise QueryError(
                    f"dimension {dim_name!r} has no attribute {attr!r}"
                )
        for sel in self.selections:
            dim = schema.dimension(sel.dimension)
            if sel.attribute != dim.key and sel.attribute not in dim.level_names:
                raise QueryError(
                    f"dimension {sel.dimension!r} has no attribute "
                    f"{sel.attribute!r}"
                )
        if self.measures is not None:
            known = {m.name for m in schema.measures}
            for m in self.measures:
                if m not in known:
                    raise QueryError(f"cube has no measure {m!r}")

    def explain(self, engine, options=None, analyze: bool = False, **kwargs):
        """EXPLAIN this query — see :meth:`OlapEngine.explain`.

        The same ``(options, analyze)`` signature every explain surface
        takes; ``explain(engine, analyze=True)`` runs the query and
        attaches measured actuals to every plan node.
        """
        return engine.explain(self, options, analyze=analyze, **kwargs)


class QueryBuilder:
    """Fluent construction of a :class:`ConsolidationQuery`.

    Each method returns the builder, so calls chain; :meth:`build`
    produces the canonical frozen dataclass.  The builder is the
    friendly face — the dataclass stays the immutable form every layer
    (fingerprinting, caching, execution) consumes.
    """

    def __init__(self, cube: str, options: ExecutionOptions | None = None):
        self._cube = cube
        self._group_by: list[tuple[str, str]] = []
        self._selections: list[SelectionPredicate] = []
        self._aggregate: str | None = None
        self._measures: list[str] | None = None
        self._options = options

    def options(self, **knobs) -> "QueryBuilder":
        """Attach execution knobs (``backend=``, ``mode=``, ``executor=``,
        ``shards=``, ``order=``, ``allow_partial=``) to the built query."""
        base = self._options if self._options is not None else ExecutionOptions()
        self._options = base.merged_with(**knobs)
        return self

    def group_by(self, dimension: str, attribute: str) -> "QueryBuilder":
        """Group on one dimension attribute (order fixes output order)."""
        self._group_by.append((dimension, attribute))
        return self

    def where_in(
        self, dimension: str, attribute: str, *values
    ) -> "QueryBuilder":
        """Keep cells whose attribute is one of ``values``."""
        self._selections.append(
            SelectionPredicate.in_list(dimension, attribute, *values)
        )
        return self

    def where_between(
        self,
        dimension: str,
        attribute: str,
        low: object = None,
        high: object = None,
    ) -> "QueryBuilder":
        """Keep cells whose attribute lies in ``[low, high]`` (inclusive)."""
        self._selections.append(
            SelectionPredicate.between(dimension, attribute, low, high)
        )
        return self

    def aggregate(self, measure: str, fn: str = "sum") -> "QueryBuilder":
        """Aggregate ``measure`` with ``fn``.

        Call once per projected measure; the query template applies one
        aggregate function across all of them (§2.1), so every call
        must name the same ``fn``.
        """
        if self._aggregate is not None and fn != self._aggregate:
            raise QueryError(
                f"a consolidation applies one aggregate to all measures; "
                f"got {self._aggregate!r} then {fn!r}"
            )
        self._aggregate = fn
        if self._measures is None:
            self._measures = []
        if measure not in self._measures:
            self._measures.append(measure)
        return self

    def build(self) -> ConsolidationQuery:
        """The immutable query (validation happens in the dataclass)."""
        return ConsolidationQuery(
            cube=self._cube,
            group_by=tuple(self._group_by),
            selections=tuple(self._selections),
            aggregate=self._aggregate if self._aggregate is not None else "sum",
            measures=(
                tuple(self._measures) if self._measures is not None else None
            ),
            options=self._options,
        )

    def run(self, engine, options=None, **kwargs):
        """Build and execute on ``engine`` (attached options apply)."""
        return engine.run(self.build(), options, **kwargs)
