"""The §2 OLAP data model: dimensions, hierarchies, measures, cubes.

A :class:`CubeSchema` is the logical object both physical designs are
derived from.  Each :class:`DimensionDef` has a key attribute plus an
ordered list of hierarchy attributes (finest first — ``store name →
city → region``); each :class:`MeasureDef` is a named numeric fact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError

_KEY_TYPES = {"int32", "int64"}
_MEASURE_TYPES = {"int64", "float64"}


@dataclass(frozen=True)
class DimensionDef:
    """One dimension: a key attribute and its hierarchy attributes.

    ``key`` is the attribute that indexes the cube (``pid``); every
    entry of ``levels`` is a ``(name, ctype)`` pair, finest level
    first, using record-codec type names (``str:8``, ``int32``, ...).
    """

    name: str
    key: str
    key_type: str = "int32"
    levels: tuple[tuple[str, str], ...] = ()

    def __post_init__(self):
        if self.key_type not in _KEY_TYPES and not self.key_type.startswith(
            "str:"
        ):
            raise SchemaError(
                f"dimension {self.name!r}: key type {self.key_type!r} "
                "must be int32/int64/str:N"
            )
        names = [self.key] + [n for n, _ in self.levels]
        if len(set(names)) != len(names):
            raise SchemaError(
                f"dimension {self.name!r}: duplicate attribute names"
            )

    @property
    def level_names(self) -> tuple[str, ...]:
        """Hierarchy attribute names, finest first."""
        return tuple(n for n, _ in self.levels)

    def attribute_type(self, attr: str) -> str:
        """Record-codec type of one attribute (key or level)."""
        if attr == self.key:
            return self.key_type
        for name, ctype in self.levels:
            if name == attr:
                return ctype
        raise SchemaError(
            f"dimension {self.name!r} has no attribute {attr!r}"
        )


@dataclass(frozen=True)
class MeasureDef:
    """One measure stored in each cube cell."""

    name: str
    ctype: str = "int64"

    def __post_init__(self):
        if self.ctype not in _MEASURE_TYPES:
            raise SchemaError(
                f"measure {self.name!r}: type {self.ctype!r} must be one of "
                f"{sorted(_MEASURE_TYPES)}"
            )


@dataclass(frozen=True)
class CubeSchema:
    """An n-dimensional cube with p measures (§2's hypercube C)."""

    name: str
    dimensions: tuple[DimensionDef, ...]
    measures: tuple[MeasureDef, ...] = (MeasureDef("volume"),)

    def __post_init__(self):
        if not self.dimensions:
            raise SchemaError("a cube needs at least one dimension")
        if not self.measures:
            raise SchemaError("a cube needs at least one measure")
        names = [d.name for d in self.dimensions]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate dimension names")
        mnames = [m.name for m in self.measures]
        if len(set(mnames)) != len(mnames):
            raise SchemaError("duplicate measure names")
        dtypes = {m.ctype for m in self.measures}
        if len(dtypes) > 1:
            raise SchemaError(
                "all measures must share one storage type (int64 or float64)"
            )

    @property
    def ndim(self) -> int:
        """Number of dimensions (n)."""
        return len(self.dimensions)

    @property
    def measure_dtype(self) -> str:
        """The shared storage type of all measures."""
        return self.measures[0].ctype

    def dimension(self, name: str) -> DimensionDef:
        """Dimension by name."""
        for d in self.dimensions:
            if d.name == name:
                return d
        raise SchemaError(
            f"cube {self.name!r} has no dimension {name!r}; have "
            f"{[d.name for d in self.dimensions]}"
        )

    def dim_no(self, name: str) -> int:
        """Position of a dimension."""
        for i, d in enumerate(self.dimensions):
            if d.name == name:
                return i
        raise SchemaError(f"cube {self.name!r} has no dimension {name!r}")


def retail_schema() -> CubeSchema:
    """The paper's running example: Sales(product, store, time; volume)."""
    return CubeSchema(
        name="sales",
        dimensions=(
            DimensionDef(
                "product",
                key="pid",
                levels=(("pname", "str:16"), ("type", "str:12"), ("category", "str:12")),
            ),
            DimensionDef(
                "store",
                key="sid",
                levels=(
                    ("sname", "str:16"),
                    ("city", "str:16"),
                    ("state", "str:12"),
                    ("region", "str:12"),
                ),
            ),
            DimensionDef(
                "time",
                key="tid",
                levels=(
                    ("day", "int32"),
                    ("month", "int32"),
                    ("quarter", "int32"),
                    ("year", "int32"),
                ),
            ),
        ),
        measures=(MeasureDef("volume"),),
    )
