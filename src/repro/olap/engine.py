"""The unified OLAP engine: one cube, two physical designs, seven backends.

:class:`OlapEngine` loads a :class:`~repro.olap.model.CubeSchema` into

- the relational star schema: dimension heap tables + the §4.4 fact
  file, with join bitmap indices and (optionally) fact B-trees, and
- the OLAP Array ADT of §3,

then executes :class:`~repro.olap.query.ConsolidationQuery` objects
through any backend:

========== ==========================================================
``array``     §4.1 consolidation / §4.2 consolidation with selection
``starjoin``  §4.3 Starjoin operator (selections via key filters)
``bitmap``    §4.5 bitmap AND + fact-file fetch
``btree``     standard B-tree selection baseline (§4.4's also-ran)
``mbtree``    skipping multi-attribute B-tree reconstruction (§4.4)
``leftdeep``  pipelined left-deep hash-join plan (§1's "traditional")
``auto``      the §5.6-derived planner rule
========== ==========================================================

Every backend returns the identical sorted row multiset, so any two can
be cross-checked — the integration tests' main oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from collections.abc import Callable

from repro.core.builder import DimensionData, build_olap_array
from repro.core.consolidate import ConsolidationSpec, consolidate
from repro.core.index_to_index import IndexToIndex
from repro.core.olap_array import OLAPArray
from repro.errors import CatalogError, PlanError, QueryError
from repro.obs.tracer import get_tracer
from repro.obs.tracing import TraceContext, current_trace_context
from repro.olap import backends as backend_registry
from repro.olap.backends import BackendContext
from repro.olap.model import CubeSchema
from repro.olap.options import ExecutionOptions, coerce_options, resolve_mode
from repro.olap.planner import (
    DEFAULT_CROSSOVER_SELECTIVITY,
    PlannerInputs,
    choose_backend_explained,
)
from repro.olap.query import ConsolidationQuery
from repro.olap.star_schema import (
    array_name,
    bitmap_index_name,
    btree_index_name,
    dimension_table_name,
    dimension_table_schema,
    fact_table_name,
    fact_table_schema,
    mbtree_index_name,
)
from repro.relational.catalog import Database
from repro.relational.star_join import DimensionJoinSpec
from repro.util.stats import Counters, Timer

_RELATIONAL_BACKENDS = ("starjoin", "bitmap", "btree", "mbtree", "leftdeep")
#: the built-in backends; the live set is ``backends.backend_names()``
BACKENDS = ("array",) + _RELATIONAL_BACKENDS


@dataclass
class QueryResult:
    """Rows plus the measurements the experiments report."""

    rows: list[tuple]
    backend: str
    mode: str
    elapsed_s: float
    sim_io_s: float
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def cost_s(self) -> float:
        """CPU elapsed + simulated I/O: the harness's figure-of-merit."""
        return self.elapsed_s + self.sim_io_s

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _CubeState:
    schema: CubeSchema
    dim_tables: dict
    fact: object | None = None
    array: OLAPArray | None = None
    bitmap_attrs: set = field(default_factory=set)
    btree_dims: set = field(default_factory=set)
    has_mbtree: bool = False
    layout: str = "star"
    #: bumped on every write; result caches key their entries to it
    generation: int = 0
    #: set when appends outgrew the position-based indices (bitmap /
    #: btree / mbtree); those backends drop out of availability until a
    #: rebuild
    indices_stale: bool = False

    def available_backends(self) -> set[str]:
        return backend_registry.available_backends(self)


@dataclass
class _ViewState:
    """A materialized aggregate view and the definition that built it."""

    array: OLAPArray
    cube: str
    group_by: dict
    aggregate: str


class OlapEngine:
    """Loads cubes into both physical designs and runs consolidations."""

    def __init__(self, db: Database | None = None, **db_kwargs):
        self.db = db if db is not None else Database(**db_kwargs)
        self._cubes: dict[str, _CubeState] = {}
        self._views: dict[str, _ViewState] = {}
        self._write_listeners: list[Callable[[str], None]] = []
        self._explain_counters: Counters | None = None
        self._shard_coordinator = None

    # -- loading ------------------------------------------------------------------

    def load_cube(
        self,
        schema: CubeSchema,
        dimension_rows: dict[str, list[tuple]],
        fact_rows: list[tuple],
        chunk_shape: tuple[int, ...] | None = None,
        codec: str = "chunk-offset",
        backends: tuple[str, ...] = ("array", "relational"),
        bitmap_attrs: str | list[tuple[str, str]] = "all",
        fact_btrees: bool = False,
        fact_mbtree: bool = False,
        relational_layout: str = "star",
    ) -> _CubeState:
        """Load dimension and fact data into the requested designs.

        ``dimension_rows[dim]`` holds ``(key, level values...)`` tuples;
        ``fact_rows`` holds ``(keys..., measures...)`` tuples.  With
        ``backends=("array",)`` or ``("relational",)`` only one design
        is built (the storage experiments use this).
        ``relational_layout="snowflake"`` normalizes each dimension into
        a chain of level tables (§2.2's variant); every relational
        algorithm then joins through the chain transparently.
        """
        if relational_layout not in ("star", "snowflake"):
            raise QueryError(
                f"unknown relational layout {relational_layout!r}"
            )
        if schema.name in self._cubes:
            raise CatalogError(f"cube {schema.name!r} already loaded")
        for dim in schema.dimensions:
            if dim.name not in dimension_rows:
                raise QueryError(f"no rows supplied for dimension {dim.name!r}")
        unknown = set(backends) - {"array", "relational"}
        if unknown:
            raise QueryError(f"unknown backends {sorted(unknown)}")
        fact_rows = list(fact_rows)

        with self.db.locks.locked(schema.name, "X", "loader"):
            state = _CubeState(schema=schema, dim_tables={})
            state.layout = relational_layout
            for dim in schema.dimensions:
                if relational_layout == "snowflake":
                    from repro.olap.snowflake import build_snowflake_dimension

                    state.dim_tables[dim.name] = build_snowflake_dimension(
                        self.db, schema, dim.name, dimension_rows[dim.name]
                    )
                else:
                    table = self.db.create_heap_table(
                        dimension_table_name(schema, dim.name),
                        dimension_table_schema(dim),
                    )
                    table.insert_many(dimension_rows[dim.name])
                    state.dim_tables[dim.name] = table

            if "relational" in backends:
                self._build_relational(
                    state, fact_rows, bitmap_attrs, fact_btrees, fact_mbtree
                )
            if "array" in backends:
                self._build_array(
                    state, dimension_rows, fact_rows, chunk_shape, codec
                )
            self._cubes[schema.name] = state
            # The load is one transaction: under a WAL nothing above is
            # durable (or evictable, no-steal) until this commit.
            self.db.commit()
        return state

    def _build_relational(
        self, state, fact_rows, bitmap_attrs, fact_btrees, fact_mbtree=False
    ) -> None:
        schema = state.schema
        fact = self.db.create_fact_table(
            fact_table_name(schema), fact_table_schema(schema)
        )
        fact.append_many(fact_rows)
        state.fact = fact

        if bitmap_attrs == "all":
            wanted = [
                (d.name, level)
                for d in schema.dimensions
                for level in d.level_names
            ]
        else:
            wanted = list(bitmap_attrs)
        for dim_name, attr in wanted:
            dim = schema.dimension(dim_name)
            if attr not in dim.level_names:
                raise QueryError(
                    f"cannot build bitmap on {dim_name}.{attr}: not a level"
                )
            d = schema.dim_no(dim_name)
            attr_map = self._dimension_attr_map(state, dim_name, attr)
            values = (attr_map[row[d]] for row in fact_rows)
            self.db.create_bitmap_index(
                bitmap_index_name(schema, dim_name, attr), len(fact_rows), values
            )
            state.bitmap_attrs.add((dim_name, attr))

        if fact_btrees:
            for dim in schema.dimensions:
                self.db.create_btree_index(
                    btree_index_name(schema, dim.name),
                    fact_table_name(schema),
                    dim.key,
                )
                state.btree_dims.add(dim.name)

        if fact_mbtree:
            self.db.create_composite_btree_index(
                mbtree_index_name(schema),
                fact_table_name(schema),
                [d.key for d in schema.dimensions],
            )
            state.has_mbtree = True

    def _build_array(
        self, state, dimension_rows, fact_rows, chunk_shape, codec,
        name: str | None = None,
    ) -> None:
        schema = state.schema
        dim_data = []
        for dim in schema.dimensions:
            rows = dimension_rows[dim.name]
            keys = [r[0] for r in rows]
            attributes = {
                level: [r[i + 1] for r in rows]
                for i, level in enumerate(dim.level_names)
            }
            dim_data.append(DimensionData(dim.name, keys, attributes))
        if chunk_shape is None:
            chunk_shape = tuple(
                min(len(d.keys), 16) for d in dim_data
            )
        chunk_cache = state.array.chunk_cache if state.array is not None else None
        state.array = build_olap_array(
            self.db.fm,
            name if name is not None else array_name(schema),
            dim_data,
            fact_rows,
            chunk_shape,
            codec=codec,
            dtype=schema.measure_dtype,
            measure_names=[m.name for m in schema.measures],
        )
        state.array.chunk_cache = chunk_cache
        state.array.heatmap = self.db.heatmap
        self.db.metrics.register(
            f"array:{array_name(schema)}", state.array.counters, replace=True
        )

    def attach_cube(self, schema: CubeSchema) -> _CubeState:
        """Re-register a cube that already lives in this engine's database.

        Used after :meth:`Database.attach
        <repro.relational.catalog.Database.attach>`: the cube's tables,
        indices and array are discovered by their schema-derived names.
        """
        if schema.name in self._cubes:
            raise CatalogError(f"cube {schema.name!r} already loaded")
        state = _CubeState(schema=schema, dim_tables={})
        for dim in schema.dimensions:
            state.dim_tables[dim.name] = self.db.table(
                dimension_table_name(schema, dim.name)
            )
        fact_name = fact_table_name(schema)
        if fact_name in self.db.table_names():
            state.fact = self.db.table(fact_name)
        if self.db.fm.exists(f"{array_name(schema)}.dir"):
            state.array = OLAPArray.open(self.db.fm, array_name(schema))
            state.array.heatmap = self.db.heatmap
            self.db.metrics.register(
                f"array:{array_name(schema)}",
                state.array.counters,
                replace=True,
            )
        for dim in schema.dimensions:
            for attr in dim.level_names:
                try:
                    self.db.bitmap(bitmap_index_name(schema, dim.name, attr))
                except CatalogError:
                    continue
                state.bitmap_attrs.add((dim.name, attr))
            try:
                self.db.btree(btree_index_name(schema, dim.name))
            except CatalogError:
                continue
            state.btree_dims.add(dim.name)
        try:
            self.db.btree(mbtree_index_name(schema))
            state.has_mbtree = True
        except CatalogError:
            pass
        self._cubes[schema.name] = state
        return state

    # -- cube lookups ------------------------------------------------------------------

    def cube(self, name: str) -> _CubeState:
        """Loaded cube state by name."""
        try:
            return self._cubes[name]
        except KeyError:
            raise CatalogError(f"no cube named {name!r} loaded") from None

    def _dimension_attr_map(self, state, dim_name: str, attr: str) -> dict:
        """key → attribute value for one dimension (key itself allowed)."""
        dim = state.schema.dimension(dim_name)
        table = state.dim_tables[dim_name]
        key_pos = table.schema.index_of(dim.key)
        attr_pos = table.schema.index_of(attr)
        return {row[key_pos]: row[attr_pos] for row in table.scan()}

    def _selection_key_sets(self, state, query) -> dict[str, set]:
        """Per selected dimension, the keys passing all its predicates.

        Works uniformly for IN-lists and ranges: the predicate is
        evaluated against the dimension table's attribute values (the
        key attribute maps to itself).
        """
        out: dict[str, set] = {}
        for sel in query.selections:
            attr_map = self._dimension_attr_map(
                state, sel.dimension, sel.attribute
            )
            allowed = {k for k, v in attr_map.items() if sel.matches(v)}
            if sel.dimension in out:
                out[sel.dimension] &= allowed
            else:
                out[sel.dimension] = allowed
        return out

    def estimate_selectivity(self, query: ConsolidationQuery) -> float:
        """Estimated star-join selectivity S = Π per-dimension fractions."""
        state = self.cube(query.cube)
        selectivity = 1.0
        for dim_name, allowed in self._selection_key_sets(state, query).items():
            size = len(state.dim_tables[dim_name])
            selectivity *= len(allowed) / size if size else 0.0
        return selectivity

    # -- sharding -----------------------------------------------------------------------

    @property
    def shard_coordinator(self):
        """The lazily created scatter-gather coordinator (see
        :mod:`repro.shard`); one per engine, pools persist across
        queries."""
        if self._shard_coordinator is None:
            from repro.shard.coordinator import ShardCoordinator

            self._shard_coordinator = ShardCoordinator(self)
        return self._shard_coordinator

    def close_shards(self) -> None:
        """Shut down shard worker pools and scratch volume images."""
        if self._shard_coordinator is not None:
            self._shard_coordinator.close()
            self._shard_coordinator = None

    # -- query execution ------------------------------------------------------------------------

    def run(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        cold: bool = True,
        crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
        **legacy,
    ) -> QueryResult:
        """Execute a query under one :class:`ExecutionOptions` surface.

        Precedence: explicit ``options`` > options attached to the query
        (``ConsolidationQuery.options``) > defaults.  The removed
        per-keyword form (``backend=``, ``mode=``, ``executor=``,
        ``shards=``, ...) raises :class:`TypeError`.
        """
        if options is None and query.options is not None:
            options = query.options
        opts = coerce_options(options, legacy, "OlapEngine.run")
        return self.query(
            query,
            backend=opts.backend,
            mode=opts.mode,
            cold=cold,
            order=opts.order,
            crossover_selectivity=crossover_selectivity,
            shards=opts.shards,
            executor=opts.executor,
            allow_partial=opts.allow_partial,
            trace=opts.trace,
        )

    def query(
        self,
        query: ConsolidationQuery,
        backend: str = "auto",
        mode: str = "auto",
        cold: bool = True,
        order: str = "chunk",
        crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
        shards: int = 1,
        executor: str = "local",
        allow_partial: bool = False,
        trace: TraceContext | None = None,
    ) -> QueryResult:
        """Execute a consolidation query.

        With ``cold=True`` (the paper's methodology) the buffer pool is
        flushed and I/O statistics zeroed before the measured run.
        ``shards > 1`` scatters the array consolidation over chunk-range
        shards on the given ``executor`` (see :mod:`repro.shard`).
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        available = state.available_backends()
        planner_reason = "explicit"
        if backend == "auto":
            backend, planner_reason = choose_backend_explained(
                PlannerInputs(
                    has_array="array" in available,
                    has_bitmaps="bitmap" in available,
                    has_selections=bool(query.selections),
                    estimated_selectivity=(
                        self.estimate_selectivity(query)
                        if query.selections
                        else 1.0
                    ),
                    has_range_selections=any(
                        sel.is_range for sel in query.selections
                    ),
                ),
                crossover_selectivity,
            )
        impl = backend_registry.get_backend(backend)
        if not impl.available(state):
            raise PlanError(
                f"backend {backend!r} not available for cube "
                f"{query.cube!r}; built: {sorted(available)}"
            )

        if cold:
            if state.array is not None:
                state.array.invalidate_caches()
            self.db.cold_cache()
        else:
            self.db.reset_stats()
        counters = Counters()
        resolved = resolve_mode(mode, query.aggregate, backend)
        result_mode = resolved if backend == "array" else "interpreted"
        if trace is None:
            trace = current_trace_context()
        ctx = BackendContext(
            engine=self,
            state=state,
            counters=counters,
            mode=result_mode,
            order=order,
            shards=shards,
            executor=executor,
            allow_partial=allow_partial,
            trace=trace,
        )
        with self.db.metrics.scoped("query", counters):
            with get_tracer().span(
                "query",
                cube=query.cube,
                backend=backend,
                mode=result_mode,
                planner_reason=planner_reason,
                shards=shards,
                executor=executor,
                **({"trace_id": trace.trace_id} if trace is not None else {}),
            ):
                with self.db.locks.locked(
                    query.cube, "S", f"query-{id(query)}"
                ):
                    with Timer() as timer:
                        result = impl.execute(ctx, query)
            stats = self.db.metrics.merged_snapshot()
        self.db.metrics.observe("engine.query_seconds", timer.elapsed)
        self.db.metrics.observe(
            f"engine.backend.{backend}_seconds", timer.elapsed
        )
        result.elapsed_s = timer.elapsed
        result.sim_io_s = self.db.sim_io_seconds()
        result.stats = stats
        return result

    # -- EXPLAIN / EXPLAIN ANALYZE -------------------------------------------------

    def explain(
        self,
        query: ConsolidationQuery,
        options: ExecutionOptions | None = None,
        analyze: bool = False,
        cold: bool = True,
        crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
        **legacy,
    ):
        """Build a query plan; with ``analyze=True`` also run and measure.

        Takes the same ``(options, analyze)`` signature as every other
        explain surface (:meth:`ConsolidationQuery.explain
        <repro.olap.query.ConsolidationQuery.explain>`,
        :meth:`QueryService.explain
        <repro.serve.service.QueryService.explain>` and ``repro
        explain``); precedence mirrors :meth:`run` (explicit ``options``
        > options attached to the query > defaults).  Planner resolution
        (``backend="auto"``, availability checks) is
        exactly :meth:`query`'s.  The returned
        :class:`~repro.obs.explain.QueryPlan` carries per-node cost
        estimates; an ANALYZE run executes the query under a
        registry-bound tracer, attaches each node's actual counter
        deltas, overlays the array plan with the chunk-heatmap delta of
        the run, and feeds every node's misestimate factor into the
        ``engine.explain.misestimate_factor`` histogram.
        """
        # imported here: repro.serve imports this module (cycle guard),
        # matching the function-level import precedent in :meth:`sql`
        from repro.obs.explain import QueryPlan, attach_actuals
        from repro.obs.heatmap import heat_delta, hottest
        from repro.obs.tracer import Tracer, thread_tracing
        from repro.serve.fingerprint import query_fingerprint

        if options is None and query.options is not None:
            options = query.options
        opts = coerce_options(options, legacy, "OlapEngine.explain")
        backend = opts.backend
        state = self.cube(query.cube)
        query.validate(state.schema)
        available = state.available_backends()
        requested = backend
        planner_reason = "explicit"
        estimated_selectivity = (
            self.estimate_selectivity(query) if query.selections else 1.0
        )
        if backend == "auto":
            backend, planner_reason = choose_backend_explained(
                PlannerInputs(
                    has_array="array" in available,
                    has_bitmaps="bitmap" in available,
                    has_selections=bool(query.selections),
                    estimated_selectivity=estimated_selectivity,
                    has_range_selections=any(
                        sel.is_range for sel in query.selections
                    ),
                ),
                crossover_selectivity,
            )
        impl = backend_registry.get_backend(backend)
        if not impl.available(state):
            raise PlanError(
                f"backend {backend!r} not available for cube "
                f"{query.cube!r}; built: {sorted(available)}"
            )
        resolved = resolve_mode(opts.mode, query.aggregate, backend)
        ctx = BackendContext(
            engine=self,
            state=state,
            counters=Counters(),
            mode=resolved if backend == "array" else "interpreted",
            order=opts.order,
            shards=opts.shards,
            executor=opts.executor,
            allow_partial=opts.allow_partial,
        )
        plan = QueryPlan(
            cube=query.cube,
            backend=backend,
            mode=resolved if backend == "array" else "interpreted",
            order=opts.order,
            fingerprint=query_fingerprint(
                query,
                backend=requested,
                mode=opts.mode,
                order=opts.order,
                shards=opts.shards,
                executor=opts.executor,
            ),
            planner={
                "requested": requested,
                "reason": planner_reason,
                "estimated_selectivity": estimated_selectivity,
                "crossover_selectivity": crossover_selectivity,
                "available_backends": sorted(available),
            },
            root=impl.explain(ctx, query),
        )
        if not analyze:
            return plan

        heat_array = state.array if backend == "array" else None
        heat_before = (
            self.db.heatmap.snapshot(heat_array.name)
            if heat_array is not None
            else None
        )
        tracer = Tracer(registry=self.db.metrics)
        with thread_tracing(tracer):
            result = self.query(
                query,
                backend=backend,
                mode=opts.mode,
                cold=cold,
                order=opts.order,
                crossover_selectivity=crossover_selectivity,
                shards=opts.shards,
                executor=opts.executor,
                allow_partial=opts.allow_partial,
            )
        root_span = next(
            (root for root in tracer.roots if root.name == "query"), None
        )
        if root_span is not None:
            attach_actuals(plan.root, root_span)
        plan.analyzed = True
        plan.rows = len(result.rows)
        plan.elapsed_s = result.elapsed_s
        plan.sim_io_s = result.sim_io_s
        plan.totals = dict(result.stats)
        if heat_array is not None and heat_before is not None:
            delta = heat_delta(
                heat_before, self.db.heatmap.snapshot(heat_array.name)
            )
            delta["array"] = heat_array.name
            delta["n_chunks"] = heat_array.geometry.n_chunks
            delta["hottest"] = hottest(delta["accesses"])
            plan.heatmap = delta
        self._record_misestimates(plan)
        return plan

    def _record_misestimates(self, plan) -> None:
        """Feed an analyzed plan's estimate errors into ``/metrics``."""
        from repro.obs.explain import MISESTIMATE_FACTOR_THRESHOLD

        counters = self._explain_stats()
        counters.add("explain.analyzed")
        for node in plan.root.walk():
            worst = node.worst_misestimate()
            if worst is None:
                continue
            counters.add("explain.nodes_analyzed")
            self.db.metrics.observe(
                "engine.explain.misestimate_factor", worst
            )
            if worst > MISESTIMATE_FACTOR_THRESHOLD:
                counters.add("explain.misestimates")

    def _explain_stats(self) -> Counters:
        """The cumulative ``engine:explain`` counter bag (keep-reset,
        like the serving layer's counters, so cold runs don't zero it)."""
        if self._explain_counters is None:
            counters = Counters()
            self.db.metrics.register(
                "engine:explain",
                counters,
                reset=lambda: None,
                replace=True,
            )
            self._explain_counters = counters
        return self._explain_counters

    def chunk_heatmap(self, cube: str, top: int = 10) -> dict:
        """The cumulative chunk access heatmap of one cube's array.

        Returns a JSON-ready payload: per-chunk access and disk-read
        counters (bounded — see
        :class:`~repro.obs.heatmap.ChunkHeatmap`), totals, and the
        ``top`` hottest chunks.  Raises :class:`PlanError` when the
        cube has no array design.
        """
        from repro.obs.heatmap import hottest

        state = self.cube(cube)
        if state.array is None:
            raise PlanError(f"cube {cube!r} has no array design to heat-map")
        array = state.array
        snap = self.db.heatmap.snapshot(array.name)
        return {
            "cube": cube,
            "array": array.name,
            "n_chunks": array.geometry.n_chunks,
            "chunk_shape": list(array.geometry.chunk_shape),
            "tracked_chunks": max(
                len(snap["accesses"]), len(snap["disk_reads"])
            ),
            "accesses": snap["accesses"],
            "disk_reads": snap["disk_reads"],
            "overflow_accesses": snap["overflow_accesses"],
            "overflow_disk_reads": snap["overflow_disk_reads"],
            "total_accesses": (
                sum(snap["accesses"]) + snap["overflow_accesses"]
            ),
            "total_disk_reads": (
                sum(snap["disk_reads"]) + snap["overflow_disk_reads"]
            ),
            "hottest": hottest(snap["accesses"], top),
        }

    def materialize(
        self,
        query: ConsolidationQuery,
        view_name: str,
        mode: str = "auto",
    ) -> OLAPArray:
        """Compute an aggregate table and persist it as an OLAP array.

        §4.4 notes consolidations matter "e.g., when computing an
        aggregate table"; this runs the array consolidation with the
        result materialized ("the result of a consolidation operation
        ... is another instance of the OLAP Array ADT") and registers
        it so :meth:`view` can retrieve it for further roll-ups.
        Selections are not allowed in a materialized view definition.
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        if query.selections:
            raise QueryError("materialized views cannot carry selections")
        if state.array is None:
            raise PlanError("materialize needs the cube's array backend")
        if view_name in self._views:
            raise CatalogError(f"view {view_name!r} already exists")
        schema = state.schema
        grouped = dict(query.group_by)
        specs = []
        for dim in schema.dimensions:
            attr = grouped.get(dim.name)
            if attr is None:
                specs.append(ConsolidationSpec.drop())
            elif attr == dim.key:
                specs.append(ConsolidationSpec.key())
            else:
                specs.append(ConsolidationSpec.level(attr))
        result = consolidate(
            state.array,
            specs,
            aggregate=query.aggregate,
            mode=resolve_mode(mode, query.aggregate, "array"),
            materialize_as=view_name,
        )
        self._views[view_name] = _ViewState(
            array=result.result_array,
            cube=query.cube,
            group_by=dict(query.group_by),
            aggregate=query.aggregate,
        )
        result.result_array.heatmap = self.db.heatmap
        self.db.metrics.register(
            f"array:{view_name}", result.result_array.counters, replace=True
        )
        self.db.commit()
        return result.result_array

    def view(self, name: str) -> OLAPArray:
        """A previously materialized aggregate view's array."""
        try:
            return self._views[name].array
        except KeyError:
            raise CatalogError(f"no view named {name!r}") from None

    def view_names(self) -> list[str]:
        """All materialized view names, sorted."""
        return sorted(self._views)

    # -- aggregate navigation -----------------------------------------------------

    def _level_i2i(self, state, dim_name: str, attr: str) -> IndexToIndex:
        """Key-index → level-index mapping, derived from the dim table.

        Built in dimension-table scan order — the same order the loader
        assigned array indices and level numbering, so it aligns with
        any materialized view's dimension keys.
        """
        dim = state.schema.dimension(dim_name)
        table = state.dim_tables[dim_name]
        key_pos = table.schema.index_of(dim.key)
        if attr == dim.key:
            return IndexToIndex.identity([row[key_pos] for row in table.scan()])
        attr_pos = table.schema.index_of(attr)
        return IndexToIndex.build([row[attr_pos] for row in table.scan()])

    def _view_plan(self, view, query) -> list[ConsolidationSpec] | None:
        """Consolidation specs rolling ``view`` up to ``query``, if legal."""
        from repro.errors import DimensionError

        if query.selections or query.cube != view.cube:
            return None
        if query.aggregate != view.aggregate or query.aggregate not in (
            "sum", "count", "min", "max",
        ):
            return None
        wanted = dict(query.group_by)
        if not set(wanted) <= set(view.group_by):
            return None
        state = self.cube(query.cube)
        specs = []
        for dim in state.schema.dimensions:
            if dim.name not in view.group_by:
                continue  # the view already aggregated this dimension away
            view_attr = view.group_by[dim.name]
            query_attr = wanted.get(dim.name)
            if query_attr is None:
                specs.append(ConsolidationSpec.drop())
            elif query_attr == view_attr:
                specs.append(ConsolidationSpec.key())
            else:
                fine = self._level_i2i(state, dim.name, view_attr)
                coarse = self._level_i2i(state, dim.name, query_attr)
                try:
                    specs.append(
                        ConsolidationSpec.mapping(
                            IndexToIndex.factor(fine, coarse)
                        )
                    )
                except DimensionError:
                    return None  # query level is finer / unrelated
        return specs

    def query_from_views(self, query: ConsolidationQuery) -> QueryResult:
        """Answer a selection-free query from a materialized view.

        Classic aggregate navigation: pick any registered view whose
        grain refines the query\'s (every query level derivable from
        the view\'s level via the hierarchy), then consolidate the
        (small) view array instead of the base data.  ``count`` views
        re-roll with ``sum`` (counts add); ``avg``/``var`` views are
        never navigable (their results do not re-aggregate).
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        for name in sorted(self._views):
            view = self._views[name]
            specs = self._view_plan(view, query)
            if specs is None:
                continue
            reaggregate = (
                "sum" if query.aggregate in ("sum", "count") else query.aggregate
            )
            self.db.reset_stats()
            counters = Counters()
            with self.db.metrics.scoped("query", counters):
                with get_tracer().span(
                    "query_from_views", cube=query.cube, view=name
                ):
                    with Timer() as timer:
                        result = consolidate(
                            view.array,
                            specs,
                            aggregate=reaggregate,
                            mode="vectorized",
                            counters=counters,
                        )
                        rows = self._project_measures(
                            state,
                            query,
                            self._reorder_array_rows(state, query, result.rows),
                        )
                stats = self.db.metrics.merged_snapshot()
            return QueryResult(
                rows=rows,
                backend=f"view:{name}",
                mode="vectorized",
                elapsed_s=timer.elapsed,
                sim_io_s=self.db.sim_io_seconds(),
                stats=stats,
            )
        raise PlanError(
            "no materialized view can answer this query; views: "
            f"{self.view_names()}"
        )

    def sql(self, cube_name: str, statement: str, **query_kwargs) -> QueryResult:
        """Parse a SQL-subset statement against a loaded cube and run it."""
        from repro.olap.sql import parse_query

        query = parse_query(statement, self.cube(cube_name).schema)
        return self.query(query, **query_kwargs)

    # -- backend support helpers (shared with repro.olap.backends) ---------------------

    def _project_measures(self, state, query, rows) -> list[tuple]:
        """The ADT aggregates every measure; keep the asked-for columns."""
        all_measures = [m.name for m in state.schema.measures]
        wanted = self._query_measures(state, query)
        if wanted == all_measures:
            return rows
        n_groups = len(query.group_by)
        keep = [n_groups + all_measures.index(m) for m in wanted]
        return [row[:n_groups] + tuple(row[i] for i in keep) for row in rows]

    def _reorder_array_rows(self, state, query, rows) -> list[tuple]:
        """Array rows come in cube-dimension order; emit query order."""
        cube_order = [
            d.name
            for d in state.schema.dimensions
            if d.name in dict(query.group_by)
        ]
        query_order = list(query.group_dims)
        n_groups = len(cube_order)
        if cube_order == query_order:
            return rows
        permutation = [cube_order.index(d) for d in query_order]
        reordered = [
            tuple(row[p] for p in permutation) + row[n_groups:] for row in rows
        ]
        reordered.sort()
        return reordered

    def _group_specs(self, state, query) -> list[DimensionJoinSpec]:
        schema = state.schema
        specs = []
        for dim_name, attr in query.group_by:
            dim = schema.dimension(dim_name)
            specs.append(
                DimensionJoinSpec(
                    state.dim_tables[dim_name], dim.key, dim.key, attr
                )
            )
        return specs

    def _query_measures(self, state, query) -> list[str]:
        if query.measures is not None:
            return list(query.measures)
        return [m.name for m in state.schema.measures]

    # -- writes (the serving layer's mutation surface) -----------------------------------------

    def cube_generation(self, name: str) -> int:
        """Monotonic write counter for one cube.

        Every mutation through :meth:`write_cell`, :meth:`append_facts`
        or :meth:`rebuild_array` bumps it; result caches key entries to
        the generation they were computed at and treat a mismatch as a
        miss (generation-based invalidation).
        """
        return self.cube(name).generation

    def add_write_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(cube_name)`` after every write to any cube."""
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: Callable[[str], None]) -> None:
        """Detach a previously added write listener."""
        self._write_listeners.remove(listener)

    def _note_write(self, state: _CubeState) -> None:
        state.generation += 1
        # Transaction boundary: each engine-level write is one committed
        # unit, so crash recovery restores whole writes or none of them.
        self.db.commit()
        for listener in list(self._write_listeners):
            listener(state.schema.name)

    def write_cell(self, cube: str, keys: tuple, measures) -> None:
        """Insert or overwrite one cell in every built physical design.

        The array takes the copy-on-write chunk path
        (:meth:`OLAPArray.write_cell
        <repro.core.olap_array.OLAPArray.write_cell>`); the fact file
        updates the matching tuple in place, or appends when the cell is
        new.  Appends outgrow the position-based bitmap/B-tree indices,
        so a new cell marks them stale (overwrites keep them valid: they
        index keys and attributes, never measures).
        """
        state = self.cube(cube)
        keys = tuple(keys)
        measures = tuple(measures)
        ndim = len(state.schema.dimensions)
        if len(keys) != ndim:
            raise QueryError(f"expected {ndim} dimension keys, got {len(keys)}")
        if len(measures) != len(state.schema.measures):
            raise QueryError(
                f"expected {len(state.schema.measures)} measures, got "
                f"{len(measures)}"
            )
        with self.db.locks.locked(cube, "X", f"write-{id(keys)}"):
            appended = False
            if state.fact is not None:
                found = None
                for tuple_no, row in enumerate(state.fact.scan()):
                    if tuple(row[:ndim]) == keys:
                        found = tuple_no
                        break
                if found is None:
                    state.fact.append(keys + measures)
                    appended = True
                else:
                    state.fact.update(found, keys + measures)
            if state.array is not None:
                state.array.write_cell(keys, measures)
            if appended:
                state.indices_stale = True
            self._note_write(state)

    def append_facts(self, cube: str, rows) -> None:
        """Append fact tuples to every built physical design.

        Rows are ``(keys..., measures...)`` as in :meth:`load_cube`.
        A row whose cell already exists folds its measures additively
        into the array cell (the fact file keeps both tuples), so only
        ``sum`` stays design-agnostic over duplicated cells — append
        distinct cells when cross-backend parity matters.  Appends mark
        the position-based indices stale (see :meth:`write_cell`).
        """
        state = self.cube(cube)
        rows = [tuple(row) for row in rows]
        if not rows:
            return
        ndim = len(state.schema.dimensions)
        with self.db.locks.locked(cube, "X", f"append-{id(rows)}"):
            if state.fact is not None:
                state.fact.append_many(rows)
                state.indices_stale = True
            if state.array is not None:
                for row in rows:
                    keys, measures = row[:ndim], row[ndim:]
                    existing = state.array.get_cell(keys)
                    if existing is not None:
                        measures = tuple(
                            float(e) + m if state.array.dtype != "int64"
                            else int(e) + m
                            for e, m in zip(existing, measures)
                        )
                    state.array.write_cell(keys, measures)
            self._note_write(state)

    def rebuild_array(
        self,
        cube: str,
        chunk_shape: tuple[int, ...] | None = None,
        codec: str | None = None,
    ) -> OLAPArray:
        """Rebuild the cube's array design from the current fact file.

        Copy-on-write cell writes leave dead chunk objects behind; a
        rebuild reclaims the space into a fresh, generation-suffixed
        array and repoints the cube state (large-object names are
        immutable, so the rebuild cannot reuse the old name).  Counts as
        a write: the generation bumps and caches invalidate.
        """
        state = self.cube(cube)
        if state.fact is None:
            raise PlanError("rebuild_array needs the cube's fact file")
        old = state.array
        with self.db.locks.locked(cube, "X", f"rebuild-{cube}"):
            dimension_rows = {
                dim.name: [
                    tuple(row) for row in state.dim_tables[dim.name].scan()
                ]
                for dim in state.schema.dimensions
            }
            if state.layout == "snowflake":
                raise PlanError(
                    "rebuild_array is not supported for snowflake layouts"
                )
            fact_rows = list(state.fact.scan())
            if chunk_shape is None and old is not None:
                chunk_shape = old.geometry.chunk_shape
            if codec is None:
                codec = old.codec_name if old is not None else "chunk-offset"
            name = f"{array_name(state.schema)}.g{state.generation + 1}"
            self._build_array(
                state, dimension_rows, fact_rows, chunk_shape, codec,
                name=name,
            )
            # indices_stale is NOT cleared: the bitmap/B-tree indices
            # still cover only the originally loaded tuple positions
            self._note_write(state)
        return state.array

    # -- storage reporting ----------------------------------------------------------------------

    def storage_report(self, cube_name: str) -> dict[str, int]:
        """On-disk footprints of every structure built for a cube."""
        state = self.cube(cube_name)
        schema = state.schema
        report: dict[str, int] = {
            "dimension_tables": sum(
                t.size_bytes() for t in state.dim_tables.values()
            )
        }
        if state.fact is not None:
            report["fact_file"] = state.fact.size_bytes()
        if state.array is not None:
            report["array_total"] = state.array.storage_bytes()
            report["array_chunks"] = state.array.storage_bytes(
                include_indices=False
            )
        if state.bitmap_attrs:
            report["bitmap_indices"] = sum(
                self.db.bitmap(
                    bitmap_index_name(schema, d, a)
                ).footprint_bytes()
                for d, a in state.bitmap_attrs
            )
        if state.btree_dims:
            report["btree_indices"] = sum(
                self.db.btree(btree_index_name(schema, d)).size_bytes()
                for d in state.btree_dims
            )
        return report
