"""The unified OLAP engine: one cube, two physical designs, seven backends.

:class:`OlapEngine` loads a :class:`~repro.olap.model.CubeSchema` into

- the relational star schema: dimension heap tables + the §4.4 fact
  file, with join bitmap indices and (optionally) fact B-trees, and
- the OLAP Array ADT of §3,

then executes :class:`~repro.olap.query.ConsolidationQuery` objects
through any backend:

========== ==========================================================
``array``     §4.1 consolidation / §4.2 consolidation with selection
``starjoin``  §4.3 Starjoin operator (selections via key filters)
``bitmap``    §4.5 bitmap AND + fact-file fetch
``btree``     standard B-tree selection baseline (§4.4's also-ran)
``mbtree``    skipping multi-attribute B-tree reconstruction (§4.4)
``leftdeep``  pipelined left-deep hash-join plan (§1's "traditional")
``auto``      the §5.6-derived planner rule
========== ==========================================================

Every backend returns the identical sorted row multiset, so any two can
be cross-checked — the integration tests' main oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import DimensionData, build_olap_array
from repro.core.consolidate import ConsolidationSpec, consolidate
from repro.core.index_to_index import IndexToIndex
from repro.core.olap_array import OLAPArray
from repro.core.select_consolidate import Selection, consolidate_with_selection
from repro.errors import CatalogError, PlanError, QueryError
from repro.obs.tracer import get_tracer
from repro.olap.model import CubeSchema
from repro.olap.planner import (
    DEFAULT_CROSSOVER_SELECTIVITY,
    PlannerInputs,
    choose_backend,
)
from repro.olap.query import ConsolidationQuery
from repro.olap.star_schema import (
    array_name,
    bitmap_index_name,
    btree_index_name,
    dimension_table_name,
    dimension_table_schema,
    fact_table_name,
    fact_table_schema,
    mbtree_index_name,
)
from repro.relational.bitmap_select import bitmap_select_consolidate
from repro.relational.btree_select import btree_select_consolidate
from repro.relational.mbtree_select import mbtree_select_consolidate
from repro.relational.catalog import Database
from repro.relational.operators import Filter, SeqScan, left_deep_consolidation
from repro.relational.star_join import DimensionJoinSpec, star_join_consolidate
from repro.util.stats import Counters, Timer

_RELATIONAL_BACKENDS = ("starjoin", "bitmap", "btree", "mbtree", "leftdeep")
BACKENDS = ("array",) + _RELATIONAL_BACKENDS


@dataclass
class QueryResult:
    """Rows plus the measurements the experiments report."""

    rows: list[tuple]
    backend: str
    mode: str
    elapsed_s: float
    sim_io_s: float
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def cost_s(self) -> float:
        """CPU elapsed + simulated I/O: the harness's figure-of-merit."""
        return self.elapsed_s + self.sim_io_s

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class _CubeState:
    schema: CubeSchema
    dim_tables: dict
    fact: object | None = None
    array: OLAPArray | None = None
    bitmap_attrs: set = field(default_factory=set)
    btree_dims: set = field(default_factory=set)
    has_mbtree: bool = False
    layout: str = "star"

    def available_backends(self) -> set[str]:
        out = set()
        if self.array is not None:
            out.add("array")
        if self.fact is not None:
            out.update(("starjoin", "leftdeep"))
            if self.bitmap_attrs:
                out.add("bitmap")
            if self.btree_dims:
                out.add("btree")
            if self.has_mbtree:
                out.add("mbtree")
        return out


@dataclass
class _ViewState:
    """A materialized aggregate view and the definition that built it."""

    array: OLAPArray
    cube: str
    group_by: dict
    aggregate: str


class OlapEngine:
    """Loads cubes into both physical designs and runs consolidations."""

    def __init__(self, db: Database | None = None, **db_kwargs):
        self.db = db if db is not None else Database(**db_kwargs)
        self._cubes: dict[str, _CubeState] = {}
        self._views: dict[str, _ViewState] = {}

    # -- loading ------------------------------------------------------------------

    def load_cube(
        self,
        schema: CubeSchema,
        dimension_rows: dict[str, list[tuple]],
        fact_rows: list[tuple],
        chunk_shape: tuple[int, ...] | None = None,
        codec: str = "chunk-offset",
        backends: tuple[str, ...] = ("array", "relational"),
        bitmap_attrs: str | list[tuple[str, str]] = "all",
        fact_btrees: bool = False,
        fact_mbtree: bool = False,
        relational_layout: str = "star",
    ) -> _CubeState:
        """Load dimension and fact data into the requested designs.

        ``dimension_rows[dim]`` holds ``(key, level values...)`` tuples;
        ``fact_rows`` holds ``(keys..., measures...)`` tuples.  With
        ``backends=("array",)`` or ``("relational",)`` only one design
        is built (the storage experiments use this).
        ``relational_layout="snowflake"`` normalizes each dimension into
        a chain of level tables (§2.2's variant); every relational
        algorithm then joins through the chain transparently.
        """
        if relational_layout not in ("star", "snowflake"):
            raise QueryError(
                f"unknown relational layout {relational_layout!r}"
            )
        if schema.name in self._cubes:
            raise CatalogError(f"cube {schema.name!r} already loaded")
        for dim in schema.dimensions:
            if dim.name not in dimension_rows:
                raise QueryError(f"no rows supplied for dimension {dim.name!r}")
        unknown = set(backends) - {"array", "relational"}
        if unknown:
            raise QueryError(f"unknown backends {sorted(unknown)}")
        fact_rows = list(fact_rows)

        with self.db.locks.locked(schema.name, "X", "loader"):
            state = _CubeState(schema=schema, dim_tables={})
            state.layout = relational_layout
            for dim in schema.dimensions:
                if relational_layout == "snowflake":
                    from repro.olap.snowflake import build_snowflake_dimension

                    state.dim_tables[dim.name] = build_snowflake_dimension(
                        self.db, schema, dim.name, dimension_rows[dim.name]
                    )
                else:
                    table = self.db.create_heap_table(
                        dimension_table_name(schema, dim.name),
                        dimension_table_schema(dim),
                    )
                    table.insert_many(dimension_rows[dim.name])
                    state.dim_tables[dim.name] = table

            if "relational" in backends:
                self._build_relational(
                    state, fact_rows, bitmap_attrs, fact_btrees, fact_mbtree
                )
            if "array" in backends:
                self._build_array(
                    state, dimension_rows, fact_rows, chunk_shape, codec
                )
            self._cubes[schema.name] = state
        return state

    def _build_relational(
        self, state, fact_rows, bitmap_attrs, fact_btrees, fact_mbtree=False
    ) -> None:
        schema = state.schema
        fact = self.db.create_fact_table(
            fact_table_name(schema), fact_table_schema(schema)
        )
        fact.append_many(fact_rows)
        state.fact = fact

        if bitmap_attrs == "all":
            wanted = [
                (d.name, level)
                for d in schema.dimensions
                for level in d.level_names
            ]
        else:
            wanted = list(bitmap_attrs)
        for dim_name, attr in wanted:
            dim = schema.dimension(dim_name)
            if attr not in dim.level_names:
                raise QueryError(
                    f"cannot build bitmap on {dim_name}.{attr}: not a level"
                )
            d = schema.dim_no(dim_name)
            attr_map = self._dimension_attr_map(state, dim_name, attr)
            values = (attr_map[row[d]] for row in fact_rows)
            self.db.create_bitmap_index(
                bitmap_index_name(schema, dim_name, attr), len(fact_rows), values
            )
            state.bitmap_attrs.add((dim_name, attr))

        if fact_btrees:
            for dim in schema.dimensions:
                self.db.create_btree_index(
                    btree_index_name(schema, dim.name),
                    fact_table_name(schema),
                    dim.key,
                )
                state.btree_dims.add(dim.name)

        if fact_mbtree:
            self.db.create_composite_btree_index(
                mbtree_index_name(schema),
                fact_table_name(schema),
                [d.key for d in schema.dimensions],
            )
            state.has_mbtree = True

    def _build_array(
        self, state, dimension_rows, fact_rows, chunk_shape, codec
    ) -> None:
        schema = state.schema
        dim_data = []
        for dim in schema.dimensions:
            rows = dimension_rows[dim.name]
            keys = [r[0] for r in rows]
            attributes = {
                level: [r[i + 1] for r in rows]
                for i, level in enumerate(dim.level_names)
            }
            dim_data.append(DimensionData(dim.name, keys, attributes))
        if chunk_shape is None:
            chunk_shape = tuple(
                min(len(d.keys), 16) for d in dim_data
            )
        state.array = build_olap_array(
            self.db.fm,
            array_name(schema),
            dim_data,
            fact_rows,
            chunk_shape,
            codec=codec,
            dtype=schema.measure_dtype,
            measure_names=[m.name for m in schema.measures],
        )
        self.db.metrics.register(
            f"array:{array_name(schema)}", state.array.counters, replace=True
        )

    def attach_cube(self, schema: CubeSchema) -> _CubeState:
        """Re-register a cube that already lives in this engine's database.

        Used after :meth:`Database.attach
        <repro.relational.catalog.Database.attach>`: the cube's tables,
        indices and array are discovered by their schema-derived names.
        """
        if schema.name in self._cubes:
            raise CatalogError(f"cube {schema.name!r} already loaded")
        state = _CubeState(schema=schema, dim_tables={})
        for dim in schema.dimensions:
            state.dim_tables[dim.name] = self.db.table(
                dimension_table_name(schema, dim.name)
            )
        fact_name = fact_table_name(schema)
        if fact_name in self.db.table_names():
            state.fact = self.db.table(fact_name)
        if self.db.fm.exists(f"{array_name(schema)}.dir"):
            state.array = OLAPArray.open(self.db.fm, array_name(schema))
            self.db.metrics.register(
                f"array:{array_name(schema)}",
                state.array.counters,
                replace=True,
            )
        for dim in schema.dimensions:
            for attr in dim.level_names:
                try:
                    self.db.bitmap(bitmap_index_name(schema, dim.name, attr))
                except CatalogError:
                    continue
                state.bitmap_attrs.add((dim.name, attr))
            try:
                self.db.btree(btree_index_name(schema, dim.name))
            except CatalogError:
                continue
            state.btree_dims.add(dim.name)
        try:
            self.db.btree(mbtree_index_name(schema))
            state.has_mbtree = True
        except CatalogError:
            pass
        self._cubes[schema.name] = state
        return state

    # -- cube lookups ------------------------------------------------------------------

    def cube(self, name: str) -> _CubeState:
        """Loaded cube state by name."""
        try:
            return self._cubes[name]
        except KeyError:
            raise CatalogError(f"no cube named {name!r} loaded") from None

    def _dimension_attr_map(self, state, dim_name: str, attr: str) -> dict:
        """key → attribute value for one dimension (key itself allowed)."""
        dim = state.schema.dimension(dim_name)
        table = state.dim_tables[dim_name]
        key_pos = table.schema.index_of(dim.key)
        attr_pos = table.schema.index_of(attr)
        return {row[key_pos]: row[attr_pos] for row in table.scan()}

    def _selection_key_sets(self, state, query) -> dict[str, set]:
        """Per selected dimension, the keys passing all its predicates.

        Works uniformly for IN-lists and ranges: the predicate is
        evaluated against the dimension table's attribute values (the
        key attribute maps to itself).
        """
        out: dict[str, set] = {}
        for sel in query.selections:
            attr_map = self._dimension_attr_map(
                state, sel.dimension, sel.attribute
            )
            allowed = {k for k, v in attr_map.items() if sel.matches(v)}
            if sel.dimension in out:
                out[sel.dimension] &= allowed
            else:
                out[sel.dimension] = allowed
        return out

    def estimate_selectivity(self, query: ConsolidationQuery) -> float:
        """Estimated star-join selectivity S = Π per-dimension fractions."""
        state = self.cube(query.cube)
        selectivity = 1.0
        for dim_name, allowed in self._selection_key_sets(state, query).items():
            size = len(state.dim_tables[dim_name])
            selectivity *= len(allowed) / size if size else 0.0
        return selectivity

    # -- query execution ------------------------------------------------------------------------

    def query(
        self,
        query: ConsolidationQuery,
        backend: str = "auto",
        mode: str = "interpreted",
        cold: bool = True,
        order: str = "chunk",
        crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
    ) -> QueryResult:
        """Execute a consolidation query.

        With ``cold=True`` (the paper's methodology) the buffer pool is
        flushed and I/O statistics zeroed before the measured run.
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        available = state.available_backends()
        if backend == "auto":
            backend = choose_backend(
                PlannerInputs(
                    has_array="array" in available,
                    has_bitmaps="bitmap" in available,
                    has_selections=bool(query.selections),
                    estimated_selectivity=(
                        self.estimate_selectivity(query)
                        if query.selections
                        else 1.0
                    ),
                ),
                crossover_selectivity,
            )
        if backend not in BACKENDS:
            raise PlanError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if backend not in available:
            raise PlanError(
                f"backend {backend!r} not available for cube "
                f"{query.cube!r}; built: {sorted(available)}"
            )

        if cold:
            if state.array is not None:
                state.array.invalidate_caches()
            self.db.cold_cache()
        else:
            self.db.reset_stats()
        counters = Counters()
        result_mode = mode if backend == "array" else "interpreted"
        with self.db.metrics.scoped("query", counters):
            with get_tracer().span(
                "query", cube=query.cube, backend=backend, mode=result_mode
            ):
                with self.db.locks.locked(
                    query.cube, "S", f"query-{id(query)}"
                ):
                    with Timer() as timer:
                        if backend == "array":
                            rows = self._run_array(
                                state, query, mode, order, counters
                            )
                        elif backend == "starjoin":
                            rows = self._run_starjoin(state, query, counters)
                        elif backend == "bitmap":
                            rows = self._run_bitmap(state, query, counters)
                        elif backend == "btree":
                            rows = self._run_btree(state, query, counters)
                        elif backend == "mbtree":
                            rows = self._run_mbtree(state, query, counters)
                        else:
                            rows = self._run_leftdeep(state, query, counters)
            stats = self.db.metrics.merged_snapshot()
        return QueryResult(
            rows=rows,
            backend=backend,
            mode=result_mode,
            elapsed_s=timer.elapsed,
            sim_io_s=self.db.sim_io_seconds(),
            stats=stats,
        )

    def materialize(
        self,
        query: ConsolidationQuery,
        view_name: str,
        mode: str = "vectorized",
    ) -> OLAPArray:
        """Compute an aggregate table and persist it as an OLAP array.

        §4.4 notes consolidations matter "e.g., when computing an
        aggregate table"; this runs the array consolidation with the
        result materialized ("the result of a consolidation operation
        ... is another instance of the OLAP Array ADT") and registers
        it so :meth:`view` can retrieve it for further roll-ups.
        Selections are not allowed in a materialized view definition.
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        if query.selections:
            raise QueryError("materialized views cannot carry selections")
        if state.array is None:
            raise PlanError("materialize needs the cube's array backend")
        if view_name in self._views:
            raise CatalogError(f"view {view_name!r} already exists")
        schema = state.schema
        grouped = dict(query.group_by)
        specs = []
        for dim in schema.dimensions:
            attr = grouped.get(dim.name)
            if attr is None:
                specs.append(ConsolidationSpec.drop())
            elif attr == dim.key:
                specs.append(ConsolidationSpec.key())
            else:
                specs.append(ConsolidationSpec.level(attr))
        result = consolidate(
            state.array,
            specs,
            aggregate=query.aggregate,
            mode=mode,
            materialize_as=view_name,
        )
        self._views[view_name] = _ViewState(
            array=result.result_array,
            cube=query.cube,
            group_by=dict(query.group_by),
            aggregate=query.aggregate,
        )
        self.db.metrics.register(
            f"array:{view_name}", result.result_array.counters, replace=True
        )
        return result.result_array

    def view(self, name: str) -> OLAPArray:
        """A previously materialized aggregate view's array."""
        try:
            return self._views[name].array
        except KeyError:
            raise CatalogError(f"no view named {name!r}") from None

    def view_names(self) -> list[str]:
        """All materialized view names, sorted."""
        return sorted(self._views)

    # -- aggregate navigation -----------------------------------------------------

    def _level_i2i(self, state, dim_name: str, attr: str) -> IndexToIndex:
        """Key-index → level-index mapping, derived from the dim table.

        Built in dimension-table scan order — the same order the loader
        assigned array indices and level numbering, so it aligns with
        any materialized view's dimension keys.
        """
        dim = state.schema.dimension(dim_name)
        table = state.dim_tables[dim_name]
        key_pos = table.schema.index_of(dim.key)
        if attr == dim.key:
            return IndexToIndex.identity([row[key_pos] for row in table.scan()])
        attr_pos = table.schema.index_of(attr)
        return IndexToIndex.build([row[attr_pos] for row in table.scan()])

    def _view_plan(self, view, query) -> list[ConsolidationSpec] | None:
        """Consolidation specs rolling ``view`` up to ``query``, if legal."""
        from repro.errors import DimensionError

        if query.selections or query.cube != view.cube:
            return None
        if query.aggregate != view.aggregate or query.aggregate not in (
            "sum", "count", "min", "max",
        ):
            return None
        wanted = dict(query.group_by)
        if not set(wanted) <= set(view.group_by):
            return None
        state = self.cube(query.cube)
        specs = []
        for dim in state.schema.dimensions:
            if dim.name not in view.group_by:
                continue  # the view already aggregated this dimension away
            view_attr = view.group_by[dim.name]
            query_attr = wanted.get(dim.name)
            if query_attr is None:
                specs.append(ConsolidationSpec.drop())
            elif query_attr == view_attr:
                specs.append(ConsolidationSpec.key())
            else:
                fine = self._level_i2i(state, dim.name, view_attr)
                coarse = self._level_i2i(state, dim.name, query_attr)
                try:
                    specs.append(
                        ConsolidationSpec.mapping(
                            IndexToIndex.factor(fine, coarse)
                        )
                    )
                except DimensionError:
                    return None  # query level is finer / unrelated
        return specs

    def query_from_views(self, query: ConsolidationQuery) -> QueryResult:
        """Answer a selection-free query from a materialized view.

        Classic aggregate navigation: pick any registered view whose
        grain refines the query\'s (every query level derivable from
        the view\'s level via the hierarchy), then consolidate the
        (small) view array instead of the base data.  ``count`` views
        re-roll with ``sum`` (counts add); ``avg``/``var`` views are
        never navigable (their results do not re-aggregate).
        """
        state = self.cube(query.cube)
        query.validate(state.schema)
        for name in sorted(self._views):
            view = self._views[name]
            specs = self._view_plan(view, query)
            if specs is None:
                continue
            reaggregate = (
                "sum" if query.aggregate in ("sum", "count") else query.aggregate
            )
            self.db.reset_stats()
            counters = Counters()
            with self.db.metrics.scoped("query", counters):
                with get_tracer().span(
                    "query_from_views", cube=query.cube, view=name
                ):
                    with Timer() as timer:
                        result = consolidate(
                            view.array,
                            specs,
                            aggregate=reaggregate,
                            mode="vectorized",
                            counters=counters,
                        )
                        rows = self._project_measures(
                            state,
                            query,
                            self._reorder_array_rows(state, query, result.rows),
                        )
                stats = self.db.metrics.merged_snapshot()
            return QueryResult(
                rows=rows,
                backend=f"view:{name}",
                mode="vectorized",
                elapsed_s=timer.elapsed,
                sim_io_s=self.db.sim_io_seconds(),
                stats=stats,
            )
        raise PlanError(
            "no materialized view can answer this query; views: "
            f"{self.view_names()}"
        )

    def sql(self, cube_name: str, statement: str, **query_kwargs) -> QueryResult:
        """Parse a SQL-subset statement against a loaded cube and run it."""
        from repro.olap.sql import parse_query

        query = parse_query(statement, self.cube(cube_name).schema)
        return self.query(query, **query_kwargs)

    # -- backend implementations ---------------------------------------------------------

    def _run_array(self, state, query, mode, order, counters) -> list[tuple]:
        schema = state.schema
        array = state.array
        grouped = dict(query.group_by)
        specs = []
        for dim in schema.dimensions:
            attr = grouped.get(dim.name)
            if attr is None:
                specs.append(ConsolidationSpec.drop())
            elif attr == dim.key:
                specs.append(ConsolidationSpec.key())
            else:
                specs.append(ConsolidationSpec.level(attr))
        selections = [
            Selection(
                sel.dimension,
                None
                if sel.attribute == schema.dimension(sel.dimension).key
                else sel.attribute,
                tuple(sel.values) if sel.values is not None else None,
                low=sel.low,
                high=sel.high,
            )
            for sel in query.selections
        ]
        if selections:
            result = consolidate_with_selection(
                array,
                specs,
                selections,
                aggregate=query.aggregate,
                mode=mode,
                order=order,
                counters=counters,
            )
        else:
            result = consolidate(
                array, specs, aggregate=query.aggregate, mode=mode,
                counters=counters,
            )
        rows = self._project_measures(state, query, result.rows)
        return self._reorder_array_rows(state, query, rows)

    def _project_measures(self, state, query, rows) -> list[tuple]:
        """The ADT aggregates every measure; keep the asked-for columns."""
        all_measures = [m.name for m in state.schema.measures]
        wanted = self._query_measures(state, query)
        if wanted == all_measures:
            return rows
        n_groups = len(query.group_by)
        keep = [n_groups + all_measures.index(m) for m in wanted]
        return [row[:n_groups] + tuple(row[i] for i in keep) for row in rows]

    def _reorder_array_rows(self, state, query, rows) -> list[tuple]:
        """Array rows come in cube-dimension order; emit query order."""
        cube_order = [
            d.name
            for d in state.schema.dimensions
            if d.name in dict(query.group_by)
        ]
        query_order = list(query.group_dims)
        n_groups = len(cube_order)
        if cube_order == query_order:
            return rows
        permutation = [cube_order.index(d) for d in query_order]
        reordered = [
            tuple(row[p] for p in permutation) + row[n_groups:] for row in rows
        ]
        reordered.sort()
        return reordered

    def _group_specs(self, state, query) -> list[DimensionJoinSpec]:
        schema = state.schema
        specs = []
        for dim_name, attr in query.group_by:
            dim = schema.dimension(dim_name)
            specs.append(
                DimensionJoinSpec(
                    state.dim_tables[dim_name], dim.key, dim.key, attr
                )
            )
        return specs

    def _query_measures(self, state, query) -> list[str]:
        if query.measures is not None:
            return list(query.measures)
        return [m.name for m in state.schema.measures]

    def _run_starjoin(self, state, query, counters) -> list[tuple]:
        key_sets = self._selection_key_sets(state, query)
        key_filters = {
            state.schema.dimension(d).key: allowed
            for d, allowed in key_sets.items()
        }
        return star_join_consolidate(
            state.fact,
            self._group_specs(state, query),
            self._query_measures(state, query),
            aggregate=query.aggregate,
            counters=counters,
            key_filters=key_filters or None,
        )

    def _run_bitmap(self, state, query, counters) -> list[tuple]:
        schema = state.schema
        selections = []
        for sel in query.selections:
            if (sel.dimension, sel.attribute) not in state.bitmap_attrs:
                raise PlanError(
                    f"no bitmap index on {sel.dimension}.{sel.attribute}; "
                    "load with bitmap_attrs covering it"
                )
            index = self.db.bitmap(
                bitmap_index_name(schema, sel.dimension, sel.attribute)
            )
            if sel.is_range:
                # one B-tree range scan over the bitmap value directory,
                # OR-ing the qualifying values' bitmaps
                selections.append(
                    (index, index.bitmap_for_range(sel.low, sel.high))
                )
            else:
                selections.append((index, list(sel.values)))
        return bitmap_select_consolidate(
            state.fact,
            self._group_specs(state, query),
            selections,
            self._query_measures(state, query),
            aggregate=query.aggregate,
            counters=counters,
        )

    def _run_btree(self, state, query, counters) -> list[tuple]:
        if not query.selections:
            raise PlanError("the btree backend needs at least one selection")
        schema = state.schema
        key_sets = self._selection_key_sets(state, query)
        selections = []
        for dim_name, allowed in key_sets.items():
            if dim_name not in state.btree_dims:
                raise PlanError(
                    f"no fact B-tree on dimension {dim_name!r}; load with "
                    "fact_btrees=True"
                )
            tree = self.db.btree(btree_index_name(schema, dim_name))
            selections.append((tree, sorted(allowed)))
        return btree_select_consolidate(
            state.fact,
            self._group_specs(state, query),
            selections,
            self._query_measures(state, query),
            aggregate=query.aggregate,
            counters=counters,
        )

    def _run_mbtree(self, state, query, counters) -> list[tuple]:
        if not query.selections:
            raise PlanError("the mbtree backend needs at least one selection")
        schema = state.schema
        key_sets = self._selection_key_sets(state, query)
        allowed = []
        for dim in schema.dimensions:
            if dim.name in key_sets:
                allowed.append(sorted(key_sets[dim.name]))
            else:
                table = state.dim_tables[dim.name]
                key_pos = table.schema.index_of(dim.key)
                allowed.append(sorted(row[key_pos] for row in table.scan()))
        tree = self.db.btree(mbtree_index_name(schema))
        return mbtree_select_consolidate(
            state.fact,
            self._group_specs(state, query),
            tree,
            allowed,
            self._query_measures(state, query),
            aggregate=query.aggregate,
            counters=counters,
        )

    def _run_leftdeep(self, state, query, counters) -> list[tuple]:
        schema = state.schema
        grouped = dict(query.group_by)
        key_sets = self._selection_key_sets(state, query)
        joined = [
            d.name
            for d in schema.dimensions
            if d.name in grouped or d.name in key_sets
        ]
        fact_scan = SeqScan(state.fact, alias="f")
        dim_scans = []
        for dim_name in joined:
            dim = schema.dimension(dim_name)
            scan = SeqScan(state.dim_tables[dim_name], alias=dim_name)
            if dim_name in key_sets:
                allowed = key_sets[dim_name]
                key_col = f"{dim_name}.{dim.key}"
                position = scan.names.index(key_col)
                scan = Filter(
                    scan,
                    predicate=lambda row, p=position, a=frozenset(allowed): row[p] in a,
                )
            dim_scans.append((scan, f"{dim_name}.{dim.key}", f"f.{dim.key}"))
        plan = left_deep_consolidation(
            fact_scan,
            dim_scans,
            [f"{d}.{grouped[d]}" for d in query.group_dims],
            [f"f.{m}" for m in self._query_measures(state, query)],
            aggregate=query.aggregate,
        )
        counters.add("leftdeep_joins", len(dim_scans))
        return list(plan)

    # -- storage reporting ----------------------------------------------------------------------

    def storage_report(self, cube_name: str) -> dict[str, int]:
        """On-disk footprints of every structure built for a cube."""
        state = self.cube(cube_name)
        schema = state.schema
        report: dict[str, int] = {
            "dimension_tables": sum(
                t.size_bytes() for t in state.dim_tables.values()
            )
        }
        if state.fact is not None:
            report["fact_file"] = state.fact.size_bytes()
        if state.array is not None:
            report["array_total"] = state.array.storage_bytes()
            report["array_chunks"] = state.array.storage_bytes(
                include_indices=False
            )
        if state.bitmap_attrs:
            report["bitmap_indices"] = sum(
                self.db.bitmap(
                    bitmap_index_name(schema, d, a)
                ).footprint_bytes()
                for d, a in state.bitmap_attrs
            )
        if state.btree_dims:
            report["btree_indices"] = sum(
                self.db.btree(btree_index_name(schema, d)).size_bytes()
                for d in state.btree_dims
            )
        return report
