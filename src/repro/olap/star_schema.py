"""§2.2: mapping the OLAP data model onto a relational star schema.

Each dimension ``D_i(A_i1 ... A_ik)`` becomes a dimension table with the
same attributes; the hypercube becomes the fact table
``F_C(A_11, ..., A_n1, m_1, ..., m_p)`` — the dimension keys as foreign
keys plus the measures.
"""

from __future__ import annotations

from repro.olap.model import CubeSchema, DimensionDef
from repro.relational.schema import Column, Schema


def dimension_table_schema(dimension: DimensionDef) -> Schema:
    """Relational schema of one dimension table."""
    columns = [Column(dimension.key, dimension.key_type)]
    columns += [Column(name, ctype) for name, ctype in dimension.levels]
    return Schema(columns)


def fact_table_schema(cube: CubeSchema) -> Schema:
    """Relational schema of the fact table: foreign keys + measures."""
    columns = [
        Column(d.key, d.key_type) for d in cube.dimensions
    ]
    columns += [Column(m.name, m.ctype) for m in cube.measures]
    return Schema(columns)


def fact_table_name(cube: CubeSchema) -> str:
    """Catalog name of the cube's fact table."""
    return f"{cube.name}.fact"


def dimension_table_name(cube: CubeSchema, dimension: str) -> str:
    """Catalog name of one dimension table."""
    cube.dimension(dimension)  # validates
    return f"{cube.name}.{dimension}"


def array_name(cube: CubeSchema) -> str:
    """Catalog name of the cube's OLAP array."""
    return f"{cube.name}.array"


def bitmap_index_name(cube: CubeSchema, dimension: str, attr: str) -> str:
    """Catalog name of the join bitmap index on one dimension attribute."""
    return f"{cube.name}.{dimension}.{attr}.bm"


def btree_index_name(cube: CubeSchema, dimension: str) -> str:
    """Catalog name of the fact B-tree index on one dimension's key."""
    return f"{cube.name}.fact.{dimension}.idx"


def mbtree_index_name(cube: CubeSchema) -> str:
    """Catalog name of the composite (multi-attribute) fact B-tree."""
    return f"{cube.name}.fact.mb.idx"
