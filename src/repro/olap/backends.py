"""The :class:`Backend` protocol and registry.

Historically :meth:`OlapEngine.query <repro.olap.engine.OlapEngine.query>`
dispatched to seven private ``_run_*`` methods through an ``if``/``elif``
chain, each with its own ad-hoc signature.  This module replaces that
with one uniform surface:

- :class:`Backend` — ``execute(ctx, query) -> QueryResult`` plus an
  ``available(state)`` capability check;
- :class:`BackendContext` — everything an execution needs (the engine,
  the loaded cube state, the query's counter bag, mode/order knobs);
- a process-wide **registry** (:func:`register_backend`,
  :func:`get_backend`) through which the engine resolves backend names.

``array``/``starjoin``/``bitmap``/``btree``/``mbtree``/``leftdeep`` are
registered implementations of the same protocol, so third-party
backends plug in without editing ``engine.py``::

    class MirrorBackend(Backend):
        name = "mirror"
        def execute(self, ctx, query):
            rows = ...
            return ctx.result(rows, self.name)

    register_backend(MirrorBackend())
    engine.query(query, backend="mirror")

``auto`` is not a backend: the engine resolves it through the
:mod:`~repro.olap.planner` rule before consulting the registry.
"""

from __future__ import annotations

import math
import time
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.consolidate import ConsolidationSpec, consolidate
from repro.core.meta import NO_CHUNK
from repro.obs.explain import PlanNode
from repro.obs.tracer import get_tracer
from repro.obs.tracing import TraceContext
from repro.core.select_consolidate import Selection, consolidate_with_selection
from repro.errors import PlanError
from repro.olap.star_schema import (
    bitmap_index_name,
    btree_index_name,
    mbtree_index_name,
)
from repro.relational.bitmap_select import bitmap_select_consolidate
from repro.relational.btree_select import btree_select_consolidate
from repro.relational.mbtree_select import mbtree_select_consolidate
from repro.relational.operators import Filter, SeqScan, left_deep_consolidation
from repro.relational.star_join import star_join_consolidate
from repro.util.stats import Counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from repro.olap.engine import OlapEngine, QueryResult, _CubeState
    from repro.olap.query import ConsolidationQuery


@dataclass
class BackendContext:
    """Everything one backend execution may need.

    ``engine`` exposes the shared helpers (dimension attribute maps,
    selection key sets, measure projection); ``state`` is the loaded
    cube's physical design; ``counters`` is the query's private counter
    bag (already registered with the metrics registry for the duration
    of the query).
    """

    engine: "OlapEngine"
    state: "_CubeState"
    counters: Counters
    mode: str = "interpreted"
    order: str = "chunk"
    #: chunk-range shards for the array consolidation (1 = single scan)
    shards: int = 1
    #: where shard scans run: ``local`` / ``thread`` / ``process``
    executor: str = "local"
    #: degrade to a partial result when shards stay lost after retries
    allow_partial: bool = False
    #: the request's distributed trace context, when one is active —
    #: the shard coordinator ships child contexts to its workers
    trace: "TraceContext | None" = None

    @contextmanager
    def phase(self, name: str, **attrs):
        """Time one consolidation phase.

        Opens a tracer span (so slow-query profiles carry the phase
        tree) and records the duration into the engine registry's
        ``engine.phase.<name>_seconds`` histogram — the per-phase
        latency series on ``/metrics``.
        """
        start = time.perf_counter()
        with get_tracer().span(name, **attrs) as span:
            yield span
        self.engine.db.metrics.observe(
            f"engine.phase.{name}_seconds", time.perf_counter() - start
        )

    def result(
        self, rows: list[tuple], backend: str, mode: str = "interpreted"
    ) -> "QueryResult":
        """Wrap rows into a :class:`QueryResult` shell.

        Timing, simulated I/O and the merged stats snapshot are stamped
        by the engine after ``execute`` returns — backends only produce
        the row multiset.
        """
        from repro.olap.engine import QueryResult

        return QueryResult(
            rows=rows, backend=backend, mode=mode, elapsed_s=0.0, sim_io_s=0.0
        )


class Backend(ABC):
    """One query-evaluation strategy: a name plus ``execute``.

    Subclasses override :meth:`available` when they need specific
    physical structures (an array, a fact file, index families).
    """

    #: registry key; also stamped on results
    name: str = ""

    def available(self, state: "_CubeState") -> bool:
        """Whether this cube's physical design can serve this backend."""
        return True

    @abstractmethod
    def execute(
        self, ctx: BackendContext, query: "ConsolidationQuery"
    ) -> "QueryResult":
        """Evaluate ``query`` and return the (sorted-row) result."""

    def explain(
        self, ctx: BackendContext, query: "ConsolidationQuery"
    ) -> PlanNode:
        """A structured plan tree for ``query``, estimates only.

        Each node names the tracer span whose counter deltas measure it
        (so ``EXPLAIN ANALYZE`` can attach actuals) and carries cost
        estimates in the units of the execution counters.  The default
        is one opaque node mapped to the engine's root span; built-ins
        override with per-phase trees.
        """
        return PlanNode(
            f"{self.name}.query",
            span="query",
            detail={"cube": query.cube, "backend": self.name},
        )


# -- estimate helpers --------------------------------------------------------


def _array_catalog_stats(array) -> dict[str, int]:
    """Non-empty chunk count, stored bytes and valid cells, from the
    chunk meta directory alone (no chunk payload is touched)."""
    non_empty = 0
    total_bytes = 0
    cells = 0
    for oid, length, count in array._entries():
        if oid != NO_CHUNK and count:
            non_empty += 1
            total_bytes += length
            cells += count
    return {
        "non_empty_chunks": non_empty,
        "chunk_bytes": total_bytes,
        "n_valid": cells,
    }


def _estimated_groups(ctx: BackendContext, query) -> int:
    """Upper bound on result groups: Π per-dimension distinct values."""
    engine, state = ctx.engine, ctx.state
    total = 1
    for dim_name, attr in query.group_by:
        dim = state.schema.dimension(dim_name)
        if attr == dim.key:
            total *= max(1, len(state.dim_tables[dim_name]))
        else:
            values = engine._dimension_attr_map(state, dim_name, attr).values()
            total *= max(1, len(set(values)))
    return total


def _estimated_btree_probes(query) -> int:
    """Probe count matching ``_final_index_lists``: ranges cost one
    probe, IN-lists one per value."""
    return sum(
        1 if sel.is_range else len(sel.values or ())
        for sel in query.selections
    )


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend, replace: bool = False) -> Backend:
    """Register a backend under its ``name``.

    Third-party backends use this to become addressable from
    ``OlapEngine.query(..., backend=<name>)`` without touching
    ``engine.py``.
    """
    if not backend.name:
        raise PlanError("a backend needs a non-empty name")
    if backend.name == "auto":
        raise PlanError('"auto" is reserved for the planner')
    if backend.name in _REGISTRY and not replace:
        raise PlanError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (tests / plugin teardown)."""
    if name in _BUILTIN_NAMES:
        raise PlanError(f"cannot unregister built-in backend {name!r}")
    if name not in _REGISTRY:
        raise PlanError(f"no backend named {name!r} registered")
    del _REGISTRY[name]


def get_backend(name: str) -> Backend:
    """Resolve a backend name; raises :class:`PlanError` when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PlanError(
            f"unknown backend {name!r}; expected one of "
            f"{tuple(backend_names())}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, built-ins first."""
    builtins = [n for n in _BUILTIN_NAMES if n in _REGISTRY]
    extras = sorted(n for n in _REGISTRY if n not in _BUILTIN_NAMES)
    return tuple(builtins + extras)


def available_backends(state: "_CubeState") -> set[str]:
    """All registered backends whose ``available(state)`` holds."""
    return {
        name for name, backend in _REGISTRY.items() if backend.available(state)
    }


# -- built-in implementations ----------------------------------------------


class ArrayBackend(Backend):
    """§4.1 consolidation / §4.2 consolidation with selection."""

    name = "array"

    def available(self, state) -> bool:
        return state.array is not None

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        schema = state.schema
        array = state.array
        grouped = dict(query.group_by)
        specs = []
        for dim in schema.dimensions:
            attr = grouped.get(dim.name)
            if attr is None:
                specs.append(ConsolidationSpec.drop())
            elif attr == dim.key:
                specs.append(ConsolidationSpec.key())
            else:
                specs.append(ConsolidationSpec.level(attr))
        selections = [
            Selection(
                sel.dimension,
                None
                if sel.attribute == schema.dimension(sel.dimension).key
                else sel.attribute,
                tuple(sel.values) if sel.values is not None else None,
                low=sel.low,
                high=sel.high,
            )
            for sel in query.selections
        ]
        if ctx.shards > 1:
            with ctx.phase(
                "shard_consolidate",
                shards=ctx.shards,
                executor=ctx.executor,
                mode=ctx.mode,
            ):
                result = engine.shard_coordinator.consolidate(
                    ctx,
                    array,
                    specs,
                    selections,
                    query.aggregate,
                    query.cube,
                    state,
                )
        elif selections:
            with ctx.phase("consolidate_with_selection", mode=ctx.mode):
                result = consolidate_with_selection(
                    array,
                    specs,
                    selections,
                    aggregate=query.aggregate,
                    mode=ctx.mode,
                    order=ctx.order,
                    counters=ctx.counters,
                )
        else:
            with ctx.phase("consolidate", mode=ctx.mode):
                result = consolidate(
                    array,
                    specs,
                    aggregate=query.aggregate,
                    mode=ctx.mode,
                    counters=ctx.counters,
                )
        with ctx.phase("project_rows"):
            rows = engine._project_measures(state, query, result.rows)
            rows = engine._reorder_array_rows(state, query, rows)
        return ctx.result(rows, self.name, mode=ctx.mode)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        array = state.array
        schema = state.schema
        stats = _array_catalog_stats(array)
        geometry = array.geometry
        n_chunks = geometry.n_chunks
        density = stats["non_empty_chunks"] / n_chunks if n_chunks else 0.0
        level_loads = sum(
            1
            for dim_name, attr in query.group_by
            if attr != schema.dimension(dim_name).key
        )
        groups = min(stats["n_valid"], _estimated_groups(ctx, query))
        root = PlanNode(
            "array.query",
            span="query",
            detail={"cube": query.cube, "mode": ctx.mode, "order": ctx.order},
        )
        if ctx.shards > 1:
            return self._explain_sharded(
                ctx, query, root, stats, groups, level_loads
            )
        if query.selections:
            key_sets = engine._selection_key_sets(state, query)
            n_sel = [
                len(key_sets[dim.name])
                if dim.name in key_sets
                else geometry.shape[d]
                for d, dim in enumerate(schema.dimensions)
            ]
            cross = math.prod(n_sel)
            if ctx.order == "naive":
                # every cross-product element re-reads its chunk
                chunk_visits = cross
                est_chunks_read = round(cross * density)
                est_skipped = 0
            else:
                # chunk-by-chunk: Π per-dim grid coordinates covered
                chunk_visits = math.prod(
                    min(n, -(-size // cs))
                    for n, size, cs in zip(
                        n_sel, geometry.shape, geometry.chunk_shape
                    )
                )
                est_chunks_read = round(chunk_visits * density)
                est_skipped = chunk_visits - est_chunks_read
            avg_bytes = (
                stats["chunk_bytes"] / stats["non_empty_chunks"]
                if stats["non_empty_chunks"]
                else 0.0
            )
            body = root.add(
                PlanNode(
                    "array.consolidate_with_selection",
                    span="consolidate_with_selection",
                    detail={
                        "selections": len(query.selections),
                        "order": ctx.order,
                    },
                    estimates={
                        "cross_product_size": cross,
                        "result_cells": min(groups, cross),
                    },
                )
            )
            body.add(
                PlanNode(
                    "array.resolve_mappings",
                    span="resolve_mappings",
                    estimates={"i2i_loads": level_loads},
                )
            )
            body.add(
                PlanNode(
                    "array.btree_dimension_lookup",
                    span="btree_dimension_lookup",
                    detail={
                        "dimensions": ",".join(sorted(key_sets)),
                        "final_lists": "x".join(str(n) for n in n_sel),
                    },
                    estimates={"btree_probes": _estimated_btree_probes(query)},
                )
            )
            body.add(
                PlanNode(
                    "array.probe_chunks",
                    span="probe_chunks",
                    detail={"mode": ctx.mode, "order": ctx.order},
                    estimates={
                        "cells_probed": cross,
                        "chunks_read": est_chunks_read,
                        "chunk_bytes_read": round(est_chunks_read * avg_bytes),
                        "empty_chunks_skipped": est_skipped,
                        "dir_loads": 1,
                    },
                )
            )
            body.add(PlanNode("array.extract_rows", span="extract_rows"))
        else:
            body = root.add(
                PlanNode(
                    "array.consolidate",
                    span="consolidate",
                    detail={"mode": ctx.mode},
                    estimates={"result_cells": groups},
                )
            )
            body.add(
                PlanNode(
                    "array.resolve_mappings",
                    span="resolve_mappings",
                    estimates={"i2i_loads": level_loads},
                )
            )
            body.add(
                PlanNode(
                    "array.scan_chunks",
                    span="scan_chunks",
                    detail={"n_chunks": n_chunks, "mode": ctx.mode},
                    estimates={
                        "chunks_read": stats["non_empty_chunks"],
                        "cells_scanned": stats["n_valid"],
                        "chunk_bytes_read": stats["chunk_bytes"],
                        "dir_loads": 1,
                    },
                )
            )
            body.add(PlanNode("array.extract_rows", span="extract_rows"))
        root.add(
            PlanNode(
                "array.project_rows",
                span="project_rows",
                detail={
                    "measures": len(engine._query_measures(state, query))
                },
            )
        )
        return root

    def _explain_sharded(self, ctx, query, root, stats, groups, level_loads):
        """The scatter/gather plan shape for ``ctx.shards > 1``.

        Per-shard estimates come from the same
        :func:`repro.shard.plan.plan_shards` pricing the coordinator
        executes, with the selection's index lists derived from the
        dimension tables (no B-tree probes at plan time) — so ANALYZE
        binds each ``shard.scan[i]`` node's estimate to the measured
        per-shard registry deltas.
        """
        from repro.shard.plan import plan_shards

        engine, state = ctx.engine, ctx.state
        array = state.array
        schema = state.schema
        allowed = None
        if query.selections:
            key_sets = engine._selection_key_sets(state, query)
            allowed = []
            for d, dim in enumerate(schema.dimensions):
                keys = array.dims[d].keys()
                if dim.name in key_sets:
                    chosen = key_sets[dim.name]
                    allowed.append(
                        [i for i, key in enumerate(keys) if key in chosen]
                    )
                else:
                    allowed.append(list(range(len(keys))))
        plan = plan_shards(
            array,
            ctx.shards,
            executor=ctx.executor,
            cube=query.cube,
            generation=state.generation,
            allowed=allowed,
        )
        body = root.add(
            PlanNode(
                "array.shard_consolidate",
                span="shard_consolidate",
                detail={
                    "shards": plan.shards,
                    "executor": plan.executor,
                    "mode": ctx.mode,
                },
                estimates={"result_cells": groups},
            )
        )
        body.add(
            PlanNode(
                "array.resolve_mappings",
                span="resolve_mappings",
                estimates={"i2i_loads": level_loads},
            )
        )
        if query.selections:
            body.add(
                PlanNode(
                    "array.btree_dimension_lookup",
                    span="btree_dimension_lookup",
                    detail={
                        "selections": len(query.selections),
                    },
                    estimates={"btree_probes": _estimated_btree_probes(query)},
                )
            )
        scatter = body.add(
            PlanNode(
                "shard.scatter",
                span="shard_scatter",
                detail={
                    "executor": plan.executor,
                    "ranges": plan.ranges_token(),
                },
                estimates={
                    "chunks_read": plan.est_chunks,
                    "cells_scanned": plan.est_cells,
                },
            )
        )
        for assignment in plan.assignments:
            scatter.add(
                PlanNode(
                    f"shard.scan[{assignment.shard_no}]",
                    span=f"shard_scan_{assignment.shard_no}",
                    detail={
                        "range": f"{assignment.start}:{assignment.stop}",
                    },
                    estimates={
                        "chunks_read": assignment.est_chunks,
                        "cells_scanned": assignment.est_cells,
                    },
                )
            )
        body.add(
            PlanNode(
                "shard.gather",
                span="shard_merge",
                detail={"shards": plan.shards},
                estimates={"result_cells": groups},
            )
        )
        body.add(PlanNode("array.extract_rows", span="extract_rows"))
        root.add(
            PlanNode(
                "array.project_rows",
                span="project_rows",
                detail={
                    "measures": len(engine._query_measures(state, query))
                },
            )
        )
        return root


class StarjoinBackend(Backend):
    """§4.3 Starjoin operator (selections via key filters)."""

    name = "starjoin"

    def available(self, state) -> bool:
        return state.fact is not None

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        with ctx.phase("selection_key_sets"):
            key_sets = engine._selection_key_sets(state, query)
        key_filters = {
            state.schema.dimension(d).key: allowed
            for d, allowed in key_sets.items()
        }
        with ctx.phase("star_join"):
            rows = star_join_consolidate(
                state.fact,
                engine._group_specs(state, query),
                engine._query_measures(state, query),
                aggregate=query.aggregate,
                counters=ctx.counters,
                key_filters=key_filters or None,
            )
        return ctx.result(rows, self.name)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        fact_tuples = len(state.fact)
        selectivity = (
            engine.estimate_selectivity(query) if query.selections else 1.0
        )
        selected = round(fact_tuples * selectivity)
        groups = min(_estimated_groups(ctx, query), max(selected, 1))
        hash_entries = sum(
            len(state.dim_tables[dim_name]) for dim_name, _ in query.group_by
        )
        root = PlanNode(
            "starjoin.query",
            span="query",
            detail={
                "cube": query.cube,
                "estimated_selectivity": selectivity,
            },
        )
        root.add(
            PlanNode(
                "starjoin.selection_key_sets",
                span="selection_key_sets",
                detail={"selections": len(query.selections)},
            )
        )
        root.add(
            PlanNode(
                "starjoin.star_join",
                span="star_join",
                detail={"group_dims": len(query.group_by)},
                estimates={
                    "fact_tuples_scanned": fact_tuples,
                    "dim_hash_entries": hash_entries,
                    "result_groups": groups,
                },
            )
        )
        return root


class BitmapBackend(Backend):
    """§4.5 bitmap AND + fact-file fetch."""

    name = "bitmap"

    def available(self, state) -> bool:
        return (
            state.fact is not None
            and bool(state.bitmap_attrs)
            and not state.indices_stale
        )

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        schema = state.schema
        selections = []
        with ctx.phase("bitmap_lookup"):
            for sel in query.selections:
                if (sel.dimension, sel.attribute) not in state.bitmap_attrs:
                    raise PlanError(
                        f"no bitmap index on {sel.dimension}.{sel.attribute}; "
                        "load with bitmap_attrs covering it"
                    )
                index = engine.db.bitmap(
                    bitmap_index_name(schema, sel.dimension, sel.attribute)
                )
                if sel.is_range:
                    # one B-tree range scan over the bitmap value directory,
                    # OR-ing the qualifying values' bitmaps
                    selections.append(
                        (index, index.bitmap_for_range(sel.low, sel.high))
                    )
                else:
                    selections.append((index, list(sel.values)))
        with ctx.phase("bitmap_select"):
            rows = bitmap_select_consolidate(
                state.fact,
                engine._group_specs(state, query),
                selections,
                engine._query_measures(state, query),
                aggregate=query.aggregate,
                counters=ctx.counters,
            )
        return ctx.result(rows, self.name)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        fact_tuples = len(state.fact)
        selectivity = (
            engine.estimate_selectivity(query) if query.selections else 1.0
        )
        selected = round(fact_tuples * selectivity)
        root = PlanNode(
            "bitmap.query",
            span="query",
            detail={
                "cube": query.cube,
                "estimated_selectivity": selectivity,
            },
        )
        root.add(
            PlanNode(
                "bitmap.bitmap_lookup",
                span="bitmap_lookup",
                detail={"selections": len(query.selections)},
            )
        )
        root.add(
            PlanNode(
                "bitmap.bitmap_select",
                span="bitmap_select",
                estimates={
                    # one AND operand per selection (ranges pre-merge)
                    "bitmaps_fetched": len(query.selections),
                    "selected_tuples": selected,
                    "result_groups": min(
                        _estimated_groups(ctx, query), max(selected, 1)
                    ),
                },
            )
        )
        return root


class BTreeBackend(Backend):
    """Standard B-tree selection baseline (§4.4's also-ran)."""

    name = "btree"

    def available(self, state) -> bool:
        return (
            state.fact is not None
            and bool(state.btree_dims)
            and not state.indices_stale
        )

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        if not query.selections:
            raise PlanError("the btree backend needs at least one selection")
        schema = state.schema
        with ctx.phase("selection_key_sets"):
            key_sets = engine._selection_key_sets(state, query)
        selections = []
        for dim_name, allowed in key_sets.items():
            if dim_name not in state.btree_dims:
                raise PlanError(
                    f"no fact B-tree on dimension {dim_name!r}; load with "
                    "fact_btrees=True"
                )
            tree = engine.db.btree(btree_index_name(schema, dim_name))
            selections.append((tree, sorted(allowed)))
        with ctx.phase("btree_select"):
            rows = btree_select_consolidate(
                state.fact,
                engine._group_specs(state, query),
                selections,
                engine._query_measures(state, query),
                aggregate=query.aggregate,
                counters=ctx.counters,
            )
        return ctx.result(rows, self.name)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        fact_tuples = len(state.fact)
        selectivity = (
            engine.estimate_selectivity(query) if query.selections else 1.0
        )
        key_sets = engine._selection_key_sets(state, query)
        selected = round(fact_tuples * selectivity)
        root = PlanNode(
            "btree.query",
            span="query",
            detail={
                "cube": query.cube,
                "estimated_selectivity": selectivity,
            },
        )
        root.add(
            PlanNode(
                "btree.selection_key_sets",
                span="selection_key_sets",
                detail={"selections": len(query.selections)},
            )
        )
        root.add(
            PlanNode(
                "btree.btree_select",
                span="btree_select",
                estimates={
                    # one fact B-tree probe per allowed key per dimension
                    "btree_probes": sum(len(v) for v in key_sets.values()),
                    "selected_tuples": selected,
                    "result_groups": min(
                        _estimated_groups(ctx, query), max(selected, 1)
                    ),
                },
            )
        )
        return root


class MBTreeBackend(Backend):
    """Skipping multi-attribute B-tree reconstruction (§4.4)."""

    name = "mbtree"

    def available(self, state) -> bool:
        return (
            state.fact is not None
            and state.has_mbtree
            and not state.indices_stale
        )

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        if not query.selections:
            raise PlanError("the mbtree backend needs at least one selection")
        schema = state.schema
        with ctx.phase("selection_key_sets"):
            key_sets = engine._selection_key_sets(state, query)
            allowed = []
            for dim in schema.dimensions:
                if dim.name in key_sets:
                    allowed.append(sorted(key_sets[dim.name]))
                else:
                    table = state.dim_tables[dim.name]
                    key_pos = table.schema.index_of(dim.key)
                    allowed.append(
                        sorted(row[key_pos] for row in table.scan())
                    )
        tree = engine.db.btree(mbtree_index_name(schema))
        with ctx.phase("mbtree_select"):
            rows = mbtree_select_consolidate(
                state.fact,
                engine._group_specs(state, query),
                tree,
                allowed,
                engine._query_measures(state, query),
                aggregate=query.aggregate,
                counters=ctx.counters,
            )
        return ctx.result(rows, self.name)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        fact_tuples = len(state.fact)
        selectivity = (
            engine.estimate_selectivity(query) if query.selections else 1.0
        )
        selected = round(fact_tuples * selectivity)
        root = PlanNode(
            "mbtree.query",
            span="query",
            detail={
                "cube": query.cube,
                "estimated_selectivity": selectivity,
            },
        )
        root.add(
            PlanNode(
                "mbtree.selection_key_sets",
                span="selection_key_sets",
                detail={"selections": len(query.selections)},
            )
        )
        root.add(
            PlanNode(
                "mbtree.mbtree_select",
                span="mbtree_select",
                estimates={
                    # the skipping scan seeks about once per qualifying run
                    "mbtree_hits": selected,
                    "selected_tuples": selected,
                    "result_groups": min(
                        _estimated_groups(ctx, query), max(selected, 1)
                    ),
                },
            )
        )
        return root


class LeftDeepBackend(Backend):
    """Pipelined left-deep hash-join plan (§1's "traditional")."""

    name = "leftdeep"

    def available(self, state) -> bool:
        return state.fact is not None

    def execute(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        schema = state.schema
        grouped = dict(query.group_by)
        key_sets = engine._selection_key_sets(state, query)
        joined = [
            d.name
            for d in schema.dimensions
            if d.name in grouped or d.name in key_sets
        ]
        fact_scan = SeqScan(state.fact, alias="f")
        dim_scans = []
        for dim_name in joined:
            dim = schema.dimension(dim_name)
            scan = SeqScan(state.dim_tables[dim_name], alias=dim_name)
            if dim_name in key_sets:
                allowed = key_sets[dim_name]
                key_col = f"{dim_name}.{dim.key}"
                position = scan.names.index(key_col)
                scan = Filter(
                    scan,
                    predicate=lambda row, p=position, a=frozenset(allowed): row[p] in a,
                )
            dim_scans.append((scan, f"{dim_name}.{dim.key}", f"f.{dim.key}"))
        plan = left_deep_consolidation(
            fact_scan,
            dim_scans,
            [f"{d}.{grouped[d]}" for d in query.group_dims],
            [f"f.{m}" for m in engine._query_measures(state, query)],
            aggregate=query.aggregate,
        )
        with ctx.phase("leftdeep_pipeline", joins=len(dim_scans)):
            ctx.counters.add("leftdeep_joins", len(dim_scans))
            rows = list(plan)
        return ctx.result(rows, self.name)

    def explain(self, ctx, query):
        engine, state = ctx.engine, ctx.state
        schema = state.schema
        grouped = dict(query.group_by)
        key_sets = engine._selection_key_sets(state, query)
        joined = [
            d.name
            for d in schema.dimensions
            if d.name in grouped or d.name in key_sets
        ]
        root = PlanNode(
            "leftdeep.query",
            span="query",
            detail={"cube": query.cube, "joins": len(joined)},
        )
        root.add(
            PlanNode(
                "leftdeep.pipeline",
                span="leftdeep_pipeline",
                detail={
                    "dimensions": ",".join(joined),
                    "hash_build_rows": sum(
                        len(state.dim_tables[d]) for d in joined
                    ),
                },
                estimates={"leftdeep_joins": len(joined)},
            )
        )
        return root


_BUILTIN_NAMES = (
    "array", "starjoin", "bitmap", "btree", "mbtree", "leftdeep",
)

for _backend in (
    ArrayBackend(),
    StarjoinBackend(),
    BitmapBackend(),
    BTreeBackend(),
    MBTreeBackend(),
    LeftDeepBackend(),
):
    register_backend(_backend)
