"""The snowflake schema: §2.2's normalized star variant.

A snowflake schema replaces each wide dimension table with a chain of
normalized tables, one per hierarchy level::

    dim.base(key, l1_id)
    dim.l1(l1_id, l1_value, l2_id)
    ...
    dim.lk(lk_id, lk_value)

Level ids are first-appearance ordinals of the distinct level values —
the same numbering :class:`~repro.core.index_to_index.IndexToIndex`
uses, so both physical designs stay aligned.

:class:`SnowflakeDimension` quacks like a dimension heap table
(``schema`` + ``scan()``) but reconstructs the denormalized rows by
joining the chain, reading every page through the buffer pool so the
join cost shows up in the measurements.  The engine can therefore run
every relational algorithm unchanged over a snowflaked dimension.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.olap.model import CubeSchema, DimensionDef
from repro.relational.catalog import Database
from repro.relational.schema import Column, Schema


def snowflake_table_names(cube: CubeSchema, dimension: str) -> list[str]:
    """Catalog names of one dimension's snowflake chain (base first)."""
    dim = cube.dimension(dimension)
    names = [f"{cube.name}.{dimension}.snow.base"]
    names += [
        f"{cube.name}.{dimension}.snow.{attr}" for attr in dim.level_names
    ]
    return names


def _distinct_ordinals(values: list) -> tuple[list[int], list]:
    """First-appearance ordinal of each value, plus the distinct list."""
    ordinals: dict = {}
    ids = []
    for value in values:
        ordinal = ordinals.get(value)
        if ordinal is None:
            ordinal = len(ordinals)
            ordinals[value] = ordinal
        ids.append(ordinal)
    return ids, list(ordinals)


class SnowflakeDimension:
    """A joined, denormalized view over one snowflaked dimension."""

    def __init__(self, dimension: DimensionDef, base, level_tables):
        self.dimension = dimension
        self.base = base
        self.level_tables = level_tables  # [(attr, HeapFile)] in order
        self.schema = Schema(
            [Column(dimension.key, dimension.key_type)]
            + [Column(name, ctype) for name, ctype in dimension.levels]
        )

    def scan(self):
        """Yield denormalized ``(key, level values...)`` rows.

        The snowflake join: each level table loads into an in-memory
        id → (value, parent id) map (level tables are tiny), then one
        pass over the base table follows the chain.
        """
        chains = []
        for _, table in self.level_tables:
            rows = {}
            for row in table.scan():
                # (id, value[, parent id])
                rows[row[0]] = (row[1], row[2] if len(row) > 2 else None)
            chains.append(rows)
        for key, first_id in self.base.scan():
            values = []
            level_id = first_id
            for level in chains:
                value, level_id = level[level_id]
                values.append(value)
            yield (key, *values)

    def __len__(self) -> int:
        return len(self.base)

    def size_bytes(self) -> int:
        """Footprint of the whole chain (base + every level table)."""
        return self.base.size_bytes() + sum(
            t.size_bytes() for _, t in self.level_tables
        )


def build_snowflake_dimension(
    db: Database,
    cube: CubeSchema,
    dimension: str,
    rows: list[tuple],
) -> SnowflakeDimension:
    """Normalize one dimension's rows into snowflake tables.

    ``rows`` are the denormalized ``(key, level values...)`` tuples the
    star layout would store directly.  Requires a proper hierarchy:
    each level's value must functionally determine the next level's.
    """
    dim = cube.dimension(dimension)
    n_levels = len(dim.levels)
    names = snowflake_table_names(cube, dimension)

    columns = [[row[1 + i] for row in rows] for i in range(n_levels)]
    ids = []
    distincts = []
    for level_values in columns:
        level_ids, distinct = _distinct_ordinals(level_values)
        ids.append(level_ids)
        distincts.append(distinct)

    base = db.create_heap_table(
        names[0],
        Schema([Column(dim.key, dim.key_type), Column("l1_id", "int32")]),
        extent_pages=2,
    )
    base.insert_many(
        [(row[0], ids[0][r]) for r, row in enumerate(rows)]
        if n_levels
        else [(row[0], 0) for row in rows]
    )

    level_tables = []
    for i, (attr, ctype) in enumerate(dim.levels):
        is_last = i == n_levels - 1
        if is_last:
            schema = Schema([Column("id", "int32"), Column(attr, ctype)])
        else:
            schema = Schema(
                [
                    Column("id", "int32"),
                    Column(attr, ctype),
                    Column("parent_id", "int32"),
                ]
            )
        # level tables hold one row per DISTINCT value: tiny extents
        table = db.create_heap_table(names[1 + i], schema, extent_pages=1)
        # one row per distinct value; the parent id must be functional
        parent_of: dict[int, int] = {}
        if not is_last:
            for r in range(len(rows)):
                child, parent = ids[i][r], ids[i + 1][r]
                if parent_of.setdefault(child, parent) != parent:
                    raise SchemaError(
                        f"dimension {dimension!r}: {dim.levels[i + 1][0]!r} "
                        f"is not functionally determined by {attr!r}; "
                        "cannot snowflake"
                    )
        table.insert_many(
            [
                (ordinal, value)
                if is_last
                else (ordinal, value, parent_of[ordinal])
                for ordinal, value in enumerate(distincts[i])
            ]
        )
        level_tables.append((attr, table))

    return SnowflakeDimension(dim, base, level_tables)
