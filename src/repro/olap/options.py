"""One execution surface: :class:`ExecutionOptions`.

Historically the knobs controlling *how* a query runs were scattered
across ragged keyword lists — ``backend=`` on everything, ``mode=`` with
divergent defaults (``OlapEngine.materialize`` said ``"vectorized"``
while the serving layer and CLI said ``"interpreted"``), and
``executor=`` only on :func:`repro.core.parallel.consolidate_partitioned`.
This module folds them into a single frozen dataclass accepted by
:meth:`OlapEngine.run <repro.olap.engine.OlapEngine.run>`,
:meth:`ConsolidationQuery.builder
<repro.olap.query.ConsolidationQuery.builder>`,
:meth:`QueryService.query <repro.serve.service.QueryService.query>` and
the CLI.

The canonical mode default is ``"auto"``: vectorized when every
aggregate is numpy-decodable (the ``sum``/``count``/``min``/``max``/
``avg`` family), interpreted otherwise — resolved identically by the
engine, the fingerprint and EXPLAIN, so cached results never alias
across modes.

The loose keywords (``backend=`` / ``mode=`` / ``executor=`` /
``shards=`` passed directly to ``run``/``query``) had a one-release
deprecation window and are now gone: :func:`coerce_options` raises
:class:`TypeError` pointing at :class:`ExecutionOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Union

from repro.errors import QueryError
from repro.obs.tracing import TraceContext

#: aggregates the vectorized kernels support (``_VECTOR_AGGS`` + avg)
VECTORIZABLE_AGGREGATES = frozenset({"sum", "count", "min", "max", "avg"})

#: executors the shard coordinator knows how to drive
EXECUTOR_NAMES = ("local", "thread", "process")

_MODES = ("auto", "interpreted", "vectorized")


@dataclass(frozen=True)
class ExecutionOptions:
    """Every knob that selects *how* (not *what*) a query executes.

    - ``backend``: ``"auto"`` (planner picks) or a registered backend
      name (``array``, ``starjoin``, ``bitmap``, ...).
    - ``mode``: ``"auto"`` / ``"interpreted"`` / ``"vectorized"``
      chunk-execution mode (array backend only; see
      :func:`resolve_mode`).
    - ``executor``: ``"local"`` / ``"thread"`` / ``"process"`` — where
      shard scans run when ``shards > 1``.
    - ``shards``: number of chunk-range shards to scatter the
      consolidation over (1 = the classic single-scan path).
    - ``order``: chunk-by-chunk (``"chunk"``) or naive (``"naive"``)
      probe order for selections.
    - ``allow_partial``: opt-in degraded mode — when a shard stays lost
      after the re-scatter budget, return the merged partial aggregate
      (flagged in ``result.stats``) instead of raising
      :class:`~repro.errors.ShardScatterError`.
    - ``trace``: the distributed :class:`~repro.obs.tracing.TraceContext`
      of the request this execution belongs to, threaded through the
      engine into shard scatter so worker span trees join the request's
      trace.  Identity, not execution shape: it never participates in
      query fingerprints or result caching.
    """

    backend: str = "auto"
    mode: str = "auto"
    executor: str = "local"
    shards: int = 1
    order: str = "chunk"
    allow_partial: bool = False
    trace: TraceContext | None = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise QueryError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise QueryError(
                f"unknown executor {self.executor!r}; expected one of "
                f"{EXECUTOR_NAMES}"
            )
        if self.shards < 1:
            raise QueryError(f"shards must be >= 1, got {self.shards}")
        if self.order not in ("chunk", "naive"):
            raise QueryError(f"unknown order {self.order!r}")

    def merged_with(self, **overrides: object) -> "ExecutionOptions":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


_OPTION_FIELDS = tuple(f.name for f in fields(ExecutionOptions))


def resolve_mode(
    mode: str, aggregate: Union[str, list[str], tuple[str, ...]], backend: str
) -> str:
    """Resolve ``"auto"`` to the one canonical concrete mode.

    ``"vectorized"`` when the backend is (or may plan to) the array and
    every aggregate has a numpy kernel; ``"interpreted"`` otherwise.
    The relational backends are per-tuple by construction, so any
    non-array backend resolves to ``"interpreted"`` (and an explicit
    ``"vectorized"`` there is quietly meaningless, exactly as before).
    This function is the single resolution point shared by the engine,
    ``query_fingerprint`` and EXPLAIN — giving all three the same
    answer is what keeps cached results from aliasing across modes.
    """
    if mode != "auto":
        return mode
    if backend not in ("array", "auto"):
        return "interpreted"
    names = [aggregate] if isinstance(aggregate, str) else list(aggregate)
    if all(name in VECTORIZABLE_AGGREGATES for name in names):
        return "vectorized"
    return "interpreted"


def coerce_options(
    options: ExecutionOptions | None,
    legacy: dict[str, object],
    where: str,
) -> ExecutionOptions:
    """Resolve the ``options`` argument of a new-surface call.

    ``legacy`` is the ``**kwargs`` dict of the call.  The loose
    per-keyword form (``backend=``, ``mode=``, ``executor=``,
    ``shards=``, ...) had its one-release deprecation window and is now
    a :class:`TypeError` whose message points at the replacement;
    keywords that were never valid raise the generic form.
    """
    unknown = sorted(set(legacy) - set(_OPTION_FIELDS))
    if unknown:
        raise TypeError(f"{where}: unexpected keyword arguments {unknown}")
    if legacy:
        raise TypeError(
            f"{where}: the loose keywords {sorted(legacy)} were removed; "
            f"pass ExecutionOptions({', '.join(f'{k}=...' for k in sorted(legacy))}) "
            "instead"
        )
    return options if options is not None else ExecutionOptions()
