"""A SQL-subset parser for the paper's consolidation query templates.

The paper invokes the ADT through functions and leaves transparent SQL
integration as future work; this module closes part of that gap for the
exact query shape the evaluation uses (Queries 1–3)::

    SELECT sum(volume), dim0.h01, dim1.h11
    FROM   fact, dim0, dim1
    WHERE  fact.d0 = dim0.d0 AND fact.d1 = dim1.d1
       AND dim1.h11 = 'AA1' AND dim0.h01 IN ('AA0', 'AA2')
    GROUP BY h01, dim1.h11

:func:`parse_query` resolves the statement against a
:class:`~repro.olap.model.CubeSchema` and returns a
:class:`~repro.olap.query.ConsolidationQuery`.  Join predicates
(column = column) are validated and dropped — the engine knows how the
star joins.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SQLError
from repro.olap.model import CubeSchema
from repro.olap.query import ConsolidationQuery, SelectionPredicate

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<punct>[(),.=*])
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "group", "by", "in", "between"}


@dataclass(frozen=True)
class _Token:
    kind: str  # string | number | ident | punct | keyword
    value: str


def _tokenize(sql: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            if sql[position:].strip() == "":
                break
            raise SQLError(f"cannot tokenize near {sql[position:position+20]!r}")
        position = match.end()
        if match.lastgroup == "ident":
            text = match.group("ident")
            kind = "keyword" if text.lower() in _KEYWORDS else "ident"
            tokens.append(_Token(kind, text.lower() if kind == "keyword" else text))
        elif match.lastgroup == "string":
            tokens.append(_Token("string", match.group("string")[1:-1]))
        elif match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        elif match.lastgroup == "punct":
            tokens.append(_Token("punct", match.group("punct")))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    def peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of statement")
        self._position += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            raise SQLError(
                f"expected {value or kind}, got {token.value!r}"
            )
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self._position += 1
            return True
        return False

    def column(self) -> tuple[str | None, str]:
        """``table.attr`` or bare ``attr``; returns (qualifier, name)."""
        first = self.expect("ident").value
        if self.accept("punct", "."):
            return first, self.expect("ident").value
        return None, first

    def literal(self):
        token = self.next()
        if token.kind == "string":
            return token.value
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        raise SQLError(f"expected a literal, got {token.value!r}")


@dataclass
class _Statement:
    aggregates: list[tuple[str, str]]  # (function, measure)
    select_columns: list[tuple[str | None, str]]
    tables: list[str]
    joins: list[tuple[tuple, tuple]]
    selections: list[tuple[tuple, list]]
    ranges: list[tuple[tuple, object, object]]
    group_by: list[tuple[str | None, str]]


def _parse_statement(sql: str) -> _Statement:
    parser = _Parser(_tokenize(sql))
    parser.expect("keyword", "select")
    aggregates: list[tuple[str, str]] = []
    select_columns: list[tuple[str | None, str]] = []
    while True:
        qualifier, name = parser.column()
        if qualifier is None and parser.accept("punct", "("):
            measure = parser.expect("ident").value
            parser.expect("punct", ")")
            aggregates.append((name.lower(), measure))
        else:
            select_columns.append((qualifier, name))
        if not parser.accept("punct", ","):
            break

    parser.expect("keyword", "from")
    tables = [parser.expect("ident").value]
    while parser.accept("punct", ","):
        tables.append(parser.expect("ident").value)

    joins: list[tuple[tuple, tuple]] = []
    selections: list[tuple[tuple, list]] = []
    ranges: list[tuple[tuple, object, object]] = []
    if parser.accept("keyword", "where"):
        while True:
            left = parser.column()
            if parser.accept("keyword", "in"):
                parser.expect("punct", "(")
                values = [parser.literal()]
                while parser.accept("punct", ","):
                    values.append(parser.literal())
                parser.expect("punct", ")")
                selections.append((left, values))
            elif parser.accept("keyword", "between"):
                low = parser.literal()
                parser.expect("keyword", "and")
                high = parser.literal()
                ranges.append((left, low, high))
            else:
                parser.expect("punct", "=")
                token = parser.peek()
                if token is not None and token.kind == "ident":
                    joins.append((left, parser.column()))
                else:
                    selections.append((left, [parser.literal()]))
            if not parser.accept("keyword", "and"):
                break

    parser.expect("keyword", "group")
    parser.expect("keyword", "by")
    group_by = [parser.column()]
    while parser.accept("punct", ","):
        group_by.append(parser.column())

    if parser.peek() is not None:
        raise SQLError(f"trailing tokens after GROUP BY: {parser.peek().value!r}")
    if not aggregates:
        raise SQLError("SELECT list needs an aggregate such as sum(volume)")
    return _Statement(
        aggregates, select_columns, tables, joins, selections, ranges, group_by
    )


def _resolve_dimension(schema: CubeSchema, qualifier: str | None, attr: str) -> str:
    """Find which dimension an attribute reference belongs to."""
    if qualifier is not None:
        dim = schema.dimension(qualifier)  # raises if unknown
        if attr != dim.key and attr not in dim.level_names:
            raise SQLError(f"dimension {qualifier!r} has no attribute {attr!r}")
        return qualifier
    owners = [
        d.name
        for d in schema.dimensions
        if attr == d.key or attr in d.level_names
    ]
    if not owners:
        raise SQLError(f"no dimension has an attribute named {attr!r}")
    if len(owners) > 1:
        raise SQLError(
            f"attribute {attr!r} is ambiguous across dimensions {owners}; "
            "qualify it"
        )
    return owners[0]


def parse_query(sql: str, schema: CubeSchema) -> ConsolidationQuery:
    """Parse a consolidation statement against a cube schema."""
    statement = _parse_statement(sql)

    fact_names = {"fact", f"{schema.name}.fact", schema.name}
    dim_names = {d.name for d in schema.dimensions}
    for table in statement.tables:
        if table not in fact_names and table not in dim_names:
            raise SQLError(f"unknown table {table!r} in FROM")

    agg_functions = {fn for fn, _ in statement.aggregates}
    if len(agg_functions) > 1:
        raise SQLError(
            f"one aggregate function per query, got {sorted(agg_functions)}"
        )
    measures = []
    known_measures = {m.name for m in schema.measures}
    for _, measure in statement.aggregates:
        if measure not in known_measures:
            raise SQLError(f"cube has no measure {measure!r}")
        measures.append(measure)

    for left, right in statement.joins:
        sides = sorted([left, right], key=lambda c: c[0] not in fact_names)
        fact_side, dim_side = sides
        if fact_side[0] not in fact_names:
            raise SQLError(
                "join predicates must link the fact table to a dimension"
            )
        dim = schema.dimension(_resolve_dimension(schema, *dim_side))
        if dim_side[1] != dim.key or fact_side[1] != dim.key:
            raise SQLError(
                f"join on {dim.name} must use its key attribute {dim.key!r}"
            )

    group_by: dict[str, str] = {}
    for qualifier, attr in statement.group_by:
        dim_name = _resolve_dimension(schema, qualifier, attr)
        if dim_name in group_by and group_by[dim_name] != attr:
            raise SQLError(f"dimension {dim_name!r} grouped on two attributes")
        group_by[dim_name] = attr

    for qualifier, attr in statement.select_columns:
        dim_name = _resolve_dimension(schema, qualifier, attr)
        if group_by.get(dim_name) != attr:
            raise SQLError(
                f"selected column {attr!r} does not appear in GROUP BY"
            )

    selections = []
    for (qualifier, attr), values in statement.selections:
        dim_name = _resolve_dimension(schema, qualifier, attr)
        selections.append(
            SelectionPredicate(dim_name, attr, values=tuple(values))
        )
    for (qualifier, attr), low, high in statement.ranges:
        dim_name = _resolve_dimension(schema, qualifier, attr)
        selections.append(
            SelectionPredicate(dim_name, attr, low=low, high=high)
        )

    return ConsolidationQuery.build(
        cube=schema.name,
        group_by=group_by,
        selections=selections,
        aggregate=next(iter(agg_functions)),
        measures=measures,
    )
