"""Backend choice for consolidation queries.

The paper leaves array/relational integration with the optimizer as
future work but its measurements imply a simple rule: the array wins
except at extremely low star-join selectivity, where the bitmap + fact
file pulls individual tuples while the array must fetch whole chunks
(§5.6: the crossover sits near S = 0.00024).  :func:`choose_backend`
encodes exactly that rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError

# §5.6: bitmap+fact-file beat the array below S = 0.00024; we plan
# conservatively at the paper's observed crossover.
DEFAULT_CROSSOVER_SELECTIVITY = 0.00024


@dataclass(frozen=True)
class PlannerInputs:
    """What the planner knows about the physical design and the query."""

    has_array: bool
    has_bitmaps: bool
    has_selections: bool
    estimated_selectivity: float = 1.0
    #: True when any selection is a range predicate, which a value-list
    #: bitmap index can only serve by enumerating the qualifying domain.
    has_range_selections: bool = False


def choose_backend_explained(
    inputs: PlannerInputs,
    crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
) -> tuple[str, str]:
    """:func:`choose_backend` plus the *reason* for the choice.

    The reason string is a short stable token ("no-selections",
    "below-crossover", ...) recorded on the query span and in slow-query
    profiles, so a tail-latency investigation can see which planner rule
    fired without re-deriving the selectivity estimate.
    """
    if not inputs.has_selections:
        if inputs.has_array:
            return "array", "no-selections"
        return "starjoin", "no-selections-no-array"
    if not inputs.has_array:
        if inputs.has_bitmaps and not inputs.has_range_selections:
            return "bitmap", "no-array"
        return "starjoin", "no-array-range-or-no-bitmaps"
    if (
        inputs.has_bitmaps
        and not inputs.has_range_selections
        and inputs.estimated_selectivity < crossover_selectivity
    ):
        return "bitmap", (
            f"below-crossover"
            f" (S={inputs.estimated_selectivity:.2g}"
            f" < {crossover_selectivity:g})"
        )
    return "array", "above-crossover"


def choose_backend(
    inputs: PlannerInputs,
    crossover_selectivity: float = DEFAULT_CROSSOVER_SELECTIVITY,
) -> str:
    """Pick ``array`` / ``starjoin`` / ``bitmap`` for a query.

    - no selections: the array consolidation if an array exists, else
      the Starjoin operator;
    - with selections: the array algorithm above the crossover
      selectivity, the bitmap + fact-file algorithm below it (or when
      no array was built and the predicates are equality/IN lists —
      range predicates fall back to Starjoin, because a value-list
      bitmap index cannot serve ``BETWEEN`` without enumerating the
      whole domain).
    """
    return choose_backend_explained(inputs, crossover_selectivity)[0]


def require_backend_available(backend: str, available: set[str]) -> None:
    """Raise :class:`PlanError` when a requested backend was not built."""
    if backend not in available:
        raise PlanError(
            f"backend {backend!r} not available for this cube; built: "
            f"{sorted(available)}"
        )
