"""The OLAP layer: data model, star-schema mapping, and the query engine.

This is the library's main public surface.  A
:class:`~repro.olap.model.CubeSchema` describes dimensions (with
hierarchies) and measures; an :class:`~repro.olap.engine.OlapEngine`
loads the data into *both* physical designs — the relational star
schema (§2.2) and the OLAP Array ADT (§2.3) — and executes
:class:`~repro.olap.query.ConsolidationQuery` objects through any
backend, or lets the :mod:`~repro.olap.planner` choose.
"""

from repro.olap.model import CubeSchema, DimensionDef, MeasureDef
from repro.olap.options import ExecutionOptions, resolve_mode
from repro.olap.query import ConsolidationQuery, SelectionPredicate
from repro.olap.backends import (
    Backend,
    BackendContext,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.olap.engine import OlapEngine, QueryResult
from repro.olap.planner import choose_backend
from repro.olap.sql import parse_query
from repro.olap.snowflake import SnowflakeDimension, build_snowflake_dimension

__all__ = [
    "CubeSchema",
    "DimensionDef",
    "MeasureDef",
    "ExecutionOptions",
    "resolve_mode",
    "ConsolidationQuery",
    "SelectionPredicate",
    "Backend",
    "BackendContext",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "unregister_backend",
    "OlapEngine",
    "QueryResult",
    "choose_backend",
    "parse_query",
    "SnowflakeDimension",
    "build_snowflake_dimension",
]
