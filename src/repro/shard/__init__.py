"""Horizontal sharding: scatter-gather consolidation over chunk ranges.

The paper's chunked layout (§3) makes consolidation embarrassingly
partitionable by chunk range, and every aggregate carries a mergeable
sketch (§6) — so a cube shards by splitting its chunk directory into
contiguous ranges, scattering each range's scan to a worker, and
merging the partial :class:`~repro.core.consolidate.ResultAccumulator`
states.

- :mod:`repro.shard.plan` — chunk-range assignments with per-shard
  chunk/cell estimates (also the EXPLAIN estimate source);
- :mod:`repro.shard.executor` — the Executor protocol
  (``local`` / ``thread`` / ``process``) generalizing the
  ``executor="thread"`` seam of :mod:`repro.core.parallel`;
- :mod:`repro.shard.worker` — the per-shard scan task, runnable
  in-process or in a spawned worker over its own volume image, buffer
  pool and WAL segment directory;
- :mod:`repro.shard.coordinator` — snapshot, scatter, straggler
  re-scatter, merge, and the ``shard.*`` metrics flow.
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.executor import (
    LocalShardExecutor,
    ProcessShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    make_executor,
)
from repro.shard.plan import ShardAssignment, ShardPlan, plan_shards

__all__ = [
    "LocalShardExecutor",
    "ProcessShardExecutor",
    "ShardAssignment",
    "ShardCoordinator",
    "ShardExecutor",
    "ShardPlan",
    "ThreadShardExecutor",
    "make_executor",
    "plan_shards",
]
