"""The shard Executor protocol: ``local`` / ``thread`` / ``process``.

This generalizes the ``executor="thread"`` seam of
:mod:`repro.core.parallel` into a proper protocol the coordinator (and
``consolidate_partitioned`` itself) selects per query:

- :class:`LocalShardExecutor` runs tasks inline on the calling thread —
  the deterministic tests/debug executor;
- :class:`ThreadShardExecutor` fans tasks out to a thread pool (shared
  address space, shared buffer pool);
- :class:`ProcessShardExecutor` dispatches picklable tasks to a
  persistent spawn-context process pool — each worker opens its own
  volume image, buffer pool and WAL segment directory
  (:mod:`repro.shard.worker`).

``map_tasks`` never raises for a task failure: each slot of the result
list is either the task's return value or the exception it raised (a
``concurrent.futures`` timeout surfaces as that exception too), so the
coordinator can re-scatter exactly the lost chunk ranges.
"""

from __future__ import annotations

import sys
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable

from repro.errors import QueryError


class ShardExecutor(ABC):
    """Runs a batch of shard tasks; collects per-task results/errors."""

    name: str = ""

    @abstractmethod
    def map_tasks(
        self,
        fn: Callable[[dict], dict],
        tasks: list[dict],
        timeout_s: float | None = None,
    ) -> list[object]:
        """Run ``fn`` over ``tasks``; per-slot result or raised exception."""

    def reset(self) -> None:
        """Drop any pooled workers (after a broken pool); lazily rebuilt."""

    def close(self) -> None:
        """Release pooled workers; the executor may be reused afterwards."""


class LocalShardExecutor(ShardExecutor):
    """In-process, sequential — tests, debugging, and ``shards=1``."""

    name = "local"

    def map_tasks(self, fn, tasks, timeout_s=None):
        out: list[object] = []
        for task in tasks:
            try:
                out.append(fn(task))
            except Exception as exc:  # collected, never raised here
                out.append(exc)
        return out


class ThreadShardExecutor(ShardExecutor):
    """One worker thread per task (capped), shared address space."""

    name = "thread"

    def __init__(self, max_workers: int | None = None):
        self._max_workers = max_workers

    def map_tasks(self, fn, tasks, timeout_s=None):
        workers = self._max_workers if self._max_workers else len(tasks)
        out: list[object] = []
        with ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-shard"
        ) as pool:
            futures = [pool.submit(fn, task) for task in tasks]
            for future in futures:
                try:
                    out.append(future.result(timeout=timeout_s))
                except Exception as exc:
                    out.append(exc)
        return out


def _worker_init(paths: list[str]) -> None:
    """Spawn-context bootstrap: mirror the parent's import path.

    A spawned child re-imports ``repro`` from scratch; when the parent
    runs from a source tree (``PYTHONPATH=src``) without an installed
    package, the child needs the same ``sys.path`` to unpickle the task
    function.
    """
    for path in reversed(paths):
        if path not in sys.path:
            sys.path.insert(0, path)


class ProcessShardExecutor(ShardExecutor):
    """A persistent spawn-context process pool.

    The pool is created lazily on first use and *reused across queries*
    (worker start-up plus volume-image open dominate a single shard
    scan, so a pool-per-query design would bury the parallelism).  Task
    functions must be module-level and tasks picklable — see
    :func:`repro.shard.worker.run_shard_task`.
    """

    name = "process"

    def __init__(self, max_workers: int | None = None):
        self._max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self, n_tasks: int) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing

            workers = self._max_workers if self._max_workers else n_tasks
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, workers),
                mp_context=multiprocessing.get_context("spawn"),
                initializer=_worker_init,
                initargs=(list(sys.path),),
            )
        return self._pool

    def map_tasks(self, fn, tasks, timeout_s=None):
        pool = self._ensure_pool(len(tasks))
        futures = [pool.submit(fn, task) for task in tasks]
        out: list[object] = []
        broken = False
        for future in futures:
            try:
                out.append(future.result(timeout=timeout_s))
            except Exception as exc:
                from concurrent.futures.process import BrokenProcessPool

                out.append(exc)
                broken = broken or isinstance(exc, BrokenProcessPool)
        if broken:
            # a worker died hard; drop the pool so the next round (a
            # coordinator re-scatter) starts fresh workers
            self.reset()
        return out

    def reset(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


_EXECUTORS: dict[str, type[ShardExecutor]] = {
    "local": LocalShardExecutor,
    "thread": ThreadShardExecutor,
    "process": ProcessShardExecutor,
}


def make_executor(name: str, max_workers: int | None = None) -> ShardExecutor:
    """Instantiate an executor by protocol name."""
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise QueryError(
            f"unknown executor {name!r}; expected one of "
            f"{tuple(sorted(_EXECUTORS))}"
        ) from None
    if cls is LocalShardExecutor:
        return cls()
    return cls(max_workers=max_workers)  # type: ignore[call-arg]
