"""The per-shard scan task: one chunk range → one partial accumulator.

Two entry points run the *same* §4.1 scan
(:func:`repro.core.consolidate.scan_chunk_range`):

- :func:`run_inline_task` executes against live objects in the
  coordinator's process (the ``local`` and ``thread`` executors) and
  hands back the accumulator itself;
- :func:`run_shard_task` is the picklable process-executor task.  Each
  worker process opens its *own* database from the coordinator's volume
  image — own :class:`~repro.storage.buffer_pool.BufferPool`, own
  simulated disk, own WAL segment directory — and ships the partial
  aggregate back as an :meth:`export_state
  <repro.core.consolidate.ResultAccumulator.export_state>` payload plus
  the per-shard counters (chunk reads, cell scans, pool hit/miss and
  simulated I/O deltas) the coordinator folds into the query's metrics.

Databases are cached per ``(process, image path)``: a shard scan is
usually one of many against the same cube generation, so reopening the
image for every task would turn the buffer pool into a cold start each
time.  A new image path (new generation) evicts the old entry.

Tasks carrying a serialized trace context (``task["trace"]``) run the
scan under a worker-local tracer and ship the resulting span tree back
as ``result["trace"]`` (pickle-free :func:`span_to_dict` form); the
coordinator re-parents it under its ``shard_scan_<i>`` span so EXPLAIN
ANALYZE and the slow-query log show one contiguous tree per query even
across process boundaries.
"""

from __future__ import annotations

import os
import time

from repro.core.consolidate import (
    ConsolidationSpec,
    ResultAccumulator,
    scan_chunk_range,
)
from repro.errors import QueryError, TransientDiskError
from repro.obs.exporters import span_to_dict
from repro.obs.tracer import Span, Tracer, thread_tracing
from repro.util.stats import Counters

#: per-process cache: image_path -> (Database, {array_name: OLAPArray})
_WORKER_STATE: dict = {}

#: the counter keys a worker reports back per shard
_DELTA_KEYS = (
    "chunks_read",
    "chunks_skipped",
    "cells_scanned",
    "chunk_bytes_read",
    "pool_hits",
    "pool_misses",
    "sim_io_s",
)


def _maybe_fail(task: dict) -> None:
    """Crash-injection hook: fail exactly once per marker file.

    The marker is removed *before* raising, so only the first worker to
    see it fails — the coordinator's re-scatter then succeeds.  Using
    the filesystem makes the injection visible across process
    boundaries, which in-memory monkeypatching cannot be.
    """
    marker = task.get("fail_marker")
    if marker and os.path.exists(marker):
        try:
            os.remove(marker)
        except FileNotFoundError:
            return  # another attempt consumed the failure
        raise TransientDiskError(
            f"injected shard worker failure (shard {task.get('shard')})"
        )


def build_specs(pairs: list[tuple[str, str | None]]) -> list[ConsolidationSpec]:
    """Rebuild ConsolidationSpecs from their picklable (kind, attr) form."""
    specs = []
    for kind, attr in pairs:
        if kind == "level":
            specs.append(ConsolidationSpec.level(attr))
        elif kind == "key":
            specs.append(ConsolidationSpec.key())
        elif kind == "drop":
            specs.append(ConsolidationSpec.drop())
        else:
            # "mapping" carries a live IndexToIndex — coordinator-side only
            raise QueryError(
                f"spec kind {kind!r} cannot cross a process boundary"
            )
    return specs


def _traced_scan(task: dict, scan, executor: str) -> Span | None:
    """Run ``scan()`` under this worker's own tracer, when asked to.

    A task carrying a ``trace`` payload (the coordinator's serialized
    :class:`~repro.obs.tracing.TraceContext`) runs under a private
    :class:`Tracer` so instrumented call sites inside the scan record
    into a worker-local span tree — the tree the coordinator re-parents
    under its ``shard_scan_<i>`` span.  Returns the worker's root span
    (its ``io`` is filled with the shipped counter deltas by the
    caller), or ``None`` when the task is untraced.
    """
    trace = task.get("trace")
    if not trace:
        scan()
        return None
    tracer = Tracer()  # durations only; root I/O is the shipped deltas
    with thread_tracing(tracer):
        with tracer.span(
            "shard_worker",
            shard=task["shard"],
            pid=os.getpid(),
            executor=executor,
            trace_id=trace.get("trace_id"),
            span_id=trace.get("span_id"),
            parent_span_id=trace.get("parent_span_id"),
        ) as root:
            scan()
    return root


def run_inline_task(task: dict) -> dict:
    """Scan one chunk range in-process (``local``/``thread`` executors)."""
    _maybe_fail(task)
    started = time.perf_counter()
    counters = Counters()
    accumulator = ResultAccumulator(
        task["array"], task["specs"], task["aggregate"]
    )

    def scan() -> None:
        scan_chunk_range(
            task["array"],
            accumulator,
            range(task["start"], task["stop"]),
            task["mode"],
            allowed=task.get("allowed"),
            counters=counters,
        )

    root = _traced_scan(task, scan, executor="inline")
    deltas = counters.snapshot()
    result = {
        "shard": task["shard"],
        "accumulator": accumulator,
        "counters": deltas,
        "scan_s": time.perf_counter() - started,
    }
    if root is not None:
        root.io = dict(deltas)
        root.duration_s = result["scan_s"]
        result["trace"] = [span_to_dict(root)]
    return result


def _open_worker_db(task: dict):
    """Open (or reuse) this process's database for the task's image."""
    from repro.core.olap_array import OLAPArray
    from repro.relational.catalog import Database

    image_path = task["image_path"]
    if image_path not in _WORKER_STATE:
        # a new image means a new cube generation; drop stale handles so
        # the pool does not keep frames of a volume nobody will query
        for db, _arrays in _WORKER_STATE.values():
            db.close()
        _WORKER_STATE.clear()
        wal_dir = None
        if task.get("wal_base"):
            wal_dir = os.path.join(
                task["wal_base"], f"worker-{os.getpid()}"
            )
            os.makedirs(wal_dir, exist_ok=True)
        db = Database.open(
            image_path,
            wal_dir=wal_dir,
            pool_bytes=task["pool_bytes"],
            disk_model=task.get("disk_model"),
        )
        _WORKER_STATE[image_path] = (db, {})
    db, arrays = _WORKER_STATE[image_path]
    name = task["array_name"]
    if name not in arrays:
        arrays[name] = OLAPArray.open(db.fm, name)
    return db, arrays[name]


def run_shard_task(task: dict) -> dict:
    """Scan one chunk range in a worker process; return a picklable dict.

    The returned ``counters`` are *deltas* over this task (the worker's
    database is long-lived), so the coordinator can attribute pool hit
    rates and simulated I/O to individual shards.
    """
    _maybe_fail(task)
    started = time.perf_counter()
    db, array = _open_worker_db(task)
    before_array = array.counters.snapshot()
    before_pool = db.pool.counters.snapshot()
    before_disk = db.disk.counters.snapshot()
    counters = Counters()
    accumulator = ResultAccumulator(
        array, build_specs(task["specs"]), task["aggregate"]
    )

    def scan() -> None:
        scan_chunk_range(
            array,
            accumulator,
            range(task["start"], task["stop"]),
            task["mode"],
            allowed=task.get("allowed"),
            counters=counters,
        )

    root = _traced_scan(task, scan, executor="process")
    deltas = counters.snapshot()
    for bag, before in (
        (array.counters, before_array),
        (db.pool.counters, before_pool),
        (db.disk.counters, before_disk),
    ):
        after = bag.snapshot()
        for key in after:
            if key in _DELTA_KEYS and key not in deltas:
                deltas[key] = after[key] - before.get(key, 0.0)
    result = {
        "shard": task["shard"],
        "state": accumulator.export_state(),
        "counters": deltas,
        "scan_s": time.perf_counter() - started,
        # resident-set snapshot of this worker's private buffer pool —
        # the coordinator folds it into the memory accountant the same
        # way counter deltas fold into the query's metrics
        "pool_resident_bytes": float(db.pool.resident_bytes()),
    }
    if root is not None:
        # the root's inclusive I/O *is* the shipped delta bag, so the
        # coordinator-side re-parented tree decomposes exactly against
        # the shard_scan_<i> span that replays these deltas
        root.io = dict(deltas)
        root.duration_s = result["scan_s"]
        result["trace"] = [span_to_dict(root)]
    return result
