"""The per-shard scan task: one chunk range → one partial accumulator.

Two entry points run the *same* §4.1 scan
(:func:`repro.core.consolidate.scan_chunk_range`):

- :func:`run_inline_task` executes against live objects in the
  coordinator's process (the ``local`` and ``thread`` executors) and
  hands back the accumulator itself;
- :func:`run_shard_task` is the picklable process-executor task.  Each
  worker process opens its *own* database from the coordinator's volume
  image — own :class:`~repro.storage.buffer_pool.BufferPool`, own
  simulated disk, own WAL segment directory — and ships the partial
  aggregate back as an :meth:`export_state
  <repro.core.consolidate.ResultAccumulator.export_state>` payload plus
  the per-shard counters (chunk reads, cell scans, pool hit/miss and
  simulated I/O deltas) the coordinator folds into the query's metrics.

Databases are cached per ``(process, image path)``: a shard scan is
usually one of many against the same cube generation, so reopening the
image for every task would turn the buffer pool into a cold start each
time.  A new image path (new generation) evicts the old entry.
"""

from __future__ import annotations

import os
import time

from repro.core.consolidate import (
    ConsolidationSpec,
    ResultAccumulator,
    scan_chunk_range,
)
from repro.errors import QueryError, TransientDiskError
from repro.util.stats import Counters

#: per-process cache: image_path -> (Database, {array_name: OLAPArray})
_WORKER_STATE: dict = {}

#: the counter keys a worker reports back per shard
_DELTA_KEYS = (
    "chunks_read",
    "chunks_skipped",
    "cells_scanned",
    "chunk_bytes_read",
    "pool_hits",
    "pool_misses",
    "sim_io_s",
)


def _maybe_fail(task: dict) -> None:
    """Crash-injection hook: fail exactly once per marker file.

    The marker is removed *before* raising, so only the first worker to
    see it fails — the coordinator's re-scatter then succeeds.  Using
    the filesystem makes the injection visible across process
    boundaries, which in-memory monkeypatching cannot be.
    """
    marker = task.get("fail_marker")
    if marker and os.path.exists(marker):
        try:
            os.remove(marker)
        except FileNotFoundError:
            return  # another attempt consumed the failure
        raise TransientDiskError(
            f"injected shard worker failure (shard {task.get('shard')})"
        )


def build_specs(pairs: list[tuple[str, str | None]]) -> list[ConsolidationSpec]:
    """Rebuild ConsolidationSpecs from their picklable (kind, attr) form."""
    specs = []
    for kind, attr in pairs:
        if kind == "level":
            specs.append(ConsolidationSpec.level(attr))
        elif kind == "key":
            specs.append(ConsolidationSpec.key())
        elif kind == "drop":
            specs.append(ConsolidationSpec.drop())
        else:
            # "mapping" carries a live IndexToIndex — coordinator-side only
            raise QueryError(
                f"spec kind {kind!r} cannot cross a process boundary"
            )
    return specs


def run_inline_task(task: dict) -> dict:
    """Scan one chunk range in-process (``local``/``thread`` executors)."""
    _maybe_fail(task)
    started = time.perf_counter()
    counters = Counters()
    accumulator = ResultAccumulator(
        task["array"], task["specs"], task["aggregate"]
    )
    scan_chunk_range(
        task["array"],
        accumulator,
        range(task["start"], task["stop"]),
        task["mode"],
        allowed=task.get("allowed"),
        counters=counters,
    )
    return {
        "shard": task["shard"],
        "accumulator": accumulator,
        "counters": counters.snapshot(),
        "scan_s": time.perf_counter() - started,
    }


def _open_worker_db(task: dict):
    """Open (or reuse) this process's database for the task's image."""
    from repro.core.olap_array import OLAPArray
    from repro.relational.catalog import Database

    image_path = task["image_path"]
    if image_path not in _WORKER_STATE:
        # a new image means a new cube generation; drop stale handles so
        # the pool does not keep frames of a volume nobody will query
        for db, _arrays in _WORKER_STATE.values():
            db.close()
        _WORKER_STATE.clear()
        wal_dir = None
        if task.get("wal_base"):
            wal_dir = os.path.join(
                task["wal_base"], f"worker-{os.getpid()}"
            )
            os.makedirs(wal_dir, exist_ok=True)
        db = Database.open(
            image_path,
            wal_dir=wal_dir,
            pool_bytes=task["pool_bytes"],
            disk_model=task.get("disk_model"),
        )
        _WORKER_STATE[image_path] = (db, {})
    db, arrays = _WORKER_STATE[image_path]
    name = task["array_name"]
    if name not in arrays:
        arrays[name] = OLAPArray.open(db.fm, name)
    return db, arrays[name]


def run_shard_task(task: dict) -> dict:
    """Scan one chunk range in a worker process; return a picklable dict.

    The returned ``counters`` are *deltas* over this task (the worker's
    database is long-lived), so the coordinator can attribute pool hit
    rates and simulated I/O to individual shards.
    """
    _maybe_fail(task)
    started = time.perf_counter()
    db, array = _open_worker_db(task)
    before_array = array.counters.snapshot()
    before_pool = db.pool.counters.snapshot()
    before_disk = db.disk.counters.snapshot()
    counters = Counters()
    accumulator = ResultAccumulator(
        array, build_specs(task["specs"]), task["aggregate"]
    )
    scan_chunk_range(
        array,
        accumulator,
        range(task["start"], task["stop"]),
        task["mode"],
        allowed=task.get("allowed"),
        counters=counters,
    )
    deltas = counters.snapshot()
    for bag, before in (
        (array.counters, before_array),
        (db.pool.counters, before_pool),
        (db.disk.counters, before_disk),
    ):
        after = bag.snapshot()
        for key in after:
            if key in _DELTA_KEYS and key not in deltas:
                deltas[key] = after[key] - before.get(key, 0.0)
    return {
        "shard": task["shard"],
        "state": accumulator.export_state(),
        "counters": deltas,
        "scan_s": time.perf_counter() - started,
    }
