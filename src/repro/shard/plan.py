"""Shard planning: chunk-range assignments over the chunk directory.

A shard plan is pure metadata: it partitions ``range(n_chunks)`` into
contiguous near-equal ranges (reusing
:func:`repro.core.parallel.partition_chunks`, so the thread-partition
and shard layouts agree) and prices each range from the chunk meta
directory alone — non-empty chunks, stored bytes and valid cells, the
same catalog statistics the array EXPLAIN estimates are built from.
With a selection's final index lists the estimates are refined by grid
overlap: chunks whose index box misses the selection are excluded, and
surviving chunks' cell counts are scaled by the within-box selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.consolidate import allowed_masks
from repro.core.meta import NO_CHUNK
from repro.core.olap_array import OLAPArray
from repro.core.parallel import partition_chunks


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's contiguous chunk range plus its catalog estimates."""

    shard_no: int
    start: int
    stop: int
    est_chunks: int
    est_cells: int
    est_bytes: int

    @property
    def chunk_range(self) -> range:
        return range(self.start, self.stop)

    @property
    def n_chunks(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """The coordinator's chunk-range assignment for one query."""

    cube: str
    generation: int
    n_chunks: int
    executor: str
    assignments: tuple[ShardAssignment, ...]

    @property
    def shards(self) -> int:
        return len(self.assignments)

    @property
    def est_chunks(self) -> int:
        return sum(a.est_chunks for a in self.assignments)

    @property
    def est_cells(self) -> int:
        return sum(a.est_cells for a in self.assignments)

    def ranges_token(self) -> str:
        """Compact ``start:stop`` list, e.g. ``0:16,16:32`` (fingerprints,
        plan details)."""
        return ",".join(f"{a.start}:{a.stop}" for a in self.assignments)


def _box_selectivity(
    geometry, chunk_no: int, masks: list[np.ndarray]
) -> float:
    """Fraction of a chunk's index box that survives the selection."""
    origin = geometry.chunk_origin(chunk_no)
    fraction = 1.0
    for d, mask in enumerate(masks):
        box = mask[origin[d] : origin[d] + geometry.chunk_shape[d]]
        if not len(box):
            return 0.0
        hits = int(box.sum())
        if not hits:
            return 0.0
        fraction *= hits / len(box)
    return fraction


def plan_shards(
    array: OLAPArray,
    shards: int,
    executor: str = "local",
    cube: str = "",
    generation: int = 0,
    allowed: list[list[int]] | None = None,
) -> ShardPlan:
    """Assign contiguous chunk ranges to ``shards`` workers.

    ``allowed`` (the §4.2 per-dimension final index lists) refines the
    per-shard estimates to selection-overlapping chunks only — the same
    grid pruning the workers' filtered scan applies, so a cold sharded
    run's actual ``chunks_read`` matches its estimate exactly.
    """
    entries = array._entries()
    geometry = array.geometry
    masks = allowed_masks(array, allowed) if allowed is not None else None
    ranges = partition_chunks(geometry.n_chunks, shards)
    assignments = []
    for shard_no, chunk_range in enumerate(ranges):
        chunks = 0
        cells = 0.0
        nbytes = 0
        for chunk_no in chunk_range:
            oid, length, count = entries[chunk_no]
            if oid == NO_CHUNK or not count:
                continue
            if masks is not None:
                fraction = _box_selectivity(geometry, chunk_no, masks)
                if fraction == 0.0:
                    continue
                cells += count * fraction
            else:
                cells += count
            chunks += 1
            nbytes += length
        assignments.append(
            ShardAssignment(
                shard_no=shard_no,
                start=chunk_range.start,
                stop=chunk_range.stop,
                est_chunks=chunks,
                est_cells=round(cells),
                est_bytes=nbytes,
            )
        )
    return ShardPlan(
        cube=cube,
        generation=generation,
        n_chunks=geometry.n_chunks,
        executor=executor,
        assignments=tuple(assignments),
    )
