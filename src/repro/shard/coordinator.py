"""The shard coordinator: snapshot, scatter, re-scatter, merge.

One coordinator per :class:`~repro.olap.engine.OlapEngine`.  A sharded
consolidation runs in five phases, each a tracer span so EXPLAIN
ANALYZE binds estimates to measured actuals:

1. ``resolve_mappings`` — build the merged result accumulator;
2. ``btree_dimension_lookup`` — the §4.2 final index lists (when the
   query has selections; the lists also refine the shard plan);
3. ``shard_scatter`` — dispatch one task per chunk-range assignment to
   the selected executor.  A task lost to a
   :class:`~repro.errors.TransientError`, a straggler timeout, or a
   broken process pool is re-scattered (up to
   :attr:`~ShardCoordinator.MAX_RETRY_ROUNDS` extra rounds); shards
   still lost after that raise
   :class:`~repro.errors.ShardScatterError` — or, with
   ``allow_partial=True``, degrade to a partial result flagged in the
   query counters.  Completed shards get post-hoc ``shard_scan_<i>``
   child spans carrying their measured per-shard counters (worker
   threads and processes trace into their own roots, so the coordinator
   re-binds the actuals on its own thread).
4. ``shard_merge`` — fold the partial accumulators (or, for process
   workers, their exported states) into the merged result;
5. ``extract_rows`` — sorted output rows.

Process workers scan a *volume image*: the coordinator flushes the
buffer pool and saves the simulated disk once per cube generation, and
workers open their own database (own pool, own WAL segment directory)
from that image.  Worker-simulated I/O is folded back into the parent
disk's ``sim_io_s`` so cost accounting stays comparable with the
thread path.

Metrics flow into the registry's keep-reset ``engine:shard`` bag
(``shard.queries``, ``shard.scatter_ms``, ``shard.merge_ms``,
``shard.retries``, ``shard.timeouts``, ``shard.partial_results``,
per-shard ``shard.<i>.pool_hits``/``pool_misses``) and into the
``engine.shard.scatter_seconds`` / ``merge_seconds`` /
``scan_seconds`` histograms — the same stack the time-series store and
alert rules sample.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.core.consolidate import ConsolidationResult, ResultAccumulator
from repro.core.select_consolidate import _final_index_lists
from repro.errors import QueryError, ShardScatterError, TransientError
from repro.obs.exporters import span_from_dict
from repro.obs.tracer import get_tracer
from repro.obs.tracing import current_trace_context, new_trace_context
from repro.shard.executor import ShardExecutor, make_executor
from repro.shard.plan import ShardPlan, plan_shards
from repro.shard.worker import run_inline_task, run_shard_task
from repro.util.stats import Counters

#: array-counter keys re-added per shard (skip in the shared-bag merge)
_PER_SHARD_KEYS = {"chunks_read"}


class ShardCoordinator:
    """Plans, scatters and merges sharded consolidations for one engine."""

    #: extra scatter rounds for lost shards before giving up
    MAX_RETRY_ROUNDS = 2
    #: straggler timeout per scatter round (thread/process executors)
    DEFAULT_TIMEOUT_S = 60.0

    def __init__(self, engine):
        self.engine = engine
        self.timeout_s: float | None = self.DEFAULT_TIMEOUT_S
        # keep-reset like engine:explain / the serving counters: a cold
        # query run must not zero the cumulative shard totals
        self.counters = engine.db.metrics.register(
            "engine:shard", Counters(), reset=lambda: None, replace=True
        )
        self._workspace: str | None = None
        self._images: dict[str, tuple[int, str]] = {}
        self._executors: dict[str, ShardExecutor] = {}
        #: last reported buffer-pool bytes per process-worker shard —
        #: the memory accountant's view of memory held *outside* this
        #: process (folded back like the counter deltas are)
        self._worker_pool_bytes: dict[int, float] = {}

    # -- workspace / executors ------------------------------------------------

    def workspace(self) -> str:
        """Lazy scratch directory: volume images, WAL segments, markers."""
        if self._workspace is None:
            self._workspace = tempfile.mkdtemp(prefix="repro-shard-")
        return self._workspace

    def executor(self, name: str) -> ShardExecutor:
        """The cached executor for ``name`` (pools persist across queries)."""
        if name not in self._executors:
            self._executors[name] = make_executor(name)
        return self._executors[name]

    def _marker_path(self, shard_no: int) -> str:
        return os.path.join(self.workspace(), f"fail-shard-{shard_no}")

    def inject_fail_once(self, shard_no: int) -> str:
        """Test hook: make shard ``shard_no``'s next attempt fail once.

        Creates the filesystem marker :func:`repro.shard.worker` checks —
        visible across process boundaries, consumed by the first attempt
        that sees it, so the coordinator's re-scatter succeeds.
        """
        marker = self._marker_path(shard_no)
        with open(marker, "w"):
            pass
        return marker

    def _image_for(self, cube: str, state) -> str:
        """The volume image process workers open; one per cube generation."""
        generation = state.generation
        cached = self._images.get(cube)
        if cached is not None and cached[0] == generation:
            return cached[1]
        # committed state is durable in pages/WAL; flushing makes every
        # page visible to disk.save so the image is self-contained
        self.engine.db.pool.flush_all()
        path = os.path.join(self.workspace(), f"{cube}-gen{generation}.img")
        self.engine.db.disk.save(path)
        if cached is not None and cached[1] != path:
            try:
                os.remove(cached[1])
            except OSError:
                pass
        self._images[cube] = (generation, path)
        return path

    # -- planning -------------------------------------------------------------

    def plan(
        self,
        array,
        shards: int,
        executor: str = "local",
        cube: str = "",
        generation: int = 0,
        allowed: list[list[int]] | None = None,
    ) -> ShardPlan:
        return plan_shards(
            array,
            shards,
            executor=executor,
            cube=cube,
            generation=generation,
            allowed=allowed,
        )

    # -- the scatter-gather consolidation ------------------------------------

    def consolidate(
        self,
        ctx,
        array,
        specs,
        selections,
        aggregate,
        cube: str,
        state,
    ) -> ConsolidationResult:
        """Run one sharded consolidation under the backend context."""
        tracer = get_tracer()
        counters = ctx.counters
        bag = self.counters
        bag.add("shard.queries")

        with tracer.span("resolve_mappings"):
            merged = ResultAccumulator(array, specs, aggregate)
        allowed = None
        if selections:
            with tracer.span("btree_dimension_lookup"):
                allowed = _final_index_lists(array, list(selections), counters)

        plan = self.plan(
            array,
            ctx.shards,
            executor=ctx.executor,
            cube=cube,
            generation=state.generation,
            allowed=allowed,
        )
        executor = self.executor(ctx.executor)
        # the distributed trace context crossing into the workers: the
        # ExecutionOptions-carried context wins, then the thread-local
        # one; a live tracer with neither (EXPLAIN ANALYZE from the
        # CLI) mints a scatter-local root so workers still ship trees
        trace = getattr(ctx, "trace", None) or current_trace_context()
        if trace is None and tracer.enabled:
            trace = new_trace_context(origin="shard-scatter")
        task_trace = trace if tracer.enabled else None
        tasks, fn, cleanup = self._build_tasks(
            plan, array, specs, aggregate, ctx.mode, allowed, cube, state,
            trace=task_trace,
        )
        timeout_s = None if ctx.executor == "local" else self.timeout_s

        scatter_started = time.perf_counter()
        with tracer.span(
            "shard_scatter",
            shards=plan.shards,
            executor=plan.executor,
            ranges=plan.ranges_token(),
            **({"trace_id": trace.trace_id} if trace is not None else {}),
        ) as scatter_span:
            try:
                partials, lost = self._scatter_with_retry(
                    executor, fn, tasks, timeout_s
                )
            finally:
                cleanup()
            if lost:
                lost_token = ",".join(
                    f"{t['start']}:{t['stop']}" for t in lost
                )
                if not ctx.allow_partial:
                    raise ShardScatterError(
                        f"lost chunk ranges [{lost_token}] after "
                        f"{self.MAX_RETRY_ROUNDS} re-scatter rounds"
                    )
                bag.add("shard.partial_results")
                counters.add("shard_partial", len(lost))
                scatter_span.annotate(partial=True, lost_ranges=lost_token)
            self._bind_shard_actuals(ctx, plan, partials)
            if ctx.executor in ("local", "thread"):
                # inline scans accumulated into the shared array bag;
                # chunks_read was re-added per shard just above, so only
                # the remaining keys (bytes, dir/i2i loads) merge here
                for key, value in array.counters.snapshot().items():
                    if key not in _PER_SHARD_KEYS:
                        counters.add(key, value)
                array.counters.reset()
        scatter_s = time.perf_counter() - scatter_started
        bag.add("shard.scatter_ms", scatter_s * 1e3)
        self.engine.db.metrics.observe(
            "engine.shard.scatter_seconds",
            scatter_s,
            trace_id=trace.trace_id if trace is not None else None,
        )

        merge_started = time.perf_counter()
        with tracer.span("shard_merge", shards=len(partials)):
            for shard_no in sorted(partials):
                result = partials[shard_no]
                if "accumulator" in result:
                    merged.merge_from(result["accumulator"])
                else:
                    partial = ResultAccumulator(array, specs, aggregate)
                    partial.import_state(result["state"])
                    merged.merge_from(partial)
            counters.add("result_cells", merged.touched_cells())
        merge_s = time.perf_counter() - merge_started
        bag.add("shard.merge_ms", merge_s * 1e3)
        self.engine.db.metrics.observe("engine.shard.merge_seconds", merge_s)

        counters.add("shards", plan.shards)
        with tracer.span("extract_rows"):
            rows = merged.rows()
        return ConsolidationResult(rows=rows, counters=counters)

    # -- task construction ----------------------------------------------------

    def _build_tasks(
        self, plan, array, specs, aggregate, mode, allowed, cube, state,
        trace=None,
    ):
        """Tasks + task function + post-scatter cleanup for the executor.

        ``trace`` is the scatter's :class:`TraceContext`; each task gets
        its own child context (fresh span identity, same trace) in the
        picklable ``to_dict`` form, which makes the worker run its scan
        under a local tracer and ship the span tree back.
        """

        def task_trace() -> dict | None:
            return trace.child().to_dict() if trace is not None else None

        if plan.executor == "process":
            for spec in specs:
                if spec.kind == "mapping":
                    raise QueryError(
                        "mapping specs cannot shard across processes"
                    )
            image_path = self._image_for(cube, state)
            wal_base = os.path.join(self.workspace(), "wal")
            os.makedirs(wal_base, exist_ok=True)
            pool = self.engine.db.pool
            common = {
                "image_path": image_path,
                "wal_base": wal_base,
                "pool_bytes": pool.capacity_frames * self.engine.db.disk.page_size,
                "disk_model": self.engine.db.disk.model,
                "array_name": array.name,
                "specs": [(s.kind, s.attr) for s in specs],
                "aggregate": aggregate,
                "mode": mode,
                "allowed": allowed,
            }
            tasks = [
                dict(
                    common,
                    shard=a.shard_no,
                    start=a.start,
                    stop=a.stop,
                    fail_marker=self._marker_path(a.shard_no),
                    trace=task_trace(),
                )
                for a in plan.assignments
            ]
            return tasks, run_shard_task, lambda: None

        tasks = [
            {
                "shard": a.shard_no,
                "array": array,
                "specs": specs,
                "aggregate": aggregate,
                "mode": mode,
                "allowed": allowed,
                "start": a.start,
                "stop": a.stop,
                "fail_marker": self._marker_path(a.shard_no),
                "trace": task_trace(),
            }
            for a in plan.assignments
        ]
        cleanup = lambda: None  # noqa: E731
        if plan.executor == "thread":
            # same preparation as parallel._scan_threaded: resolve the
            # lazy chunk directory on this thread, and serialize buffer
            # pool access through a (possibly temporary) chunk cache
            array._entries()
            if array.chunk_cache is None:
                from repro.serve.chunk_cache import ChunkCache

                temporary = ChunkCache(max_chunks=max(8, plan.shards))
                array.chunk_cache = temporary

                def cleanup() -> None:
                    array.chunk_cache = None
                    temporary.clear()

        return tasks, run_inline_task, cleanup

    # -- scatter / retry ------------------------------------------------------

    def _scatter_with_retry(
        self,
        executor: ShardExecutor,
        fn,
        tasks: list[dict],
        timeout_s: float | None,
    ):
        """Scatter; re-scatter lost tasks; return (partials, still_lost)."""
        bag = self.counters
        pending = list(tasks)
        partials: dict[int, dict] = {}
        rounds = 0
        while pending:
            raw = executor.map_tasks(fn, pending, timeout_s=timeout_s)
            failed = []
            for task, outcome in zip(pending, raw):
                if isinstance(outcome, BaseException):
                    retryable = isinstance(
                        outcome,
                        (TransientError, FuturesTimeoutError, BrokenProcessPool),
                    )
                    if not retryable:
                        raise outcome
                    if isinstance(outcome, FuturesTimeoutError):
                        bag.add("shard.timeouts")
                    failed.append(task)
                else:
                    partials[outcome["shard"]] = outcome
            if not failed:
                break
            rounds += 1
            if rounds > self.MAX_RETRY_ROUNDS:
                return partials, failed
            bag.add("shard.retries", len(failed))
            pending = failed
        return partials, []

    # -- actuals binding ------------------------------------------------------

    def _bind_shard_actuals(self, ctx, plan: ShardPlan, partials: dict) -> None:
        """Re-bind worker-measured counters as coordinator-thread spans.

        Worker threads/processes trace into their own roots (or not at
        all), so EXPLAIN ANALYZE would see empty scan nodes.  Opening
        ``shard_scan_<i>`` spans here — while ``ctx.counters`` is the
        registry-scoped query bag — makes each shard's measured chunk
        and cell counts the span's I/O delta, exactly what
        ``attach_actuals`` binds to the plan's ``shard.scan[i]`` nodes.
        """
        tracer = get_tracer()
        counters = ctx.counters
        bag = self.counters
        inline = plan.executor in ("local", "thread")
        for assignment in plan.assignments:
            result = partials.get(assignment.shard_no)
            if result is None:
                continue  # lost shard (partial mode)
            deltas = result["counters"]
            with tracer.span(
                f"shard_scan_{assignment.shard_no}",
                shard=assignment.shard_no,
                chunks=assignment.n_chunks,
                executor=plan.executor,
            ) as span:
                span.annotate(scan_s=round(result["scan_s"], 6))
                # fold on key *presence*: a measured zero ("this shard
                # read nothing") is a report, not an absence, and
                # truthiness used to drop it on the floor
                for key in ("chunks_read", "cells_scanned", "chunks_skipped"):
                    if key in deltas:
                        counters.add(key, deltas[key])
                if not inline:
                    if "chunk_bytes_read" in deltas:
                        counters.add(
                            "chunk_bytes_read", deltas["chunk_bytes_read"]
                        )
                    # the worker's simulated I/O happened on its own
                    # disk; fold it into the parent's so cost accounting
                    # (result.sim_io_s) matches the thread path
                    if "sim_io_s" in deltas:
                        self.engine.db.disk.counters.add(
                            "sim_io_s", deltas["sim_io_s"]
                        )
                worker_roots = result.get("trace")
                if worker_roots and tracer.enabled:
                    # re-parent the worker's serialized span tree under
                    # this shard's span: one contiguous tree per query,
                    # even when the scan ran in another process
                    span.children.extend(
                        span_from_dict(payload) for payload in worker_roots
                    )
            self.engine.db.metrics.observe(
                "engine.shard.scan_seconds", result["scan_s"]
            )
            if not inline:
                for key in ("pool_hits", "pool_misses"):
                    if key in deltas:
                        bag.add(
                            f"shard.{assignment.shard_no}.{key}", deltas[key]
                        )
                if "pool_resident_bytes" in result:
                    self._worker_pool_bytes[assignment.shard_no] = float(
                        result["pool_resident_bytes"]
                    )

    def worker_pool_resident_bytes(self) -> float:
        """Last-known buffer-pool bytes summed across process workers.

        Inline executors share the parent's pool (already accounted),
        so only process-worker reports land here.
        """
        return float(sum(self._worker_pool_bytes.values()))

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut down executor pools and remove the scratch workspace."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()
        self._images.clear()
        self._worker_pool_bytes.clear()
        if self._workspace is not None:
            shutil.rmtree(self._workspace, ignore_errors=True)
            self._workspace = None
        try:
            self.engine.db.metrics.unregister("engine:shard")
        except Exception:
            pass
