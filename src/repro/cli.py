"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info`` — version, available scales and experiment ids.
- ``demo`` — build a synthetic cube and run the paper's Query 1/2/3
  through every backend, printing a cost table (``--json`` for a
  machine-readable report).
- ``trace`` — run one query cold with the span tracer on and print the
  nested phase tree with per-phase I/O counter deltas; with ``--id`` and
  ``--url``, fetch one recorded distributed trace from a running
  endpoint's ``/trace/id/<trace_id>`` route instead (the id a response's
  ``X-Trace-Id`` header, a slowlog entry, or a histogram exemplar named).
- ``explain`` — EXPLAIN / EXPLAIN ANALYZE one of the paper's queries:
  the backend's plan tree with per-node cost estimates, and with
  ``--analyze`` the measured actuals, misestimate factors and (for the
  array backend) the chunk heatmap delta; ``--json`` for the machine
  shape, ``--validate SCHEMA`` to check it against the checked-in
  schema (the CI explain-smoke does).
- ``sql`` — run one SQL-subset statement against a synthetic cube.
- ``storage`` — print the storage report for a synthetic cube.
- ``bench`` — run one experiment's benchmark module via pytest.
- ``serve`` — drive a concurrent mixed workload through the
  `QueryService` and print cache-hit rate and p50/p95/p99 latency;
  ``--metrics-port`` exposes the live ``/metrics`` / ``/healthz`` /
  ``/slowlog`` endpoint while the workload runs.
- ``obs-server`` — standalone observability endpoint over a trickle
  workload (scrape target for ``repro top`` / Prometheus).
- ``slowlog`` — dump the slow-query ring buffer as JSON, either from a
  local synthetic workload or from a running endpoint (``--url``).
- ``top`` — terminal dashboard (QPS, latency quantiles, cache hit
  rates, WAL fsync latency) polled from a ``/metrics`` endpoint.
- ``bench-smoke`` — the CI serving smoke: warm + concurrent run over a
  file-backed WAL, scrape-endpoint lint, ``BENCH_serving.json``
  artifact (plus a timestamped copy under ``benchmarks/results/``);
  non-zero exit on any regression.
- ``bench-diff`` — compare two bench-smoke artifacts and exit non-zero
  when the concurrent p95 regressed past ``--max-p95-regress``; with a
  single path the repo-root ``BENCH_serving.json`` is the baseline.
- ``bench-trend`` — walk every archived artifact under
  ``benchmarks/results/``, render each scale's p50/p95 trajectory with
  a sparkline, and gate the newest p95 against the median of the
  earlier runs.
- ``soak`` — seeded skewed/bursty replay workload for N seconds with
  the full temporal stack live (TSDB sampler, SLO alerts, sampling
  profiler); emits a ``BENCH_soak.json`` trend artifact with
  time-bucketed p50/p95/p99, throughput and the alert transition log;
  ``--inject-breach`` demonstrates one firing→resolved alert cycle.
- ``replay`` — seeded skewed/bursty HTTP traffic replay against the
  slicer API stack (logical model → rollup router → service), gating on
  zero 5xx, router hit-rate and routed-vs-base latency; emits a
  ``BENCH_api.json`` artifact.
- ``api-serve`` — standalone slicer-style HTTP query API
  (``/cube/<name>/aggregate`` drilldown/cut requests) over a synthetic
  cube.
- ``watch`` — terminal trend view (sparklines per metric) polled from a
  ``/timeseries`` endpoint, with firing alerts inlined.
- ``alert-lint`` — validate an SLO rule file against the checked-in
  schema and parse it through the alert manager's loader.
- ``trace-smoke`` — the CI distributed-tracing gate: a 4-shard
  process-executor query whose flight-recorder trace must decompose
  (scatter counter deltas == re-parented worker span deltas), plus an
  API request whose ``X-Trace-Id`` must resolve to the rollup rebuild it
  scheduled; validates both against ``trace.schema.json``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro import __version__
from repro.bench.harness import (
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
    run_cold_traced,
    run_concurrent,
    run_warm,
)
from repro.data.datasets import SCALES, dataset1
from repro.olap.options import ExecutionOptions
from repro.obs.exporters import (
    prometheus_text,
    render_span_tree,
    trace_to_json,
)

EXPERIMENTS = (
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "storage_sizes", "storage_crossover", "storage_snowflake", "load_costs",
    "ablation_compression", "ablation_chunk_count", "ablation_leftdeep",
    "ablation_fact_file", "ablation_chunk_order", "ablation_modes",
    "ablation_cube", "ablation_select_baselines",
)


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="workload scale (default: $REPRO_SCALE or medium)",
    )


def _add_shard_arguments(
    parser: argparse.ArgumentParser,
    default_shards: int = 1,
    default_executor: str = "local",
) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=default_shards,
        help="chunk-range shards to scatter array consolidations over "
        f"(default {default_shards})",
    )
    parser.add_argument(
        "--executor",
        choices=("local", "thread", "process"),
        default=default_executor,
        help="where shard scans run when --shards > 1 "
        f"(default {default_executor})",
    )


def cmd_info(args) -> int:
    print(f"repro {__version__} — ICDE 1998 OLAP Array ADT reproduction")
    print(f"scales: {', '.join(SCALES)}")
    print(f"experiments: {', '.join(EXPERIMENTS)}")
    return 0


def cmd_demo(args) -> int:
    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    as_json = getattr(args, "json", False)
    if not as_json:
        print(
            f"building {config.name}: dims={config.dim_sizes} "
            f"valid={config.n_valid} ({config.density:.1%} dense) ..."
        )
    engine = build_cube_engine(config, settings, fact_btrees=True)
    plans = [
        ("Query 1 (consolidation)", query1_for(config), ("array", "starjoin", "leftdeep")),
        ("Query 2 (4-dim selection)", query2_for(config), ("array", "bitmap", "btree")),
        ("Query 3 (3-dim selection)", query3_for(config), ("array", "bitmap")),
    ]
    report = {
        "scale": settings.scale,
        "cube": config.name,
        "dim_sizes": list(config.dim_sizes),
        "n_valid": config.n_valid,
        "queries": [],
    }
    for title, query, backends in plans:
        if not as_json:
            print(f"\n{title}:")
        entry = {"title": title, "backends": [], "planner_pick": None}
        for backend in backends:
            result = run_cold(engine, query, backend)
            if as_json:
                entry["backends"].append(
                    {
                        "backend": backend,
                        "cost_s": result.cost_s,
                        "elapsed_s": result.elapsed_s,
                        "sim_io_s": result.sim_io_s,
                        "rows": len(result),
                        "stats": result.stats,
                    }
                )
            else:
                print(
                    f"    {backend:<9} cost={result.cost_s:7.3f}s "
                    f"(cpu {result.elapsed_s:.3f} + io {result.sim_io_s:.3f})  "
                    f"rows={len(result)}"
                )
        auto = engine.query(query, backend="auto")
        entry["planner_pick"] = auto.backend
        report["queries"].append(entry)
        if not as_json:
            print(f"    planner would pick: {auto.backend}")
    if as_json:
        print(json.dumps(report, indent=2))
    return 0


_TRACE_QUERIES = {"q1": query1_for, "q2": query2_for, "q3": query3_for}


def _cmd_trace_by_id(args) -> int:
    """Fetch one stored trace from a running observability endpoint."""
    import urllib.error

    from repro.obs.exporters import span_from_dict
    from repro.obs.top import fetch_metrics

    if not args.url:
        print(
            "trace --id needs --url <observability endpoint>",
            file=sys.stderr,
        )
        return 2
    trace_id = args.id.strip().lower()
    url = f"{args.url.rstrip('/')}/trace/id/{trace_id}"
    try:
        payload = json.loads(fetch_metrics(url))
    except urllib.error.HTTPError as exc:
        print(f"trace {trace_id}: HTTP {exc.code} from {url}", file=sys.stderr)
        return 1
    print(
        f"trace {payload['trace_id']} [{payload['status']}] "
        f"{payload['name']} origin={payload['origin']} "
        f"latency={payload['latency_s'] * 1000:.3f}ms "
        f"spans={payload['spans']}"
    )
    for link in payload.get("links", ()):
        detail = link.get("detail", "")
        print(
            f"-- link {link['kind']} -> {link['trace_id']}"
            + (f" ({detail})" if detail else "")
        )
    for root in payload.get("roots", ()):
        print(render_span_tree(span_from_dict(root)))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"-- trace written to {args.json}")
    return 0


def cmd_trace(args) -> int:
    if args.id:
        return _cmd_trace_by_id(args)
    if args.query is None:
        print(
            "trace: give a query (q1/q2/q3) to run locally, or "
            "--id <trace_id> --url <endpoint> to fetch a stored trace",
            file=sys.stderr,
        )
        return 2
    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    query = _TRACE_QUERIES[args.query](config)
    engine = build_cube_engine(config, settings, fact_btrees=True)
    result, root = run_cold_traced(
        engine, query, args.backend, mode=args.mode
    )
    print(render_span_tree(root))
    print(
        f"-- backend={result.backend} cost={result.cost_s:.3f}s "
        f"(cpu {result.elapsed_s:.3f} + io {result.sim_io_s:.3f}) "
        f"rows={len(result)}"
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(trace_to_json([root]))
            handle.write("\n")
        print(f"-- trace written to {args.json}")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(engine.db.metrics))
        print(f"-- metrics written to {args.prom}")
    return 0


def cmd_explain(args) -> int:
    from repro.obs.explain import render_plan

    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    query = _TRACE_QUERIES[args.query](config)
    engine = build_cube_engine(config, settings, fact_btrees=True)
    plan = engine.explain(
        query,
        ExecutionOptions(
            backend=args.backend,
            mode=args.mode,
            order=args.order,
            shards=args.shards,
            executor=args.executor,
        ),
        analyze=args.analyze,
    )
    payload = plan.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_plan(plan))
    if args.validate:
        from repro.util.jsonschema_lite import SchemaError, validate

        with open(args.validate, encoding="utf-8") as handle:
            schema = json.load(handle)
        try:
            validate(payload, schema)
        except SchemaError as exc:
            print(f"FAIL: schema validation: {exc}", file=sys.stderr)
            return 1
        print(f"-- payload validates against {args.validate}", file=sys.stderr)
    return 0


def cmd_sql(args) -> int:
    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]
    engine = build_cube_engine(config, settings)
    result = engine.sql(config.name, args.statement, backend=args.backend)
    for row in result.rows[: args.limit]:
        print("\t".join(str(v) for v in row))
    if len(result.rows) > args.limit:
        print(f"... ({len(result.rows)} rows total)")
    print(
        f"-- backend={result.backend} cost={result.cost_s:.3f}s",
        file=sys.stderr,
    )
    return 0


def cmd_storage(args) -> int:
    settings = bench_settings(args.scale)
    for config in dataset1(settings.scale):
        engine = build_cube_engine(config, settings, fact_btrees=True)
        report = engine.storage_report(config.name)
        print(f"{config.name} (density {config.density:.1%}):")
        for name, value in sorted(report.items()):
            print(f"    {name:<18} {value:>12,} B")
    return 0


def cmd_serve(args) -> int:
    import tempfile
    import time

    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    print(
        f"building {config.name}: dims={config.dim_sizes} "
        f"valid={config.n_valid} ..."
    )
    queries = [query1_for(config), query2_for(config), query3_for(config)]
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as wal_dir:
        engine = build_cube_engine(config, settings, wal_dir=wal_dir)

        # run_warm owns a private single-worker service; it must finish
        # (and unregister its serve:* sources) before the shared service
        # below registers the same names.
        warm = run_warm(engine, queries[0], backend="array")
        print(
            f"warm q1: cold={warm.cold.cost_s:.3f}s "
            f"warm(p50)={warm.warm_cost_s * 1000:.3f}ms "
            f"hit-rate={warm.hit_rate:.0%} speedup={warm.speedup:,.0f}x"
        )

        service = server = None
        if args.metrics_port is not None:
            from repro.obs.server import ObservabilityServer
            from repro.serve import QueryService, ServiceConfig

            service = QueryService(
                engine,
                ServiceConfig(
                    max_workers=args.threads,
                    max_in_flight=2 * args.threads * len(queries),
                    slowlog_threshold_s=args.slow_threshold,
                    timeseries_interval_s=0.5,
                    profile_sampling_s=0.005,
                    shards=args.shards,
                    executor=args.executor,
                ),
            )
            server = ObservabilityServer(
                engine.db.metrics, service=service, port=args.metrics_port
            ).start()
            print(
                f"observability endpoint: {server.url}/metrics "
                f"(also /healthz /slowlog /trace/<fingerprint> "
                f"/timeseries /alerts /profile)"
            )
        try:
            report = run_concurrent(
                engine,
                queries,
                n_threads=args.threads,
                rounds=args.rounds,
                service=service,
            )
            print(
                f"concurrent ({report.n_threads} threads, {args.rounds} rounds, "
                f"{len(report.latencies_s)} queries): "
                f"hit-rate={report.hit_rate:.0%} "
                f"p50={report.p50_s * 1000:.3f}ms "
                f"p95={report.p95_s * 1000:.3f}ms "
                f"p99={report.p99_s * 1000:.3f}ms"
            )
            for name in sorted(report.stats):
                if name.startswith(("result_cache", "chunk_cache", "serve")):
                    print(f"    {name:<32} {report.stats[name]:>10,.0f}")
            if service is not None:
                print(
                    f"slowlog: {len(service.slowlog)} entries "
                    f"(threshold {args.slow_threshold * 1000:.0f}ms)"
                )
            if server is not None and args.linger > 0:
                print(f"lingering {args.linger:.0f}s for scrapes ...")
                time.sleep(args.linger)
        finally:
            if server is not None:
                server.stop()
            if service is not None:
                service.close()
    return 0


def _obs_stack(args, slowlog_threshold_s: float):
    """Build the (engine, queries, service) trio the obs commands share.

    The engine runs over a file-backed WAL in a caller-owned temp dir so
    fsync/commit histograms carry real observations.
    """
    from repro.serve import QueryService, ServiceConfig

    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    engine = build_cube_engine(config, settings, wal_dir=args.wal_dir)
    queries = [query1_for(config), query2_for(config), query3_for(config)]
    service = QueryService(
        engine,
        ServiceConfig(
            max_workers=args.threads,
            max_in_flight=4 * args.threads * len(queries),
            slowlog_threshold_s=slowlog_threshold_s,
            timeseries_interval_s=0.5,
            profile_sampling_s=0.005,
        ),
    )
    return engine, queries, service


def cmd_obs_server(args) -> int:
    import tempfile
    import threading

    from repro.obs.server import ObservabilityServer

    with tempfile.TemporaryDirectory(prefix="repro-obs-") as wal_dir:
        args.wal_dir = wal_dir
        print("building workload cube ...")
        engine, queries, service = _obs_stack(args, args.slow_threshold)
        server = ObservabilityServer(
            engine.db.metrics, service=service, port=args.port
        ).start()
        stop = threading.Event()

        def trickle() -> None:
            # round-robin the paper's three queries so every scrape sees
            # fresh counters and latency observations
            index = 0
            while not stop.is_set():
                try:
                    service.execute(queries[index % len(queries)])
                except Exception:
                    pass  # degraded cube etc.; /healthz reports it
                index += 1
                stop.wait(args.think_time)

        worker = threading.Thread(
            target=trickle, name="repro-obs-trickle", daemon=True
        )
        worker.start()
        print(
            f"serving {server.url}/metrics /healthz /slowlog "
            f"/trace/<fingerprint> /timeseries /alerts /profile"
            + (f" for {args.duration:.0f}s" if args.duration else "")
        )
        try:
            # park on an Event, not time.sleep: a C-level sleep has no
            # Python frame, so the sampling profiler would blame this
            # loop as busy instead of classifying it idle
            park = threading.Event()
            if args.duration:
                park.wait(args.duration)
            else:
                while True:
                    park.wait(3600)
        except KeyboardInterrupt:
            print("\ninterrupted")
        finally:
            stop.set()
            worker.join(timeout=5)
            server.stop()
            service.close()
    return 0


def cmd_slowlog(args) -> int:
    if args.url:
        from repro.obs.top import fetch_metrics

        print(fetch_metrics(f"{args.url.rstrip('/')}/slowlog"))
        return 0

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-slowlog-") as wal_dir:
        args.wal_dir = wal_dir
        engine, queries, service = _obs_stack(args, args.threshold)
        try:
            for _ in range(args.rounds):
                for query in queries:
                    service.execute(query)
            print(service.slowlog.to_json())
            print(
                f"-- {len(service.slowlog)} entries captured at threshold "
                f"{args.threshold * 1000:.1f}ms",
                file=sys.stderr,
            )
        finally:
            service.close()
    return 0


def _print_memory_payload(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2))
        return
    from repro.obs.top import _fmt_bytes

    total = payload["total_resident_bytes"]
    budget = payload["budget_bytes"]
    budget_note = (
        f"budget {_fmt_bytes(float(budget)).strip()}"
        if budget
        else "unbounded"
    )
    print(
        f"resident total {_fmt_bytes(float(total)).strip()} ({budget_note})"
    )
    stores = payload["stores"]
    for name in sorted(stores, key=lambda n: stores[n], reverse=True):
        share = stores[name] / total if total else 0.0
        print(
            f"  {name:<16} {_fmt_bytes(float(stores[name]))}  {share:6.1%}"
        )
    if payload["top_entries"]:
        print("largest entries:")
        for entry in payload["top_entries"]:
            print(
                f"  {entry['store']:<16} "
                f"{_fmt_bytes(float(entry['bytes']))}  {entry['key']}"
            )
    counters = payload.get("counters", {})
    events = counters.get("memory.pressure_events", 0)
    if events:
        print(
            f"pressure: {events:.0f} events, "
            f"{_fmt_bytes(counters.get('memory.reclaimed_bytes', 0.0)).strip()}"
            " reclaimed"
        )


def cmd_mem(args) -> int:
    if args.url:
        import urllib.request

        url = f"{args.url.rstrip('/')}/memory?top={args.top}"
        with urllib.request.urlopen(url, timeout=5.0) as response:
            payload = json.loads(response.read().decode("utf-8"))
        _print_memory_payload(payload, args.json)
        return 0

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-mem-") as wal_dir:
        args.wal_dir = wal_dir
        engine, queries, service = _obs_stack(args, 0.0)
        try:
            for _ in range(args.rounds):
                for query in queries:
                    service.execute(query)
            _print_memory_payload(service.memory.payload(args.top), args.json)
        finally:
            service.close()
    return 0


def cmd_top(args) -> int:
    import time

    from repro.obs.top import MetricsView, fetch_metrics, render_dashboard

    url = f"{args.url.rstrip('/')}/metrics"
    previous = None
    iteration = 0
    try:
        while args.iterations == 0 or iteration < args.iterations:
            if iteration:
                time.sleep(args.interval)
            current = MetricsView.from_text(fetch_metrics(url))
            frame = render_dashboard(previous, current, args.interval)
            if args.plain:
                print(f"-- {url} @ {time.strftime('%H:%M:%S')}")
                print(frame)
            else:
                print("\x1b[2J\x1b[H", end="")
                print(f"repro top — {url} @ {time.strftime('%H:%M:%S')}\n")
                print(frame)
            previous = current
            iteration += 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_bench_smoke(args) -> int:
    from repro.bench.serving_smoke import (
        archive_artifact,
        run_serving_smoke,
        write_artifact,
    )

    payload = run_serving_smoke(
        scale=args.scale,
        n_threads=args.threads,
        rounds=args.rounds,
        shards=args.shards,
        executor=args.executor,
    )
    write_artifact(payload, args.output)
    concurrent = payload["concurrent"]
    shard_note = (
        f"shards={payload['shards']}({payload['executor']}) "
        if payload["shards"] > 1
        else ""
    )
    print(
        f"bench-smoke [{payload['scale']}]: {shard_note}"
        f"p50={concurrent['p50_s'] * 1000:.3f}ms "
        f"p95={concurrent['p95_s'] * 1000:.3f}ms "
        f"p99={concurrent['p99_s'] * 1000:.3f}ms "
        f"hit-rate={concurrent['hit_rate']:.0%} "
        f"slowlog={payload['slowlog_entries']}"
    )
    print(f"artifact written to {args.output}")
    if args.results_dir:
        archived = archive_artifact(payload, args.results_dir)
        print(f"archived to {archived}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("scrape lint + histogram coverage: ok")
    return 0


def cmd_bench_diff(args) -> int:
    from repro.bench.diff import diff_artifacts, load_artifact

    baseline, candidate_path = args.baseline, args.candidate
    if candidate_path is None:
        if baseline is None:
            print(
                "FAIL: bench-diff needs at least a candidate artifact",
                file=sys.stderr,
            )
            return 1
        # one path: it is the candidate; the canonical repo-root
        # artifact (refreshed by every bench-smoke) is the baseline
        candidate_path, baseline = baseline, "BENCH_serving.json"
        print(f"baseline defaulted to {baseline}", file=sys.stderr)
    try:
        base = load_artifact(baseline)
        candidate = load_artifact(candidate_path)
    except (OSError, ValueError) as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    lines, failures = diff_artifacts(
        base, candidate, max_p95_regress=args.max_p95_regress
    )
    for line in lines:
        print(line)
    return 1 if failures else 0


def cmd_bench_trend(args) -> int:
    from repro.bench.trend import load_trend, render_trend

    notes: list[str] = []
    by_scale = load_trend(args.results_dir, notes=notes)
    if args.json:
        print(json.dumps(by_scale, indent=2))
    report, failed = render_trend(
        by_scale, max_p95_regress=args.max_p95_regress
    )
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    if not args.json:
        print(report)
    elif failed:
        print(report, file=sys.stderr)
    return 1 if failed else 0


def cmd_soak(args) -> int:
    from repro.bench.soak import run_soak, write_soak_artifact

    payload = run_soak(
        scale=args.scale,
        seconds=args.seconds,
        seed=args.seed,
        clients=args.clients,
        bucket_s=args.bucket,
        inject_breach=args.inject_breach,
        shards=args.shards,
        executor=args.executor,
        memory_budget=args.memory_budget,
    )
    write_soak_artifact(payload, args.output)
    latency = payload["latency"]
    print(
        f"soak [{payload['scale']}] {payload['seconds']:g}s seed={payload['seed']}: "
        f"{payload['queries']} queries ({payload['writes']} writes) "
        f"p50={latency['p50_s'] * 1000:.3f}ms "
        f"p95={latency['p95_s'] * 1000:.3f}ms "
        f"p99={latency['p99_s'] * 1000:.3f}ms "
        f"hit-rate={payload['hit_rate']:.0%}"
    )
    populated = [b for b in payload["buckets"] if b["count"]]
    print(
        f"  buckets: {len(populated)}/{len(payload['buckets'])} with traffic  "
        f"tsdb samples: {payload['timeseries']['samples_taken']}  "
        f"alert transitions: {len(payload['alerts']['events'])}  "
        f"profiler attribution: "
        f"{payload['profiler']['attributed_fraction']:.0%}"
    )
    memory = payload["memory"]
    budget_note = (
        f"budget={memory['budget_bytes']:,}B"
        if memory["budget_bytes"]
        else "unbounded"
    )
    print(
        f"  memory: high-water {memory['high_water_bytes']:,}B "
        f"({budget_note})  "
        f"pressure events {memory['pressure_events']:.0f}  "
        f"reclaimed {memory['reclaimed_bytes']:,.0f}B"
    )
    if payload["shards"] > 1:
        totals = payload["shard_counters"]
        print(
            f"  shards: {payload['shards']} ({payload['executor']})  "
            f"scattered={totals.get('shard.queries', 0):.0f}  "
            f"retries={totals.get('shard.retries', 0):.0f}  "
            f"scatter={totals.get('shard.scatter_ms', 0):.1f}ms  "
            f"merge={totals.get('shard.merge_ms', 0):.1f}ms"
        )
    injected = payload["alerts"]["injected"]
    if injected is not None:
        print(
            f"  injected rule: fired {injected['firings']}x, "
            f"resolved={injected['resolved']}"
        )
    print(f"artifact written to {args.output}")
    if args.validate:
        from repro.util.jsonschema_lite import SchemaError, validate

        with open(args.validate, encoding="utf-8") as handle:
            schema = json.load(handle)
        try:
            validate(payload, schema)
        except SchemaError as exc:
            print(f"FAIL: schema validation: {exc}", file=sys.stderr)
            return 1
        print(f"-- artifact validates against {args.validate}", file=sys.stderr)
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_replay(args) -> int:
    from repro.api.replay import (
        ReplaySettings,
        run_replay,
        write_replay_artifact,
    )

    report = run_replay(
        ReplaySettings(
            scale=args.scale,
            requests=args.requests,
            seed=args.seed,
            clients=args.clients,
            write_every=args.write_every,
            model_path=args.model,
            cube=args.cube,
            memory_budget=args.memory_budget,
        )
    )
    payload = report.payload
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2))
    else:
        statuses = payload["statuses"]
        rollup = payload["rollup"]
        latency = payload["latency"]
        print(
            f"replay [{payload['scale']}] {payload['requests']} requests "
            f"seed={payload['seed']} clients={payload['clients']}: "
            f"2xx={statuses['2xx']} 4xx={statuses['4xx']} "
            f"5xx={statuses['5xx']} writes={payload['writes']}"
        )
        print(
            f"  rollup: hits={rollup['hits']} "
            f"base={rollup['base_fallbacks']} "
            f"hit-rate={rollup['hit_rate']:.0%} "
            f"resident={rollup['resident']} "
            f"rebuilds={rollup['counters'].get('rollup.rebuilds', 0):.0f} "
            f"stale={rollup['counters'].get('rollup.stale', 0):.0f}"
        )
        print(
            f"  latency p95: all={latency['all']['p95_s'] * 1000:.3f}ms "
            f"routed={latency['routed']['p95_s'] * 1000:.3f}ms "
            f"base={latency['base']['p95_s'] * 1000:.3f}ms"
        )
        probe = payload["explain_probe"]
        print(
            f"  explain probe: root={probe['root_op']} "
            f"rollup={probe['rollup']} analyzed={probe['analyzed']}"
        )
    write_replay_artifact(payload, args.output)
    if not getattr(args, "json", False):
        print(f"artifact written to {args.output}")
    if args.validate_response or args.validate_plan:
        from repro.util.jsonschema_lite import SchemaError, validate

        checks = []
        if args.validate_response:
            checks.append(
                (args.validate_response, payload.get("sample_response"),
                 "sample response")
            )
        if args.validate_plan:
            checks.append(
                (args.validate_plan, payload["explain_probe"].get("plan"),
                 "explain probe plan")
            )
        for schema_path, document, label in checks:
            if document is None:
                print(f"FAIL: no {label} captured to validate",
                      file=sys.stderr)
                return 1
            with open(schema_path, encoding="utf-8") as handle:
                schema = json.load(handle)
            try:
                validate(document, schema)
            except SchemaError as exc:
                print(
                    f"FAIL: {label} vs {schema_path}: {exc}",
                    file=sys.stderr,
                )
                return 1
            print(
                f"-- {label} validates against {schema_path}",
                file=sys.stderr,
            )
    if report.failures:
        for failure in report.failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def cmd_api_serve(args) -> int:
    import tempfile
    import threading

    from repro.api.model import load_model
    from repro.api.server import ApiEndpoint, ApiServer
    from repro.serve import QueryService, ServiceConfig

    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    model = load_model(args.model, scale=settings.scale)
    print(
        f"building {config.name}: dims={config.dim_sizes} "
        f"valid={config.n_valid} ..."
    )
    with tempfile.TemporaryDirectory(prefix="repro-api-") as wal_dir:
        engine = build_cube_engine(config, settings, wal_dir=wal_dir)
        service = QueryService(
            engine, ServiceConfig(max_workers=args.threads)
        )
        try:
            with ApiServer(
                ApiEndpoint(engine, service, model), port=args.port
            ) as server:
                print(
                    f"serving {server.url}/cube/<name>/aggregate "
                    f"(also / /cubes /cube/<name>/model /metrics /healthz)"
                    + (f" for {args.duration:.0f}s" if args.duration else "")
                )
                try:
                    park = threading.Event()
                    if args.duration:
                        park.wait(args.duration)
                    else:
                        while True:
                            park.wait(3600)
                except KeyboardInterrupt:
                    print("\ninterrupted")
        finally:
            service.close()
    return 0


def cmd_watch(args) -> int:
    import time

    from repro.obs.watch import watch_frame

    iteration = 0
    try:
        while args.iterations == 0 or iteration < args.iterations:
            if iteration:
                time.sleep(args.interval)
            frame = watch_frame(args.url, seconds=args.seconds, q=args.q)
            if args.plain:
                print(f"-- {args.url} @ {time.strftime('%H:%M:%S')}")
                print(frame)
            else:
                print("\x1b[2J\x1b[H", end="")
                print(
                    f"repro watch — {args.url} @ {time.strftime('%H:%M:%S')}\n"
                )
                print(frame)
            iteration += 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_alert_lint(args) -> int:
    from repro.errors import MetricsError
    from repro.obs.alerts import load_rules
    from repro.util.jsonschema_lite import SchemaError, validate

    with open(args.rules, encoding="utf-8") as handle:
        payload = json.load(handle)
    with open(args.schema, encoding="utf-8") as handle:
        schema = json.load(handle)
    try:
        validate(payload, schema)
    except SchemaError as exc:
        print(f"FAIL: {args.rules}: schema validation: {exc}", file=sys.stderr)
        return 1
    try:
        rules = load_rules(args.rules)
    except MetricsError as exc:
        print(f"FAIL: {args.rules}: {exc}", file=sys.stderr)
        return 1
    for rule in rules:
        print(f"ok  {rule.name:<28} {rule.kind} ({rule.severity})")
    print(f"{len(rules)} rules validate against {args.schema}")
    return 0


def cmd_faultcheck(args) -> int:
    import tempfile

    from repro.bench.faultcheck import run_crash_matrix
    from repro.storage.crashpoints import registered_crash_points

    points = registered_crash_points()
    if args.point:
        points = tuple(p for p in points if p in set(args.point))
    print(
        f"faultcheck: {len(points)} crash points, seed={args.seed} "
        "(crash → recover → oracle check → commit → crash again → recover)"
    )
    with tempfile.TemporaryDirectory(prefix="repro-faultcheck-") as workdir:
        outcomes = run_crash_matrix(args.seed, workdir, points=points)
    header = (
        f"{'crash point':<26} {'crashed':>7} {'acked':>5} {'k':>3} "
        f"{'replayed':>8} {'torn':>4}  result"
    )
    print(header)
    print("-" * len(header))
    failures = 0
    for o in outcomes:
        status = "ok" if o.ok else "FAIL: " + "; ".join(o.errors)
        if not o.ok:
            failures += 1
        print(
            f"{o.crash_point:<26} {str(o.crashed):>7} {o.confirmed:>5} "
            f"{o.recovered:>3} {o.replayed_pages:>8} "
            f"{str(o.torn_tail):>4}  {status}"
        )
    if failures:
        print(f"{failures}/{len(outcomes)} scenarios FAILED")
        return 1
    print(f"all {len(outcomes)} scenarios upheld the crash-recovery property")
    return 0


def cmd_trace_smoke(args) -> int:
    from repro.bench.trace_smoke import run_trace_smoke, write_trace_smoke_artifact

    payload = run_trace_smoke(
        scale=args.scale, shards=args.shards, executor=args.executor
    )
    if args.output:
        write_trace_smoke_artifact(payload, args.output)
        print(f"artifact written to {args.output}")
    sharded = payload.get("sharded", {})
    decomposition = sharded.get("decomposition", {})
    chunk = decomposition.get("chunks_read", {})
    print(
        f"trace-smoke [{payload['scale']}]: "
        f"shards={payload['shards']}({payload['executor']}) "
        f"scans={sharded.get('shard_scans', 0)} "
        f"workers={sharded.get('worker_spans', 0)} "
        f"chunks_read scatter={chunk.get('scatter')} "
        f"worker_sum={chunk.get('worker_sum')}"
    )
    api = payload.get("api", {})
    print(
        f"trace-smoke api: request {payload.get('api_trace_id')} "
        f"schedules {api.get('build_trace_id')} "
        f"follows_from={api.get('follows_from_back_link')} "
        f"access_log={payload.get('access_log', {}).get('parsed', 0)} lines"
    )
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("span decomposition + async causality + schema: ok")
    return 0


def cmd_bench(args) -> int:
    import os

    pattern = f"benchmarks/test_{args.experiment}*.py"
    command = [
        sys.executable, "-m", "pytest", pattern, "--benchmark-only", "-q"
    ]
    env = dict(os.environ)
    if args.scale:
        env["REPRO_SCALE"] = args.scale
    return subprocess.call(command, env=env)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Array-based OLAP query evaluation (ICDE 1998 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="version, scales, experiments").set_defaults(
        run=cmd_info
    )

    demo = commands.add_parser("demo", help="run Queries 1-3 on a synthetic cube")
    _add_scale_argument(demo)
    demo.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of the table",
    )
    demo.set_defaults(run=cmd_demo)

    trace = commands.add_parser(
        "trace",
        help="run one query with the span tracer and print the tree, or "
        "fetch a stored distributed trace by --id from a running endpoint",
    )
    trace.add_argument(
        "query", nargs="?", choices=sorted(_TRACE_QUERIES), default=None
    )
    trace.add_argument(
        "--id",
        metavar="TRACE_ID",
        help="fetch /trace/id/<trace_id> from --url instead of running "
        "a local query",
    )
    trace.add_argument(
        "--url", help="observability endpoint base URL (with --id)"
    )
    trace.add_argument("--backend", default="array")
    trace.add_argument(
        "--mode",
        default="auto",
        choices=("auto", "interpreted", "vectorized"),
    )
    trace.add_argument("--json", metavar="FILE", help="also write the trace as JSON")
    trace.add_argument(
        "--prom", metavar="FILE", help="also write Prometheus-style metrics"
    )
    _add_scale_argument(trace)
    trace.set_defaults(run=cmd_trace)

    explain = commands.add_parser(
        "explain",
        help="EXPLAIN / EXPLAIN ANALYZE one query: plan tree with "
        "estimates, actuals and misestimate factors",
    )
    explain.add_argument("query", choices=sorted(_TRACE_QUERIES))
    explain.add_argument("--backend", default="auto")
    explain.add_argument(
        "--mode",
        default="auto",
        choices=("auto", "interpreted", "vectorized"),
    )
    explain.add_argument("--order", default="chunk", choices=("chunk", "naive"))
    _add_shard_arguments(explain)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="run the query and attach measured actuals to every node",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the plan as JSON instead of the text tree",
    )
    explain.add_argument(
        "--validate",
        metavar="SCHEMA",
        help="validate the JSON payload against a schema file "
        "(see benchmarks/schemas/explain_plan.schema.json)",
    )
    _add_scale_argument(explain)
    explain.set_defaults(run=cmd_explain)

    sql = commands.add_parser("sql", help="run a SQL statement on a synthetic cube")
    sql.add_argument("statement", help="SELECT ... FROM fact, dimX ... GROUP BY ...")
    sql.add_argument("--backend", default="auto")
    sql.add_argument("--limit", type=int, default=20)
    _add_scale_argument(sql)
    sql.set_defaults(run=cmd_sql)

    storage = commands.add_parser("storage", help="print storage footprints")
    _add_scale_argument(storage)
    storage.set_defaults(run=cmd_storage)

    bench = commands.add_parser("bench", help="run one experiment via pytest")
    bench.add_argument("experiment", choices=EXPERIMENTS)
    _add_scale_argument(bench)
    bench.set_defaults(run=cmd_bench)

    serve = commands.add_parser(
        "serve", help="run a concurrent workload through the QueryService"
    )
    serve.add_argument("--threads", type=int, default=8)
    serve.add_argument("--rounds", type=int, default=2)
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics /healthz /slowlog while the workload runs "
        "(0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--linger",
        type=float,
        default=0.0,
        metavar="S",
        help="keep the metrics endpoint up S seconds after the workload",
    )
    serve.add_argument(
        "--slow-threshold",
        type=float,
        default=0.25,
        metavar="S",
        help="slow-query log threshold in seconds (default 0.25)",
    )
    _add_shard_arguments(serve)
    _add_scale_argument(serve)
    serve.set_defaults(run=cmd_serve)

    obs_server = commands.add_parser(
        "obs-server",
        help="standalone observability endpoint over a trickle workload",
    )
    obs_server.add_argument("--port", type=int, default=9100)
    obs_server.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="S",
        help="stop after S seconds (default: run until interrupted)",
    )
    obs_server.add_argument("--threads", type=int, default=2)
    obs_server.add_argument(
        "--think-time",
        type=float,
        default=0.2,
        metavar="S",
        help="pause between trickle queries (default 0.2s)",
    )
    obs_server.add_argument("--slow-threshold", type=float, default=0.25)
    _add_scale_argument(obs_server)
    obs_server.set_defaults(run=cmd_obs_server)

    slowlog = commands.add_parser(
        "slowlog", help="dump the slow-query ring buffer as JSON"
    )
    slowlog.add_argument(
        "--url",
        default=None,
        help="fetch <url>/slowlog from a running endpoint instead of "
        "running a local workload",
    )
    slowlog.add_argument(
        "--threshold",
        type=float,
        default=0.0,
        metavar="S",
        help="capture threshold for the local workload (default 0: "
        "profile everything)",
    )
    slowlog.add_argument("--threads", type=int, default=2)
    slowlog.add_argument("--rounds", type=int, default=1)
    _add_scale_argument(slowlog)
    slowlog.set_defaults(run=cmd_slowlog)

    mem = commands.add_parser(
        "mem",
        help="resident-set breakdown by store with the largest entries",
    )
    mem.add_argument(
        "--url",
        default=None,
        help="fetch <url>/memory from a running endpoint instead of "
        "running a local workload",
    )
    mem.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="largest entries to list (default 10)",
    )
    mem.add_argument(
        "--json", action="store_true", help="print the raw payload"
    )
    mem.add_argument("--threads", type=int, default=2)
    mem.add_argument("--rounds", type=int, default=1)
    _add_scale_argument(mem)
    mem.set_defaults(run=cmd_mem)

    top = commands.add_parser(
        "top", help="terminal dashboard over a /metrics endpoint"
    )
    top.add_argument("--url", required=True, help="endpoint base URL")
    top.add_argument("--interval", type=float, default=2.0)
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render (default 0: until interrupted)",
    )
    top.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    top.set_defaults(run=cmd_top)

    bench_smoke = commands.add_parser(
        "bench-smoke",
        help="CI serving smoke: workload + scrape lint + JSON artifact",
    )
    bench_smoke.add_argument(
        "--output", default="BENCH_serving.json", metavar="FILE"
    )
    bench_smoke.add_argument("--threads", type=int, default=4)
    bench_smoke.add_argument("--rounds", type=int, default=2)
    bench_smoke.add_argument(
        "--results-dir",
        default="benchmarks/results",
        metavar="DIR",
        help="also archive a timestamped copy here for later bench-diff "
        "runs (empty string disables archiving)",
    )
    _add_shard_arguments(bench_smoke)
    _add_scale_argument(bench_smoke)
    bench_smoke.set_defaults(run=cmd_bench_smoke)

    bench_diff = commands.add_parser(
        "bench-diff",
        help="compare two bench-smoke artifacts; non-zero exit on a "
        "p95 latency regression",
    )
    bench_diff.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="earlier BENCH_serving.json (with one path given, that "
        "path is the candidate and the repo-root BENCH_serving.json "
        "is the baseline)",
    )
    bench_diff.add_argument(
        "candidate", nargs="?", default=None, help="newer BENCH_serving.json"
    )
    bench_diff.add_argument(
        "--max-p95-regress",
        type=float,
        default=1.3,
        metavar="RATIO",
        help="fail when candidate p95 / baseline p95 exceeds this "
        "(default 1.3)",
    )
    bench_diff.set_defaults(run=cmd_bench_diff)

    bench_trend = commands.add_parser(
        "bench-trend",
        help="render and gate the p95 trajectory across every archived "
        "bench-smoke artifact",
    )
    bench_trend.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR"
    )
    bench_trend.add_argument(
        "--max-p95-regress",
        type=float,
        default=1.5,
        metavar="RATIO",
        help="fail when the newest p95 exceeds this multiple of the "
        "median of the earlier runs at the same scale (default 1.5)",
    )
    bench_trend.add_argument(
        "--json",
        action="store_true",
        help="emit the grouped trajectory as JSON instead of the table",
    )
    bench_trend.set_defaults(run=cmd_bench_trend)

    soak = commands.add_parser(
        "soak",
        help="seeded replay workload with the temporal observability "
        "stack live; emits a BENCH_soak.json trend artifact",
    )
    soak.add_argument("--seconds", type=float, default=10.0)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--clients", type=int, default=4)
    soak.add_argument(
        "--bucket",
        type=float,
        default=1.0,
        metavar="S",
        help="latency time-bucket width in seconds (default 1.0)",
    )
    soak.add_argument(
        "--inject-breach",
        action="store_true",
        help="install an unsatisfiable SLO rule mid-run and force one "
        "firing→resolved alert cycle (the lifecycle proof)",
    )
    soak.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="resident-set budget enforced by pressure eviction "
        "(default 0: accounting only)",
    )
    soak.add_argument("--output", default="BENCH_soak.json", metavar="FILE")
    soak.add_argument(
        "--validate",
        metavar="SCHEMA",
        help="validate the artifact against a schema file "
        "(see benchmarks/schemas/bench_soak.schema.json)",
    )
    _add_shard_arguments(soak)
    _add_scale_argument(soak)
    soak.set_defaults(run=cmd_soak)

    replay = commands.add_parser(
        "replay",
        help="seeded HTTP traffic replay against the API stack; emits "
        "a BENCH_api.json artifact and gates on zero 5xx, rollup "
        "hit-rate and routed-vs-base latency",
    )
    replay.add_argument("--requests", type=int, default=200)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--clients", type=int, default=4)
    replay.add_argument(
        "--write-every",
        type=int,
        default=40,
        metavar="N",
        help="issue one churn write per N requests (0 disables; "
        "default 40)",
    )
    replay.add_argument(
        "--model", default="benchmarks/api_model.json", metavar="FILE"
    )
    replay.add_argument(
        "--cube", default="sales", help="logical cube to replay against"
    )
    replay.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        metavar="BYTES",
        help="resident-set budget enforced by pressure eviction "
        "(default 0: accounting only)",
    )
    replay.add_argument("--output", default="BENCH_api.json", metavar="FILE")
    replay.add_argument(
        "--validate-response",
        metavar="SCHEMA",
        help="validate the captured sample response against a schema "
        "(see benchmarks/schemas/api_response.schema.json)",
    )
    replay.add_argument(
        "--validate-plan",
        metavar="SCHEMA",
        help="validate the explain probe's plan against a schema "
        "(see benchmarks/schemas/explain_plan.schema.json)",
    )
    replay.add_argument(
        "--json", action="store_true", help="print the full artifact"
    )
    _add_scale_argument(replay)
    replay.set_defaults(run=cmd_replay)

    api_serve = commands.add_parser(
        "api-serve",
        help="standalone HTTP query API over a synthetic cube",
    )
    api_serve.add_argument("--port", type=int, default=8800)
    api_serve.add_argument("--threads", type=int, default=4)
    api_serve.add_argument(
        "--model", default="benchmarks/api_model.json", metavar="FILE"
    )
    api_serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="seconds to serve (default 0: until interrupted)",
    )
    _add_scale_argument(api_serve)
    api_serve.set_defaults(run=cmd_api_serve)

    watch = commands.add_parser(
        "watch", help="terminal trend view over a /timeseries endpoint"
    )
    watch.add_argument("--url", required=True, help="endpoint base URL")
    watch.add_argument("--interval", type=float, default=2.0)
    watch.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render (default 0: until interrupted)",
    )
    watch.add_argument(
        "--seconds",
        type=float,
        default=60.0,
        help="trailing window each frame asks the endpoint for",
    )
    watch.add_argument("--q", type=float, default=0.95)
    watch.add_argument(
        "--plain",
        action="store_true",
        help="append frames instead of clearing the screen",
    )
    watch.set_defaults(run=cmd_watch)

    alert_lint = commands.add_parser(
        "alert-lint",
        help="validate an SLO rule file against the checked-in schema",
    )
    alert_lint.add_argument(
        "--rules", default="benchmarks/slo_rules.json", metavar="FILE"
    )
    alert_lint.add_argument(
        "--schema",
        default="benchmarks/schemas/slo_rules.schema.json",
        metavar="FILE",
    )
    alert_lint.set_defaults(run=cmd_alert_lint)

    faultcheck = commands.add_parser(
        "faultcheck",
        help="crash-recovery property check over every registered crash point",
    )
    faultcheck.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    faultcheck.add_argument(
        "--point",
        action="append",
        metavar="NAME",
        help="restrict to one crash point (repeatable)",
    )
    faultcheck.set_defaults(run=cmd_faultcheck)

    trace_smoke = commands.add_parser(
        "trace-smoke",
        help="CI tracing gate: shard span decomposition + async rollup "
        "causality over live HTTP",
    )
    trace_smoke.add_argument(
        "--output", metavar="FILE", help="write the gate payload as JSON"
    )
    _add_shard_arguments(trace_smoke, default_shards=4, default_executor="process")
    _add_scale_argument(trace_smoke)
    trace_smoke.set_defaults(run=cmd_trace_smoke)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
