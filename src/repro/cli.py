"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``info`` — version, available scales and experiment ids.
- ``demo`` — build a synthetic cube and run the paper's Query 1/2/3
  through every backend, printing a cost table.
- ``sql`` — run one SQL-subset statement against a synthetic cube.
- ``storage`` — print the storage report for a synthetic cube.
- ``bench`` — run one experiment's benchmark module via pytest.
"""

from __future__ import annotations

import argparse
import subprocess
import sys

from repro import __version__
from repro.bench.harness import (
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
)
from repro.data.datasets import SCALES, dataset1

EXPERIMENTS = (
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "storage_sizes", "storage_crossover", "storage_snowflake", "load_costs",
    "ablation_compression", "ablation_chunk_count", "ablation_leftdeep",
    "ablation_fact_file", "ablation_chunk_order", "ablation_modes",
    "ablation_cube", "ablation_select_baselines",
)


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=SCALES,
        default=None,
        help="workload scale (default: $REPRO_SCALE or medium)",
    )


def cmd_info(args) -> int:
    print(f"repro {__version__} — ICDE 1998 OLAP Array ADT reproduction")
    print(f"scales: {', '.join(SCALES)}")
    print(f"experiments: {', '.join(EXPERIMENTS)}")
    return 0


def cmd_demo(args) -> int:
    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    print(
        f"building {config.name}: dims={config.dim_sizes} "
        f"valid={config.n_valid} ({config.density:.1%} dense) ..."
    )
    engine = build_cube_engine(config, settings, fact_btrees=True)
    plans = [
        ("Query 1 (consolidation)", query1_for(config), ("array", "starjoin", "leftdeep")),
        ("Query 2 (4-dim selection)", query2_for(config), ("array", "bitmap", "btree")),
        ("Query 3 (3-dim selection)", query3_for(config), ("array", "bitmap")),
    ]
    for title, query, backends in plans:
        print(f"\n{title}:")
        for backend in backends:
            result = run_cold(engine, query, backend)
            print(
                f"    {backend:<9} cost={result.cost_s:7.3f}s "
                f"(cpu {result.elapsed_s:.3f} + io {result.sim_io_s:.3f})  "
                f"rows={len(result)}"
            )
        auto = engine.query(query, backend="auto")
        print(f"    planner would pick: {auto.backend}")
    return 0


def cmd_sql(args) -> int:
    settings = bench_settings(args.scale)
    config = dataset1(settings.scale)[1]
    engine = build_cube_engine(config, settings)
    result = engine.sql(config.name, args.statement, backend=args.backend)
    for row in result.rows[: args.limit]:
        print("\t".join(str(v) for v in row))
    if len(result.rows) > args.limit:
        print(f"... ({len(result.rows)} rows total)")
    print(
        f"-- backend={result.backend} cost={result.cost_s:.3f}s",
        file=sys.stderr,
    )
    return 0


def cmd_storage(args) -> int:
    settings = bench_settings(args.scale)
    for config in dataset1(settings.scale):
        engine = build_cube_engine(config, settings, fact_btrees=True)
        report = engine.storage_report(config.name)
        print(f"{config.name} (density {config.density:.1%}):")
        for name, value in sorted(report.items()):
            print(f"    {name:<18} {value:>12,} B")
    return 0


def cmd_bench(args) -> int:
    import os

    pattern = f"benchmarks/test_{args.experiment}*.py"
    command = [
        sys.executable, "-m", "pytest", pattern, "--benchmark-only", "-q"
    ]
    env = dict(os.environ)
    if args.scale:
        env["REPRO_SCALE"] = args.scale
    return subprocess.call(command, env=env)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Array-based OLAP query evaluation (ICDE 1998 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="version, scales, experiments").set_defaults(
        run=cmd_info
    )

    demo = commands.add_parser("demo", help="run Queries 1-3 on a synthetic cube")
    _add_scale_argument(demo)
    demo.set_defaults(run=cmd_demo)

    sql = commands.add_parser("sql", help="run a SQL statement on a synthetic cube")
    sql.add_argument("statement", help="SELECT ... FROM fact, dimX ... GROUP BY ...")
    sql.add_argument("--backend", default="auto")
    sql.add_argument("--limit", type=int, default=20)
    _add_scale_argument(sql)
    sql.set_defaults(run=cmd_sql)

    storage = commands.add_parser("storage", help="print storage footprints")
    _add_scale_argument(storage)
    storage.set_defaults(run=cmd_storage)

    bench = commands.add_parser("bench", help="run one experiment via pytest")
    bench.add_argument("experiment", choices=EXPERIMENTS)
    _add_scale_argument(bench)
    bench.set_defaults(run=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    raise SystemExit(main())
