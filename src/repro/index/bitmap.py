"""Bitmap join indices over fact-table positions (§4.4).

A :class:`BitmapIndex` covers one attribute of one dimension, but over
the *fact table's* tuple positions: bit ``t`` of the bitmap for value
``v`` is set iff fact tuple ``t`` joins a dimension row whose attribute
equals ``v``.  This is the "join bitmap index" the paper creates ahead
of time on each selected attribute (§4.5).

Persistence: each value's bitset is one large object; the value → OID
directory is a B-tree.  Everything therefore lives on storage pages and
counts toward measured footprints.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import BitmapError
from repro.index.btree import BTree
from repro.storage.large_object import LargeObjectStore
from repro.storage.page_file import FileManager
from repro.util.bitset import Bitset


class BitmapIndex:
    """Per-value bitmaps for one attribute over a fixed position space."""

    def __init__(self, fm: FileManager, name: str, length: int):
        if length < 0:
            raise BitmapError(f"position space must be >= 0, got {length}")
        self.name = name
        self.length = length
        self._store = LargeObjectStore(fm, f"{name}.bitmaps")
        self._directory = (
            BTree.open(fm, f"{name}.dir")
            if fm.exists(f"{name}.dir")
            else BTree.create(fm, f"{name}.dir")
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        fm: FileManager,
        name: str,
        length: int,
        position_values: Iterable,
    ) -> "BitmapIndex":
        """Build the index from the attribute value at every position.

        ``position_values`` yields the attribute value of position
        0, 1, 2, ... — i.e. for each fact tuple, the (joined) dimension
        attribute value.  One pass groups positions per value; each
        group becomes one stored bitmap.
        """
        index = cls(fm, name, length)
        groups: dict[object, list[int]] = {}
        position = -1
        for position, value in enumerate(position_values):
            groups.setdefault(value, []).append(position)
        if position + 1 != length:
            raise BitmapError(
                f"got {position + 1} position values, expected {length}"
            )
        for value in sorted(groups):
            bits = Bitset.from_indices(length, groups[value])
            oid = index._store.create(bits.to_bytes())
            index._directory.insert(value, oid)
        return index

    # -- lookup ------------------------------------------------------------------

    def values(self) -> list:
        """All distinct attribute values with a stored bitmap."""
        return [key for key, _ in self._directory.items()]

    def bitmap_for(self, value) -> Bitset:
        """The bitmap of one value (all-zero if the value is unknown)."""
        oids = self._directory.search(value)
        if not oids:
            return Bitset(self.length)
        return Bitset.from_bytes(self.length, self._store.read(oids[0]))

    def bitmap_for_range(self, low, high) -> Bitset:
        """OR of the bitmaps of every value in the inclusive range.

        Open bounds (``None``) are allowed; the value directory's
        B-tree range scan finds the qualifying values.
        """
        merged = Bitset(self.length)
        for _, oid in self._directory.range_search(low, high):
            merged.ior(Bitset.from_bytes(self.length, self._store.read(oid)))
        return merged

    def bitmap_for_any(self, values: Iterable) -> Bitset:
        """OR of the bitmaps of several values (an IN-list selection).

        This is the paper's "merge those index lists" step done on
        bitmaps: retrieve the bitmaps for the selected values of one
        dimension and OR them together.
        """
        merged = Bitset(self.length)
        for value in values:
            merged.ior(self.bitmap_for(value))
        return merged

    # -- footprint ----------------------------------------------------------------

    def footprint_bytes(self) -> int:
        """On-disk bytes: bitmap objects plus the value directory."""
        return self._store.footprint_bytes() + self._directory.size_bytes()
