"""Index structures: paged B+trees and bitmap join indices.

Both live entirely on storage pages.  The OLAP Array ADT uses one
B-tree per dimension (key value → array index, §3.1); the relational
baseline uses bitmap indices per dimension attribute over fact-table
positions (§4.4).
"""

from repro.index.btree import BTree
from repro.index.bitmap import BitmapIndex

__all__ = ["BTree", "BitmapIndex"]
