"""A paged B+tree with duplicate-key support.

The tree maps ``int`` or ``str`` keys to ``int64`` values and lives on
a :class:`~repro.storage.page_file.PageFile`, one node per page.  It is
used three ways in the reproduction:

- per-dimension key → array-index maps inside the OLAP Array ADT (§3.1),
- dimension attribute → array-index lists for the selection algorithm
  (§4.2, duplicates: many rows share one attribute value),
- value → bitmap-OID directories inside :class:`~repro.index.bitmap.BitmapIndex`.

Design notes:

- entries in a leaf are sorted by ``(key, value)`` so duplicate keys
  have deterministic order and ``delete(key, value)`` is exact;
- splits are size-based (a node splits when its serialization would
  overflow the page), so long string keys simply reduce fan-out;
- deletes are "lazy": the entry is removed but nodes never merge, the
  standard trade-off in systems whose workloads are append-mostly.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.errors import BTreeError
from repro.storage.page_file import FileManager, PageFile

_NODE_HEADER = struct.Struct("<BHq")  # is_leaf, nkeys, next_leaf
_ENTRY_HEAD = struct.Struct("<H")  # key length
_VALUE = struct.Struct("<q")
_META = struct.Struct("<qqB")  # root logical page, entry count, key kind

_KIND_UNSET = 0
_KIND_INT = 1
_KIND_STR = 2
_KIND_TUPLE = 3

_NO_PAGE = -1

_ELEM_HEAD = struct.Struct("<BH")  # element kind, payload length


def _encode_key(key) -> tuple[int, bytes]:
    if isinstance(key, bool):
        raise BTreeError("unsupported key type bool")
    if isinstance(key, int):
        return _KIND_INT, _VALUE.pack(key)
    if isinstance(key, str):
        return _KIND_STR, key.encode("utf-8")
    if isinstance(key, tuple):
        # composite keys (the multi-attribute B-tree): a sequence of
        # int/str elements, compared lexicographically
        out = bytearray([len(key)])
        for element in key:
            kind, raw = _encode_key(element)
            if kind == _KIND_TUPLE:
                raise BTreeError("nested tuple keys are not supported")
            out += _ELEM_HEAD.pack(kind, len(raw))
            out += raw
        return _KIND_TUPLE, bytes(out)
    raise BTreeError(f"unsupported key type {type(key).__name__}")


def _decode_key(kind: int, raw: bytes):
    if kind == _KIND_INT:
        return _VALUE.unpack(raw)[0]
    if kind == _KIND_STR:
        return raw.decode("utf-8")
    arity = raw[0]
    offset = 1
    elements = []
    for _ in range(arity):
        elem_kind, length = _ELEM_HEAD.unpack_from(raw, offset)
        offset += _ELEM_HEAD.size
        elements.append(_decode_key(elem_kind, raw[offset : offset + length]))
        offset += length
    return tuple(elements)


@dataclass
class _Node:
    is_leaf: bool
    keys: list = field(default_factory=list)
    # leaves: values[i] pairs with keys[i]; internals: children has
    # len(keys) + 1 page numbers and keys[i] is the smallest key in
    # children[i + 1]'s subtree.
    values: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    next_leaf: int = _NO_PAGE

    def encoded_size(self, kind: int) -> int:
        size = _NODE_HEADER.size
        for key in self.keys:
            size += _ENTRY_HEAD.size + len(_encode_key(key)[1]) + _VALUE.size
        if not self.is_leaf:
            size += _VALUE.size  # the extra leading child pointer
        return size

    def encode(self, kind: int, page_size: int) -> bytes:
        out = bytearray(
            _NODE_HEADER.pack(int(self.is_leaf), len(self.keys), self.next_leaf)
        )
        slots = self.values if self.is_leaf else self.children[1:]
        if not self.is_leaf:
            out += _VALUE.pack(self.children[0])
        for key, slot in zip(self.keys, slots):
            raw = _encode_key(key)[1]
            out += _ENTRY_HEAD.pack(len(raw))
            out += raw
            out += _VALUE.pack(slot)
        if len(out) > page_size:
            raise BTreeError("node serialization exceeds page size")
        return bytes(out) + bytes(page_size - len(out))

    @classmethod
    def decode(cls, buf, kind: int) -> "_Node":
        is_leaf, nkeys, next_leaf = _NODE_HEADER.unpack_from(buf, 0)
        node = cls(is_leaf=bool(is_leaf), next_leaf=next_leaf)
        offset = _NODE_HEADER.size
        if not node.is_leaf:
            node.children.append(_VALUE.unpack_from(buf, offset)[0])
            offset += _VALUE.size
        for _ in range(nkeys):
            (klen,) = _ENTRY_HEAD.unpack_from(buf, offset)
            offset += _ENTRY_HEAD.size
            key = _decode_key(kind, bytes(buf[offset : offset + klen]))
            offset += klen
            (slot,) = _VALUE.unpack_from(buf, offset)
            offset += _VALUE.size
            node.keys.append(key)
            if node.is_leaf:
                node.values.append(slot)
            else:
                node.children.append(slot)
        return node


class BTree:
    """A B+tree over a page file; see the module docstring."""

    def __init__(self, pfile: PageFile):
        self._file = pfile
        self._page_size = pfile.pool.disk.page_size
        meta = pfile.get_meta()
        if meta:
            self._root, self._count, self._kind = _META.unpack_from(meta, 0)
        else:
            root = _Node(is_leaf=True)
            self._root = pfile.append_page()
            self._kind = _KIND_UNSET
            self._count = 0
            self._write_node(self._root, root)
            self._store_meta()

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(cls, fm: FileManager, name: str) -> "BTree":
        """Create a new empty tree stored in file ``name``."""
        return cls(fm.create(name))

    @classmethod
    def open(cls, fm: FileManager, name: str) -> "BTree":
        """Open an existing tree."""
        return cls(fm.open(name))

    @classmethod
    def bulk_load(cls, fm: FileManager, name: str, items) -> "BTree":
        """Build a tree bottom-up from ``(key, value)`` pairs.

        The input is sorted here (by ``(key, value)``, the tree's entry
        order), leaves are packed sequentially and internal levels are
        stacked on top — O(n log n) for the sort plus one write per
        node, against one root-to-leaf descent per entry for repeated
        :meth:`insert` calls.  Used for index builds over whole tables.
        """
        tree = cls(fm.create(name))
        entries = sorted(items, key=lambda kv: (kv[0], kv[1]))
        if not entries:
            return tree
        tree._check_key(entries[0][0])
        # target ~85% fill so later inserts do not split immediately
        budget = int(tree._page_size * 0.85)

        def close_and_start(nodes, node, key, slot, is_leaf):
            """Move an overflowing last entry into a fresh node."""
            node.keys.pop()
            (node.values if is_leaf else node.children).pop()
            nodes.append(node)
            if is_leaf:
                return _Node(is_leaf=True, keys=[key], values=[slot])
            return _Node(is_leaf=False, children=[slot]), key

        # -- pack the leaf level --------------------------------------------
        leaves: list[_Node] = []
        node = _Node(is_leaf=True)
        for key, value in entries:
            node.keys.append(key)
            node.values.append(value)
            if node.encoded_size(tree._kind) > budget and len(node.keys) > 1:
                node = close_and_start(leaves, node, key, value, True)
        leaves.append(node)

        pages = [tree._file.append_page() for _ in leaves]
        for leaf, successor in zip(leaves, pages[1:]):
            leaf.next_leaf = successor
        for page, leaf in zip(pages, leaves):
            tree._write_node(page, leaf)
        # (first key of subtree, page) pairs feed the level above
        level = [(leaf.keys[0], page) for leaf, page in zip(leaves, pages)]

        # -- stack internal levels ---------------------------------------------
        while len(level) > 1:
            parents: list[_Node] = []
            firsts: list = []
            node = _Node(is_leaf=False, children=[level[0][1]])
            firsts.append(level[0][0])
            for key, child in level[1:]:
                node.keys.append(key)
                node.children.append(child)
                if node.encoded_size(tree._kind) > budget and len(node.keys) > 1:
                    node, first = close_and_start(
                        parents, node, key, child, False
                    )
                    firsts.append(first)
            parents.append(node)
            pages = [tree._file.append_page() for _ in parents]
            for page, parent in zip(pages, parents):
                tree._write_node(page, parent)
            level = list(zip(firsts, pages))

        tree._root = level[0][1]
        tree._count = len(entries)
        tree._store_meta()
        return tree

    def _store_meta(self) -> None:
        self._file.set_meta(_META.pack(self._root, self._count, self._kind))

    # -- node I/O -----------------------------------------------------------------

    def _read_node(self, logical: int) -> _Node:
        return _Node.decode(self._file.read(logical), self._kind)

    def _write_node(self, logical: int, node: _Node) -> None:
        self._file.write(logical, node.encode(self._kind, self._page_size))

    def _new_node(self, node: _Node) -> int:
        logical = self._file.append_page()
        self._write_node(logical, node)
        return logical

    # -- key typing ----------------------------------------------------------------

    def _check_key(self, key) -> None:
        kind = _encode_key(key)[0]
        if self._kind == _KIND_UNSET:
            self._kind = kind
            self._store_meta()
        elif kind != self._kind:
            want = {_KIND_INT: "int", _KIND_STR: "str", _KIND_TUPLE: "tuple"}[
                self._kind
            ]
            raise BTreeError(
                f"tree keys are {want}, got {type(key).__name__}"
            )

    # -- insertion --------------------------------------------------------------------

    def insert(self, key, value: int) -> None:
        """Insert one ``(key, value)`` entry; duplicates are allowed."""
        self._check_key(key)
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right_page = split
            old_root = self._root
            root = _Node(
                is_leaf=False, keys=[separator], children=[old_root, right_page]
            )
            self._root = self._new_node(root)
        self._count += 1
        self._store_meta()

    def _insert_into(self, logical: int, key, value: int):
        """Recursive insert; returns ``(separator, right_page)`` on split."""
        node = self._read_node(logical)
        if node.is_leaf:
            position = bisect_right(
                [(k, v) for k, v in zip(node.keys, node.values)], (key, value)
            )
            node.keys.insert(position, key)
            node.values.insert(position, value)
            return self._finish_write(logical, node)
        child_index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, right_page = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right_page)
        return self._finish_write(logical, node)

    def _finish_write(self, logical: int, node: _Node):
        """Write ``node`` back, splitting first if it no longer fits."""
        if node.encoded_size(self._kind) <= self._page_size:
            self._write_node(logical, node)
            return None
        half = len(node.keys) // 2
        if node.is_leaf:
            right = _Node(
                is_leaf=True,
                keys=node.keys[half:],
                values=node.values[half:],
                next_leaf=node.next_leaf,
            )
            separator = right.keys[0]
            right_page = self._new_node(right)
            node.keys = node.keys[:half]
            node.values = node.values[:half]
            node.next_leaf = right_page
        else:
            # the middle key moves up rather than being copied
            separator = node.keys[half]
            right = _Node(
                is_leaf=False,
                keys=node.keys[half + 1 :],
                children=node.children[half + 1 :],
            )
            right_page = self._new_node(right)
            node.keys = node.keys[:half]
            node.children = node.children[: half + 1]
        self._write_node(logical, node)
        return separator, right_page

    # -- lookup ------------------------------------------------------------------------

    def _leftmost_leaf_for(self, key) -> int:
        logical = self._root
        node = self._read_node(logical)
        while not node.is_leaf:
            logical = node.children[bisect_left(node.keys, key)]
            node = self._read_node(logical)
        return logical

    def search(self, key) -> list[int]:
        """All values stored under ``key`` (ascending), possibly empty."""
        if self._count == 0 or self._kind == _KIND_UNSET:
            return []
        self._check_key(key)
        return [v for _, v in self._scan_from(key)]

    def _scan_from(self, key) -> Iterator[tuple[object, int]]:
        """Yield ``(key, value)`` entries equal to ``key``, value-sorted.

        Duplicates of one key may be physically out of value order when
        a run spans a leaf split (inserts for the separator key always
        descend right), so the run is buffered and sorted here.
        """
        values = []
        logical = self._leftmost_leaf_for(key)
        while logical != _NO_PAGE:
            node = self._read_node(logical)
            for k, v in zip(node.keys, node.values):
                if k < key:
                    continue
                if k > key:
                    logical = _NO_PAGE
                    break
                values.append(v)
            else:
                logical = node.next_leaf
        for value in sorted(values):
            yield key, value

    def range_search(
        self, low=None, high=None
    ) -> Iterator[tuple[object, int]]:
        """Yield ``(key, value)`` with ``low <= key <= high`` in order.

        ``None`` bounds are open.
        """
        if self._count == 0 or self._kind == _KIND_UNSET:
            return
        if low is not None:
            self._check_key(low)
            logical = self._leftmost_leaf_for(low)
        else:
            logical = self._root
            node = self._read_node(logical)
            while not node.is_leaf:
                logical = node.children[0]
                node = self._read_node(logical)
        if high is not None:
            self._check_key(high)
        # runs of one key are buffered and value-sorted (see _scan_from)
        run_key: object = None
        run_values: list[int] = []
        while logical != _NO_PAGE:
            node = self._read_node(logical)
            for k, v in zip(node.keys, node.values):
                if low is not None and k < low:
                    continue
                if high is not None and k > high:
                    for value in sorted(run_values):
                        yield run_key, value
                    return
                if run_values and k == run_key:
                    run_values.append(v)
                else:
                    for value in sorted(run_values):
                        yield run_key, value
                    run_key, run_values = k, [v]
            logical = node.next_leaf
        for value in sorted(run_values):
            yield run_key, value

    def items(self) -> Iterator[tuple[object, int]]:
        """Every entry in key order."""
        return self.range_search()

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key) -> bool:
        return bool(self.search(key))

    # -- deletion -------------------------------------------------------------------------

    def delete(self, key, value: int) -> bool:
        """Remove one exact ``(key, value)`` entry; returns whether found.

        Lazy deletion: leaves may underflow but are never merged.
        """
        if self._count == 0:
            return False
        self._check_key(key)
        logical = self._leftmost_leaf_for(key)
        while logical != _NO_PAGE:
            node = self._read_node(logical)
            for i, (k, v) in enumerate(zip(node.keys, node.values)):
                if k > key:
                    return False
                if k == key and v == value:
                    del node.keys[i]
                    del node.values[i]
                    self._write_node(logical, node)
                    self._count -= 1
                    self._store_meta()
                    return True
            logical = node.next_leaf
        return False

    # -- invariants (used by tests) ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raises :class:`BTreeError` if broken."""
        leaf_depths: set[int] = set()
        entries = 0

        def walk(logical: int, depth: int, low, high) -> None:
            nonlocal entries
            node = self._read_node(logical)
            sortable = node.keys if node.is_leaf else node.keys
            if any(sortable[i] > sortable[i + 1] for i in range(len(sortable) - 1)):
                raise BTreeError(f"node {logical} keys out of order")
            for k in node.keys:
                if low is not None and k < low:
                    raise BTreeError(f"node {logical} violates lower bound")
                if high is not None and k > high:
                    raise BTreeError(f"node {logical} violates upper bound")
            if node.is_leaf:
                leaf_depths.add(depth)
                entries += len(node.keys)
                return
            if len(node.children) != len(node.keys) + 1:
                raise BTreeError(f"node {logical} child/key arity broken")
            bounds = [low, *node.keys, high]
            for i, child in enumerate(node.children):
                walk(child, depth + 1, bounds[i], bounds[i + 1])

        walk(self._root, 0, None, None)
        if len(leaf_depths) > 1:
            raise BTreeError(f"leaves at multiple depths: {leaf_depths}")
        if entries != self._count:
            raise BTreeError(
                f"entry count {entries} does not match metadata {self._count}"
            )
        # the leaf chain must enumerate every entry in sorted order
        chained = list(self.items())
        if len(chained) != self._count:
            raise BTreeError("leaf chain does not cover all entries")
        if any(chained[i][0] > chained[i + 1][0] for i in range(len(chained) - 1)):
            raise BTreeError("leaf chain out of order")

    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        levels = 1
        node = self._read_node(self._root)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
            levels += 1
        return levels

    def size_bytes(self) -> int:
        """On-disk footprint of the tree's page file."""
        return self._file.size_bytes()
