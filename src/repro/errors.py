"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems raise the
most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A page id was invalid or a page payload was malformed."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""


class FileError(StorageError):
    """A page file or large object was missing or corrupt."""


class WALError(StorageError):
    """The write-ahead log was malformed or recovery failed."""


class IndexError_(ReproError):
    """Base class for index (B-tree / bitmap) failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class BTreeError(IndexError_):
    """B-tree structural invariant violation or bad operation."""


class BitmapError(IndexError_):
    """Bitmap index misuse (length mismatch, unknown attribute, ...)."""


class RelationalError(ReproError):
    """Base class for relational-layer failures."""


class SchemaError(RelationalError):
    """Schema definition or record/schema mismatch."""


class CatalogError(RelationalError):
    """Unknown or duplicate table / index names."""


class ArrayError(ReproError):
    """Base class for OLAP Array ADT failures."""


class ChunkError(ArrayError):
    """Chunk geometry violation or corrupt chunk payload."""


class CompressionError(ArrayError):
    """A chunk codec could not encode or decode a payload."""


class DimensionError(ArrayError):
    """Unknown dimension key, index out of range, or hierarchy misuse."""


class QueryError(ReproError):
    """Malformed OLAP query or unsupported query feature."""


class PlanError(QueryError):
    """The planner could not produce a plan for the requested backend."""


class SQLError(QueryError):
    """The SQL-subset parser rejected the statement."""


class DataGenError(ReproError):
    """Synthetic data generator was configured inconsistently."""


class MetricsError(ReproError):
    """Bad metrics-registry operation (duplicate or unknown source)."""


class ServeError(ReproError):
    """Base class for query-service failures."""


class AdmissionError(ServeError):
    """The service refused a query (queue full / shutting down)."""
