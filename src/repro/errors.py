"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystems raise the
most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ReproError):
    """Mixin marking a failure that may succeed if simply retried.

    The serving layer's retry loop dispatches on this: an exception
    that is ``isinstance(exc, TransientError)`` is retried with capped
    exponential backoff before the cube is declared degraded.
    """


class PermanentError(ReproError):
    """Mixin marking a failure retrying cannot fix (corruption, bugs).

    The retry layer fails fast on these: the cube goes straight to
    degraded mode and the error propagates to the caller.
    """


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A page id was invalid or a page payload was malformed."""


class BufferPoolError(StorageError):
    """The buffer pool could not satisfy a request (e.g. all frames pinned)."""


class FileError(StorageError):
    """A page file or large object was missing or corrupt."""


class WALError(StorageError):
    """The write-ahead log was malformed or recovery failed."""


class TruncatedWALError(WALError):
    """A WAL record extends past the physical end of the log.

    Only a torn tail — an append cut short by a crash — produces this,
    so the open-time scan may safely discard the partial record.
    """


class CorruptWALError(WALError, PermanentError):
    """A WAL record's framing or CRC check failed.

    A tear removes bytes but never alters them, so a corrupt record
    that is not the final one means mid-log damage: committed data may
    follow it, and recovery must refuse to silently truncate.
    ``frame_end`` is the byte offset just past the record's frame when
    the framing itself was intact (CRC failure), else ``None``.
    """

    def __init__(self, message: str, frame_end: int | None = None):
        super().__init__(message)
        self.frame_end = frame_end


class TransientDiskError(StorageError, TransientError):
    """A disk access failed in a way a retry may fix (injected or real)."""


class FaultError(StorageError):
    """Fault-injection misuse (unknown crash point, bad plan)."""


class SimulatedCrash(StorageError):
    """An injected crash: the process 'died' at a registered crash point.

    Deliberately neither transient nor permanent — a crash is not an
    error to handle but a point after which only recovery may run.
    """


class IndexError_(ReproError):
    """Base class for index (B-tree / bitmap) failures.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class BTreeError(IndexError_):
    """B-tree structural invariant violation or bad operation."""


class BitmapError(IndexError_):
    """Bitmap index misuse (length mismatch, unknown attribute, ...)."""


class RelationalError(ReproError):
    """Base class for relational-layer failures."""


class SchemaError(RelationalError):
    """Schema definition or record/schema mismatch."""


class CatalogError(RelationalError):
    """Unknown or duplicate table / index names."""


class ArrayError(ReproError):
    """Base class for OLAP Array ADT failures."""


class ChunkError(ArrayError):
    """Chunk geometry violation or corrupt chunk payload."""


class CompressionError(ArrayError):
    """A chunk codec could not encode or decode a payload."""


class DimensionError(ArrayError):
    """Unknown dimension key, index out of range, or hierarchy misuse."""


class QueryError(ReproError):
    """Malformed OLAP query or unsupported query feature."""


class PlanError(QueryError):
    """The planner could not produce a plan for the requested backend."""


class SQLError(QueryError):
    """The SQL-subset parser rejected the statement."""


class DataGenError(ReproError):
    """Synthetic data generator was configured inconsistently."""


class MetricsError(ReproError):
    """Bad metrics-registry operation (duplicate or unknown source)."""


class ServeError(ReproError):
    """Base class for query-service failures."""


class AdmissionError(ServeError):
    """The service refused a query (queue full / shutting down)."""


class DegradedError(ServeError, TransientError):
    """The cube is in degraded mode: only cache hits are served.

    Transient by design — once ``recover_cube()`` has run, the same
    request will succeed, so clients may retry later.
    """


class RetryExhaustedError(ServeError, PermanentError):
    """Transient faults persisted through every retry attempt."""


class ApiError(ReproError):
    """Base class for HTTP query-API failures.

    Carries the HTTP ``status`` and a machine-readable ``kind`` so the
    server can render a structured 4xx body without string-matching
    messages.  Anything the client sent wrong — malformed JSON, unknown
    cube/dimension/measure, bad cut syntax, oversized bodies — must
    surface as this, never as a 500.
    """

    status = 400
    kind = "bad_request"

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status


class ApiModelError(ApiError):
    """The logical model file is malformed or inconsistent."""

    status = 500
    kind = "model_error"


class ApiRequestError(ApiError):
    """The aggregate request itself is malformed (syntax, types)."""

    status = 400
    kind = "bad_request"


class ApiNotFoundError(ApiError):
    """Unknown route, cube, dimension, level, or measure."""

    status = 404
    kind = "not_found"


class ApiTooLargeError(ApiError):
    """The request body exceeds the configured size cap."""

    status = 413
    kind = "too_large"


class ShardError(ReproError):
    """Base class for shard coordinator / worker failures."""


class ShardScatterError(ShardError, TransientError):
    """A scatter lost shards past the coordinator's re-scatter budget.

    Transient by design: worker processes are respawned lazily, so the
    serving layer's retry loop may re-run the whole query and the next
    scatter can succeed.  With ``allow_partial=True`` the coordinator
    degrades to a partial result instead of raising this.
    """
