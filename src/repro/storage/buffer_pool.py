"""Fixed-capacity LRU buffer pool over a :class:`SimulatedDisk`.

The pool mirrors the paper's Paradise configuration: a 16 MB pool over
8 KiB pages (2048 frames) by default.  Queries run *cold* — the harness
calls :meth:`BufferPool.clear` before each measured run, as the paper
flushed both the Unix file-system cache and the Paradise pool.

Concurrency notes: this is a single-threaded reproduction, so frames
carry pin counts for correctness of eviction (a pinned frame is never
evicted) but no latching.

Recovery integration: when constructed with a
:class:`~repro.storage.wal.WriteAheadLog`, the pool runs a **no-steal /
redo-only** protocol — dirty frames are not evictable until
:meth:`commit` logs their after-images; a simulated :meth:`crash` drops
all frames, and WAL replay restores every committed write.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import BufferPoolError, PageError
from repro.obs.histogram import Histogram
from repro.storage.crashpoints import crash_point
from repro.storage.disk import SimulatedDisk
from repro.storage.wal import WriteAheadLog
from repro.util.stats import Counters

DEFAULT_POOL_BYTES = 16 * 1024 * 1024


@dataclass
class _Frame:
    data: bytearray
    dirty: bool = False
    pin_count: int = 0
    logged: bool = field(default=True, repr=False)


#: per-frame bookkeeping bytes beyond the page image itself (the
#: ``_Frame`` object, its ``bytearray`` header, the OrderedDict slot).
_FRAME_OVERHEAD = 160


class BufferPool:
    """LRU page cache with pin counts, dirty tracking and statistics."""

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity_bytes: int = DEFAULT_POOL_BYTES,
        wal: WriteAheadLog | None = None,
    ):
        self.disk = disk
        self.capacity_frames = max(1, capacity_bytes // disk.page_size)
        self.wal = wal
        self.counters = Counters()
        #: eviction latency (victim scan + dirty write-back); registered
        #: into the database's MetricsRegistry by ``_build_metrics``
        self.histograms: dict[str, Histogram] = {
            "pool.evict_seconds": Histogram(),
        }
        self._frames: OrderedDict[int, _Frame] = OrderedDict()

    # -- core access --------------------------------------------------------

    def get(self, page_id: int) -> bytearray:
        """Return the in-pool buffer for ``page_id``, faulting it in.

        The returned bytearray is the live frame: mutate it and call
        :meth:`mark_dirty` to persist, but do not hold it across other
        pool calls without :meth:`pin`.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self._frames.move_to_end(page_id)
            self.counters.add("pool_hits")
            return frame.data
        self.counters.add("pool_misses")
        self._make_room()
        data = bytearray(self.disk.read_page(page_id))
        self._frames[page_id] = _Frame(data)
        return data

    def new_page(self, count: int = 1) -> int:
        """Allocate ``count`` fresh zeroed pages; return the first id.

        The first page is installed dirty in the pool without a disk
        read; callers typically write it immediately.
        """
        first = self.disk.allocate(count)
        self._make_room()
        self._frames[first] = _Frame(
            bytearray(self.disk.page_size), dirty=True, logged=False
        )
        return first

    def mark_dirty(self, page_id: int) -> None:
        """Record that the frame for ``page_id`` was modified."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise BufferPoolError(
                f"mark_dirty on page {page_id} which is not resident"
            )
        frame.dirty = True
        frame.logged = False

    def write(self, page_id: int, image: bytes) -> None:
        """Replace the whole page image (faulting the frame in if needed)."""
        if len(image) != self.disk.page_size:
            raise PageError(
                f"page image is {len(image)} bytes, page size is "
                f"{self.disk.page_size}"
            )
        frame = self._frames.get(page_id)
        if frame is None:
            self._make_room()
            frame = _Frame(bytearray(image), dirty=True, logged=False)
            self._frames[page_id] = frame
        else:
            frame.data[:] = image
            frame.dirty = True
            frame.logged = False
            self._frames.move_to_end(page_id)

    # -- pinning --------------------------------------------------------------

    def pin(self, page_id: int) -> bytearray:
        """Fault in and pin a page; pinned frames are never evicted."""
        data = self.get(page_id)
        self._frames[page_id].pin_count += 1
        return data

    def unpin(self, page_id: int) -> None:
        """Release one pin on ``page_id``."""
        frame = self._frames.get(page_id)
        if frame is None or frame.pin_count <= 0:
            raise BufferPoolError(f"unpin of page {page_id} not pinned")
        frame.pin_count -= 1

    # -- eviction / flushing -----------------------------------------------------

    def _evictable(self, frame: _Frame) -> bool:
        if frame.pin_count > 0:
            return False
        if self.wal is not None and frame.dirty and not frame.logged:
            return False  # no-steal: unlogged dirty pages stay resident
        return True

    def _make_room(self) -> None:
        while len(self._frames) >= self.capacity_frames:
            start = time.perf_counter()
            victim_id = None
            for page_id, frame in self._frames.items():  # LRU order
                if self._evictable(frame):
                    victim_id = page_id
                    break
            if victim_id is None:
                raise BufferPoolError(
                    "no evictable frame: all pages pinned or dirty-unlogged "
                    "(call commit() when running with a WAL)"
                )
            frame = self._frames.pop(victim_id)
            if frame.dirty:
                self.counters.add("pool_evict_dirty")
                crash_point("pool.flush_page")
                self.disk.write_page(victim_id, bytes(frame.data))
            else:
                self.counters.add("pool_evict_clean")
            self.histograms["pool.evict_seconds"].observe(
                time.perf_counter() - start
            )

    def flush_all(self) -> None:
        """Write every dirty frame to disk (frames stay resident)."""
        if self.wal is not None:
            self.commit()
        for page_id, frame in self._frames.items():
            if frame.dirty:
                crash_point("pool.flush_page")
                self.disk.write_page(page_id, bytes(frame.data))
                frame.dirty = False

    def clear(self) -> None:
        """Flush everything and drop all frames (the cold-cache reset)."""
        pinned = [pid for pid, f in self._frames.items() if f.pin_count > 0]
        if pinned:
            raise BufferPoolError(f"cannot clear pool: pages {pinned} pinned")
        self.flush_all()
        self._frames.clear()

    # -- transactions (redo-only WAL) ------------------------------------------

    def commit(self) -> None:
        """Log after-images of all unlogged dirty frames, then a COMMIT."""
        if self.wal is None:
            return
        logged_any = False
        for page_id, frame in self._frames.items():
            if frame.dirty and not frame.logged:
                self.wal.log_page(page_id, bytes(frame.data))
                frame.logged = True
                logged_any = True
        if logged_any:
            self.wal.log_commit()

    def crash(self) -> None:
        """Simulate a crash: every frame is lost, nothing is flushed."""
        self._frames.clear()

    # -- statistics ------------------------------------------------------------

    def resident_pages(self) -> int:
        """Number of frames currently cached."""
        return len(self._frames)

    def resident_bytes(self) -> int:
        """Bytes held by cached frames: pages plus per-frame bookkeeping.

        O(1) — frames are uniformly ``page_size`` bytes, so the memory
        accountant can sample this from another thread without
        iterating (and racing) the frame map.
        """
        return self.resident_pages() * (self.disk.page_size + _FRAME_OVERHEAD)

    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool (0.0 if none)."""
        hits = self.counters.get("pool_hits")
        total = hits + self.counters.get("pool_misses")
        return hits / total if total else 0.0

    def reset_stats(self) -> dict[str, float]:
        """Zero pool counters (query boundary); returns the pre-reset
        snapshot so callers can keep the previous run's measurements."""
        return self.counters.reset()
