"""SHORE-like storage substrate.

The paper's systems (both the OLAP Array ADT and the relational
baselines) sit on the SHORE storage manager: a paged volume, a buffer
pool, large objects, and recovery.  This package is our Python
equivalent.  Every persistent byte of every structure in the library is
serialized onto pages of a :class:`~repro.storage.disk.SimulatedDisk`
and cached by a shared :class:`~repro.storage.buffer_pool.BufferPool`,
so storage sizes and I/O counts in the experiments are real measurements
rather than estimates.
"""

from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.buffer_pool import BufferPool
from repro.storage.page_file import FileManager, PageFile
from repro.storage.slotted_page import SlottedPage
from repro.storage.large_object import LargeObjectStore
from repro.storage.wal import WriteAheadLog, recover
from repro.storage.locks import LockManager
from repro.storage.crashpoints import (
    FaultPlan,
    active_plan,
    crash_point,
    fault_plan,
    register_crash_point,
    registered_crash_points,
)
from repro.storage.faults import FaultyDisk, FaultyWAL

__all__ = [
    "DiskModel",
    "SimulatedDisk",
    "BufferPool",
    "FileManager",
    "PageFile",
    "SlottedPage",
    "LargeObjectStore",
    "WriteAheadLog",
    "recover",
    "LockManager",
    "FaultPlan",
    "FaultyDisk",
    "FaultyWAL",
    "active_plan",
    "crash_point",
    "fault_plan",
    "register_crash_point",
    "registered_crash_points",
]
