"""Minimal table-level reader/writer lock manager.

Paradise inherits full concurrency control from SHORE; the paper's
single-user experiments never exercise it.  We keep the substrate
honest with a small lock table: shared/exclusive modes per named
resource, upgrade support, and conflict detection.  The reproduction is
single-threaded, so a conflicting request raises
:class:`~repro.errors.StorageError` immediately instead of blocking.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import StorageError

SHARED = "S"
EXCLUSIVE = "X"


@dataclass
class _LockState:
    holders: dict[str, str] = field(default_factory=dict)  # owner -> mode


class LockManager:
    """Shared/exclusive locks keyed by resource name."""

    def __init__(self) -> None:
        self._table: dict[str, _LockState] = {}

    def acquire(self, resource: str, mode: str, owner: str) -> None:
        """Acquire (or upgrade) a lock; raises on conflict."""
        if mode not in (SHARED, EXCLUSIVE):
            raise StorageError(f"unknown lock mode {mode!r}")
        state = self._table.setdefault(resource, _LockState())
        held = state.holders.get(owner)
        if held == EXCLUSIVE or held == mode:
            return
        others = {o: m for o, m in state.holders.items() if o != owner}
        if mode == EXCLUSIVE and others:
            raise StorageError(
                f"{owner!r} cannot take X lock on {resource!r}: held by "
                f"{sorted(others)}"
            )
        if mode == SHARED and any(m == EXCLUSIVE for m in others.values()):
            raise StorageError(
                f"{owner!r} cannot take S lock on {resource!r}: X-locked"
            )
        state.holders[owner] = mode

    def release(self, resource: str, owner: str) -> None:
        """Release ``owner``'s lock on ``resource``."""
        state = self._table.get(resource)
        if state is None or owner not in state.holders:
            raise StorageError(
                f"{owner!r} holds no lock on {resource!r}"
            )
        del state.holders[owner]
        if not state.holders:
            del self._table[resource]

    def release_all(self, owner: str) -> None:
        """Release every lock held by ``owner`` (end of transaction)."""
        for resource in [
            r for r, s in self._table.items() if owner in s.holders
        ]:
            self.release(resource, owner)

    def mode(self, resource: str, owner: str) -> str | None:
        """Mode ``owner`` holds on ``resource`` (``None`` if unlocked)."""
        state = self._table.get(resource)
        if state is None:
            return None
        return state.holders.get(owner)

    @contextmanager
    def locked(self, resource: str, mode: str, owner: str):
        """Context manager holding a lock for the duration of a block."""
        self.acquire(resource, mode, owner)
        try:
            yield
        finally:
            self.release(resource, owner)
