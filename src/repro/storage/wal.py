"""Redo-only write-ahead log and crash recovery.

SHORE gave Paradise recovery "for free"; the paper never benchmarks it
but the substrate is incomplete without it.  We implement the simplest
sound protocol for a no-steal buffer pool:

- :meth:`WriteAheadLog.log_page` appends a full after-image record,
- :meth:`WriteAheadLog.log_commit` appends a commit record and then
  **syncs** — the fsync point that makes everything before it durable,
- :func:`recover` replays committed page records (in LSN order) into
  the disk after a crash,
- :meth:`WriteAheadLog.checkpoint` persists a volume image (via
  :meth:`SimulatedDisk.save <repro.storage.disk.SimulatedDisk.save>`)
  and truncates the log once the buffer pool has flushed.

Two storage modes share one implementation.  Constructed with no path
the log lives in process memory (the original behaviour, still used by
unit tests and the default :class:`~repro.relational.catalog.Database`).
Constructed with a **directory path** the log is file-backed: records
accumulate in memory until a sync point, then append to fixed-size
**segment files** with an ``fsync``; reopening the directory tail-scans
the segments and a torn final record — a partial append cut short by a
crash — is detected (length framing + CRC32 trailer), discarded, and
physically truncated away rather than replayed.  Records past the last
commit marker (an aborted transaction's synced tail) are discarded the
same way, at reopen and by :func:`recover`: left in place, the next
commit marker appended after them would retroactively "commit" the
aborted transaction.  A decode failure that is *not* confined to the
final record is mid-log corruption, and opening the log raises
:class:`~repro.errors.WALError` instead of silently truncating
committed records.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from dataclasses import dataclass

from repro.errors import CorruptWALError, TruncatedWALError, WALError
from repro.obs.histogram import Histogram
from repro.storage.crashpoints import crash_point
from repro.util.stats import Counters

_RECORD_HEADER = struct.Struct("<qbqi")  # lsn, kind, page_id, payload_len
_CRC = struct.Struct("<I")
_KIND_PAGE = 1
_KIND_COMMIT = 2

_SEGMENT_MAGIC = b"RPROWAL1"
_SEGMENT_SUFFIX = ".wal"

DEFAULT_SEGMENT_BYTES = 1 << 20
CHECKPOINT_IMAGE = "checkpoint.img"


@dataclass(frozen=True)
class LogRecord:
    """One WAL record: a page after-image or a commit marker."""

    lsn: int
    kind: int
    page_id: int
    image: bytes

    def encode(self) -> bytes:
        header = _RECORD_HEADER.pack(
            self.lsn, self.kind, self.page_id, len(self.image)
        )
        crc = zlib.crc32(self.image, zlib.crc32(header))
        return header + self.image + _CRC.pack(crc)

    @classmethod
    def decode(cls, payload: bytes, offset: int) -> tuple["LogRecord", int]:
        if offset + _RECORD_HEADER.size > len(payload):
            raise TruncatedWALError("truncated WAL record header")
        lsn, kind, page_id, length = _RECORD_HEADER.unpack_from(payload, offset)
        if length < 0 or kind not in (_KIND_PAGE, _KIND_COMMIT):
            raise CorruptWALError("corrupt WAL record header")
        start = offset + _RECORD_HEADER.size
        end = start + length
        if end + _CRC.size > len(payload):
            raise TruncatedWALError("truncated WAL record payload")
        image = payload[start:end]
        (crc,) = _CRC.unpack_from(payload, end)
        expected = zlib.crc32(
            image, zlib.crc32(payload[offset : offset + _RECORD_HEADER.size])
        )
        if crc != expected:
            raise CorruptWALError(
                "corrupt WAL record (CRC mismatch)", frame_end=end + _CRC.size
            )
        return cls(lsn, kind, page_id, image), end + _CRC.size


class WriteAheadLog:
    """Append-only log of page after-images and commit markers.

    ``path`` selects the storage mode: ``None`` keeps the log in memory;
    a directory path makes it file-backed and segmented.  Opening a
    directory that already holds segments resumes the log it contains
    (after the torn-tail scan) — this is how a "restarted process" sees
    the log its predecessor wrote.
    """

    def __init__(
        self,
        path: str | None = None,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if segment_bytes <= 0:
            raise WALError(f"segment_bytes must be positive, got {segment_bytes}")
        self.path = path
        self.segment_bytes = segment_bytes
        self.counters = Counters()
        #: latency distributions, registered into the database's
        #: MetricsRegistry by ``Database._build_metrics`` (the WAL has
        #: no registry handle of its own)
        self.histograms: dict[str, Histogram] = {
            "wal.append_seconds": Histogram(),
            "wal.fsync_seconds": Histogram(),
            "wal.commit_seconds": Histogram(),
            "wal.recovery_seconds": Histogram(),
        }
        #: set by the tail scan when a torn final record was discarded
        self.torn_tail_detected = False
        self._buffer = bytearray()  # full decoded-log mirror
        self._synced = 0  # bytes of _buffer that are durable
        self._next_lsn = 0
        self._handle = None  # current segment, open for append
        self._next_segment = 0
        self._closed = False
        if path is not None:
            os.makedirs(path, exist_ok=True)
            self._scan_segments()

    @classmethod
    def open(cls, path: str, segment_bytes: int = DEFAULT_SEGMENT_BYTES):
        """Open (or create) a file-backed log rooted at directory ``path``."""
        return cls(path, segment_bytes=segment_bytes)

    # -- segment management ------------------------------------------------

    def _segment_files(self) -> list[str]:
        assert self.path is not None
        names = sorted(
            n for n in os.listdir(self.path) if n.endswith(_SEGMENT_SUFFIX)
        )
        return [os.path.join(self.path, n) for n in names]

    def _segment_path(self, index: int) -> str:
        assert self.path is not None
        return os.path.join(self.path, f"{index:08d}{_SEGMENT_SUFFIX}")

    def _scan_segments(self) -> None:
        """Load every segment, tolerating a torn record at the very tail.

        The valid prefix becomes the in-memory mirror; torn bytes are
        truncated off the final segment so later appends never land
        after garbage.  A decode failure that is *not* confined to the
        final record is mid-log corruption, not a tear, and raises
        rather than silently discarding committed data.  Records past
        the last commit marker (an aborted transaction's synced tail)
        are likewise discarded: the dead process can never finish that
        transaction, and a survivor's first commit marker must not
        retroactively commit it.
        """
        files = self._segment_files()
        raw = bytearray()
        lengths: list[int] = []
        for file_path in files:
            with open(file_path, "rb") as handle:
                blob = handle.read()
            if blob[: len(_SEGMENT_MAGIC)] != _SEGMENT_MAGIC:
                raise WALError(f"{file_path!r} is not a WAL segment")
            body = blob[len(_SEGMENT_MAGIC) :]
            raw += body
            lengths.append(len(body))
        payload = bytes(raw)
        offset = 0
        last_lsn = -1
        while offset < len(payload):
            try:
                record, offset = LogRecord.decode(payload, offset)
            except TruncatedWALError:
                # The final append was cut short: a genuine torn tail.
                self._note_torn_tail(payload, offset, files, lengths)
                break
            except CorruptWALError as exc:
                if exc.frame_end is not None and exc.frame_end >= len(payload):
                    # CRC failure confined to the final record — the
                    # trailer never fully landed; treat it as a tear.
                    self._note_torn_tail(payload, offset, files, lengths)
                    break
                raise WALError(
                    f"WAL corruption at byte {offset} of {self.path!r} "
                    "with log data after it; refusing to truncate possibly "
                    "committed records — restore from a checkpoint image"
                ) from exc
            last_lsn = record.lsn
        self._buffer = bytearray(payload[:offset])
        self._synced = len(self._buffer)
        self._next_lsn = last_lsn + 1
        self.discard_uncommitted_tail()
        self._resume_tail()

    def _note_torn_tail(
        self, payload: bytes, offset: int, files: list[str], lengths: list[int]
    ) -> None:
        self.torn_tail_detected = True
        self.counters.add("wal_torn_tail_bytes", len(payload) - offset)
        self._truncate_tail(files, lengths, offset)

    def _resume_tail(self) -> None:
        """Point the append state at the current last segment on disk.

        Re-lists the directory rather than trusting a pre-truncation
        listing: truncation may have deleted the final segment(s).
        """
        self._roll_segment()
        files = self._segment_files()
        if not files:
            return
        last = files[-1]
        self._next_segment = (
            int(os.path.basename(last)[: -len(_SEGMENT_SUFFIX)]) + 1
        )
        if os.path.getsize(last) < self.segment_bytes:
            # resume appending to the final, not-yet-full segment
            self._handle = open(last, "ab")

    def _truncate_tail(
        self, files: list[str], lengths: list[int], valid: int
    ) -> None:
        """Physically discard everything past byte ``valid`` of the log."""
        consumed = 0
        for file_path, length in zip(files, lengths):
            if consumed + length <= valid:
                consumed += length
                continue
            keep = valid - consumed
            with open(file_path, "r+b") as handle:
                handle.truncate(len(_SEGMENT_MAGIC) + keep)
                handle.flush()
                os.fsync(handle.fileno())
            consumed += length
            valid = consumed  # later segments are entirely past the tear
        # drop any segments that became empty shells past the tear
        for file_path in files:
            if os.path.getsize(file_path) == len(_SEGMENT_MAGIC):
                os.remove(file_path)

    def _current_handle(self):
        if self._handle is None:
            path = self._segment_path(self._next_segment)
            self._next_segment += 1
            self._handle = open(path, "ab")
            self._handle.write(_SEGMENT_MAGIC)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.counters.add("wal_segments")
        return self._handle

    def _roll_segment(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _write_durable(self, data: bytes) -> None:
        """Append ``data`` to the current segment and fsync it.

        The single override point for fault injection: ``FaultyWAL``
        tears appends here.  Records never span segments — a sync batch
        lands whole in one file and rollover happens between batches.
        """
        handle = self._current_handle()
        start = time.perf_counter()
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
        self.histograms["wal.fsync_seconds"].observe(
            time.perf_counter() - start
        )
        self.counters.add("wal_fsyncs")
        self.counters.add("wal_synced_bytes", len(data))
        if handle.tell() >= self.segment_bytes:
            self._roll_segment()

    # -- appending ---------------------------------------------------------

    def _append(self, kind: int, page_id: int, image: bytes) -> int:
        crash_point("wal.append")
        start = time.perf_counter()
        record = LogRecord(self._next_lsn, kind, page_id, image)
        encoded = record.encode()
        self._buffer += encoded
        self._next_lsn += 1
        self.histograms["wal.append_seconds"].observe(
            time.perf_counter() - start
        )
        self.counters.add("wal_records")
        self.counters.add("wal_bytes", len(encoded))
        if kind == _KIND_COMMIT:
            self.counters.add("wal_commits")
        return record.lsn

    def log_page(self, page_id: int, image: bytes) -> int:
        """Append a page after-image; returns its LSN."""
        return self._append(_KIND_PAGE, page_id, image)

    def log_commit(self) -> int:
        """Append a commit marker and sync: the durability point.

        When :meth:`log_commit` returns, every record logged before it
        survives a crash.
        """
        crash_point("wal.commit")
        start = time.perf_counter()
        lsn = self._append(_KIND_COMMIT, 0, b"")
        self.sync()
        self.histograms["wal.commit_seconds"].observe(
            time.perf_counter() - start
        )
        return lsn

    def sync(self) -> None:
        """Force every pending record into durable storage (fsync point).

        In-memory logs treat the whole buffer as durable, so this is a
        bookkeeping no-op there.
        """
        pending = bytes(self._buffer[self._synced :])
        if not pending:
            return
        crash_point("wal.sync")
        if self.path is not None:
            self._write_durable(pending)
            self.counters.add("wal_syncs")
        self._synced = len(self._buffer)

    @property
    def pending_bytes(self) -> int:
        """Appended but not yet durable bytes (lost if we crash now)."""
        return len(self._buffer) - self._synced

    def discard_uncommitted_tail(self) -> int:
        """Drop every record past the last commit marker; returns bytes cut.

        A synced-but-uncommitted tail (e.g. page after-images whose
        commit marker was torn off, or a transaction aborted mid-append)
        must not stay in the log: the *next* commit marker appended
        after it would retroactively "commit" it and a later recovery
        would replay aborted writes.  :func:`recover` and the open-time
        segment scan both call this; file-backed logs are physically
        truncated so the orphans cannot resurface after a restart.
        """
        payload = bytes(self._buffer)
        offset = 0
        committed_end = 0
        while offset < len(payload):
            record, offset = LogRecord.decode(payload, offset)
            if record.kind == _KIND_COMMIT:
                committed_end = offset
        dropped = len(payload) - committed_end
        if not dropped:
            return 0
        if self.path is not None and self._synced > committed_end:
            self._roll_segment()
            files = self._segment_files()
            lengths = [
                os.path.getsize(f) - len(_SEGMENT_MAGIC) for f in files
            ]
            self._truncate_tail(files, lengths, committed_end)
            self._resume_tail()
        del self._buffer[committed_end:]
        self._synced = min(self._synced, committed_end)
        self.counters.add("wal_orphan_bytes_discarded", dropped)
        return dropped

    # -- reading -----------------------------------------------------------

    def records(self) -> list[LogRecord]:
        """Decode the whole log (oldest first); strict — raises
        :class:`WALError` on any malformed record."""
        out = []
        payload = bytes(self._buffer)
        offset = 0
        while offset < len(payload):
            record, offset = LogRecord.decode(payload, offset)
            out.append(record)
        return out

    def size_bytes(self) -> int:
        """Current encoded size of the log."""
        return len(self._buffer)

    def segment_count(self) -> int:
        """Number of segment files on disk (0 for an in-memory log)."""
        if self.path is None:
            return 0
        return len(self._segment_files())

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, disk=None, image_path: str | None = None) -> str | None:
        """Persist a volume image, then truncate the log.

        The caller (usually :meth:`Database.checkpoint
        <repro.relational.catalog.Database.checkpoint>`) guarantees the
        buffer pool has flushed, so the disk holds every committed page.
        ``disk.save`` writes the image to a temporary file which is then
        atomically renamed — a crash mid-checkpoint leaves either the
        old image + old log (recoverable) or the new image + old log
        (replay is idempotent), never a half-written image.

        Returns the image path, or ``None`` when no image was written.
        """
        written = None
        if disk is not None:
            if image_path is None:
                if self.path is None:
                    raise WALError(
                        "checkpoint with a disk needs an image path for "
                        "an in-memory WAL"
                    )
                image_path = os.path.join(self.path, CHECKPOINT_IMAGE)
            tmp_path = image_path + ".tmp"
            disk.save(tmp_path)
            os.replace(tmp_path, image_path)
            written = image_path
        crash_point("checkpoint.pre_truncate")
        self._roll_segment()
        if self.path is not None:
            for file_path in self._segment_files():
                os.remove(file_path)
        self._buffer.clear()
        self._synced = 0
        self.counters.add("wal_checkpoints")
        return written

    def checkpoint_image_path(self) -> str | None:
        """Default image location for a file-backed log (if it exists)."""
        if self.path is None:
            return None
        candidate = os.path.join(self.path, CHECKPOINT_IMAGE)
        return candidate if os.path.exists(candidate) else None

    # -- lifecycle ---------------------------------------------------------

    def close(self, sync: bool = True) -> None:
        """Release the segment handle; by default syncs pending records
        first (a graceful shutdown — pass ``sync=False`` to model a
        process that simply exited)."""
        if self._closed:
            return
        if sync:
            self.sync()
        self._closed = True
        self._roll_segment()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def recover(disk, wal: WriteAheadLog) -> int:
    """Replay committed page after-images into ``disk``.

    Records after the last commit marker belong to an unfinished
    transaction and are **discarded from the log** (redo-only,
    no-steal ⇒ nothing to undo) — not merely skipped, or the next
    commit marker appended to ``wal`` would retroactively commit them
    and a later recovery would replay aborted writes.  Returns the
    number of pages replayed.
    """
    start = time.perf_counter()
    wal.discard_uncommitted_tail()
    records = wal.records()
    replayed = 0
    latest: dict[int, bytes] = {}
    for record in records:
        if record.kind == _KIND_PAGE:
            latest[record.page_id] = record.image
    for page_id, image in latest.items():
        if page_id >= disk.num_pages:
            # The allocation happened before the crash but only the WAL
            # remembers it; re-extend the volume.
            disk.allocate(page_id - disk.num_pages + 1)
        disk.write_page(page_id, image)
        replayed += 1
    wal.counters.add("wal_pages_replayed", replayed)
    wal.counters.add("wal_recoveries")
    wal.histograms["wal.recovery_seconds"].observe(
        time.perf_counter() - start
    )
    return replayed
