"""Redo-only write-ahead log and crash recovery.

SHORE gave Paradise recovery "for free"; the paper never benchmarks it
but the substrate is incomplete without it.  We implement the simplest
sound protocol for a no-steal buffer pool:

- :meth:`WriteAheadLog.log_page` appends a full after-image record,
- :meth:`WriteAheadLog.log_commit` appends a commit record making all
  preceding page records durable,
- :func:`recover` replays committed page records (in LSN order) into
  the disk after a crash,
- :meth:`WriteAheadLog.checkpoint` truncates the log once the buffer
  pool has flushed (called by the pool's owner).

Log records live in memory, mirroring how the simulated disk works; the
format is still length-prefixed binary so the serialization path is
exercised and testable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import WALError
from repro.util.stats import Counters

_RECORD_HEADER = struct.Struct("<qbqi")  # lsn, kind, page_id, payload_len
_KIND_PAGE = 1
_KIND_COMMIT = 2


@dataclass(frozen=True)
class LogRecord:
    """One WAL record: a page after-image or a commit marker."""

    lsn: int
    kind: int
    page_id: int
    image: bytes

    def encode(self) -> bytes:
        header = _RECORD_HEADER.pack(
            self.lsn, self.kind, self.page_id, len(self.image)
        )
        return header + self.image

    @classmethod
    def decode(cls, payload: bytes, offset: int) -> tuple["LogRecord", int]:
        if offset + _RECORD_HEADER.size > len(payload):
            raise WALError("truncated WAL record header")
        lsn, kind, page_id, length = _RECORD_HEADER.unpack_from(payload, offset)
        start = offset + _RECORD_HEADER.size
        if start + length > len(payload):
            raise WALError("truncated WAL record payload")
        image = payload[start : start + length]
        return cls(lsn, kind, page_id, image), start + length


class WriteAheadLog:
    """Append-only log of page after-images and commit markers."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._next_lsn = 0
        self.counters = Counters()

    def _append(self, kind: int, page_id: int, image: bytes) -> int:
        record = LogRecord(self._next_lsn, kind, page_id, image)
        encoded = record.encode()
        self._buffer += encoded
        self._next_lsn += 1
        self.counters.add("wal_records")
        self.counters.add("wal_bytes", len(encoded))
        if kind == _KIND_COMMIT:
            self.counters.add("wal_commits")
        return record.lsn

    def log_page(self, page_id: int, image: bytes) -> int:
        """Append a page after-image; returns its LSN."""
        return self._append(_KIND_PAGE, page_id, image)

    def log_commit(self) -> int:
        """Append a commit marker; returns its LSN."""
        return self._append(_KIND_COMMIT, 0, b"")

    def records(self) -> list[LogRecord]:
        """Decode the whole log (oldest first)."""
        out = []
        offset = 0
        while offset < len(self._buffer):
            record, offset = LogRecord.decode(bytes(self._buffer), offset)
            out.append(record)
        return out

    def checkpoint(self) -> None:
        """Truncate the log; caller guarantees the disk is up to date."""
        self._buffer.clear()

    def size_bytes(self) -> int:
        """Current encoded size of the log."""
        return len(self._buffer)


def recover(disk, wal: WriteAheadLog) -> int:
    """Replay committed page after-images into ``disk``.

    Records after the last commit marker belong to an unfinished
    transaction and are discarded (redo-only, no-steal ⇒ nothing to
    undo).  Returns the number of pages replayed.
    """
    records = wal.records()
    last_commit = -1
    for i, record in enumerate(records):
        if record.kind == _KIND_COMMIT:
            last_commit = i
    replayed = 0
    latest: dict[int, bytes] = {}
    for record in records[: last_commit + 1]:
        if record.kind == _KIND_PAGE:
            latest[record.page_id] = record.image
    for page_id, image in latest.items():
        if page_id >= disk.num_pages:
            # The allocation happened before the crash but only the WAL
            # remembers it; re-extend the volume.
            disk.allocate(page_id - disk.num_pages + 1)
        disk.write_page(page_id, image)
        replayed += 1
    return replayed
