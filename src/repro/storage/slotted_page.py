"""Slot-directory page layout for variable-length records.

This is the "standard relational" page format that §4.4 contrasts the
fact file against: each page carries a slot directory growing forward
from the header while record payloads grow backward from the tail.  The
per-record cost is the 4-byte slot entry plus the page header — the
space overhead the fact file exists to eliminate (ablation ``abl4``).

The class wraps a page buffer (a buffer-pool frame) and edits it in
place; callers mark the frame dirty.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.errors import PageError

_HEADER = struct.Struct("<HH")  # nslots, free_end
_SLOT = struct.Struct("<HH")  # offset, length
_DELETED = 0xFFFF


class SlottedPage:
    """In-place editor for one slotted page image."""

    def __init__(self, buffer: bytearray):
        self.buffer = buffer

    @classmethod
    def format(cls, buffer: bytearray) -> "SlottedPage":
        """Initialize an empty slotted page over ``buffer``."""
        page = cls(buffer)
        _HEADER.pack_into(buffer, 0, 0, len(buffer))
        return page

    # -- header helpers ---------------------------------------------------------

    def _header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self.buffer, 0)

    def _set_header(self, nslots: int, free_end: int) -> None:
        _HEADER.pack_into(self.buffer, 0, nslots, free_end)

    def _slot(self, slot: int) -> tuple[int, int]:
        nslots, _ = self._header()
        if not 0 <= slot < nslots:
            raise PageError(f"slot {slot} out of range [0, {nslots})")
        return _SLOT.unpack_from(self.buffer, _HEADER.size + slot * _SLOT.size)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self.buffer, _HEADER.size + slot * _SLOT.size, offset, length
        )

    # -- record operations ------------------------------------------------------------

    @property
    def nslots(self) -> int:
        """Number of slots ever allocated on this page (including deleted)."""
        return self._header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (payload + slot entry)."""
        nslots, free_end = self._header()
        directory_end = _HEADER.size + nslots * _SLOT.size
        gap = free_end - directory_end
        return max(0, gap - _SLOT.size)

    def insert(self, payload: bytes) -> int | None:
        """Insert a record; returns its slot, or ``None`` if it does not fit."""
        if len(payload) >= _DELETED:
            raise PageError(f"record of {len(payload)} bytes exceeds page format")
        nslots, free_end = self._header()
        directory_end = _HEADER.size + (nslots + 1) * _SLOT.size
        new_free_end = free_end - len(payload)
        if new_free_end < directory_end:
            return None
        self.buffer[new_free_end:free_end] = payload
        self._set_header(nslots + 1, new_free_end)
        self._set_slot(nslots, new_free_end, len(payload))
        return nslots

    def get(self, slot: int) -> bytes:
        """Payload of a slot; raises on deleted slots."""
        offset, length = self._slot(slot)
        if offset == _DELETED:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self.buffer[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Mark a slot deleted (space is not compacted)."""
        offset, _ = self._slot(slot)
        if offset == _DELETED:
            raise PageError(f"slot {slot} already deleted")
        self._set_slot(slot, _DELETED, 0)

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield ``(slot, payload)`` for every live record."""
        nslots, _ = self._header()
        for slot in range(nslots):
            offset, length = self._slot(slot)
            if offset != _DELETED:
                yield slot, bytes(self.buffer[offset : offset + length])
