"""Fault-injecting wrappers over the storage substrate.

:class:`FaultyDisk` and :class:`FaultyWAL` subclass the real
:class:`~repro.storage.disk.SimulatedDisk` and
:class:`~repro.storage.wal.WriteAheadLog` and consult the active
:class:`~repro.storage.crashpoints.FaultPlan` on every I/O, so a whole
database stack (pool, heap files, LOB store, catalog) runs unmodified on
faulty hardware:

- **torn page writes** — a crash at ``disk.torn_write`` persists only a
  seed-chosen prefix of the page image before the process dies,
- **partial WAL appends** — a crash at ``wal.torn_sync`` fsyncs only a
  prefix of the sync batch, cut inside the *final* record so recovery
  must detect and discard a torn tail,
- **crash-at-Nth-write** — ``disk.write`` / ``wal.sync`` / the
  instrumented interior points (``pool.flush_page``, ``lob.write``, ...)
  with ``crash_on_hit=N``,
- **transient read errors** — a budget of
  :class:`~repro.errors.TransientDiskError` raised before the disk
  "heals", exercising the serving layer's retry loop.

Everything is driven by the plan's seed; no wrapper has randomness of
its own.
"""

from __future__ import annotations

from repro.errors import SimulatedCrash, TransientDiskError
from repro.storage.crashpoints import (
    BUILTIN_CRASH_POINTS,
    FaultPlan,
    active_plan,
    crash_point,
    fault_plan,
    register_crash_point,
    registered_crash_points,
)
from repro.storage.disk import SimulatedDisk
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BUILTIN_CRASH_POINTS",
    "FaultPlan",
    "FaultyDisk",
    "FaultyWAL",
    "active_plan",
    "crash_point",
    "fault_plan",
    "register_crash_point",
    "registered_crash_points",
]


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` whose I/O obeys the active fault plan.

    Reads may raise :class:`TransientDiskError` while the plan's budget
    lasts; writes honour the ``disk.write`` (clean crash before any
    bytes land) and ``disk.torn_write`` (crash with a partial page
    persisted) crash points.
    """

    def read_page(self, page_id: int) -> bytes:
        plan = active_plan()
        if plan is not None and plan.should_fail_read():
            self.counters.add("transient_read_errors")
            raise TransientDiskError(
                f"transient read error on page {page_id} (injected)"
            )
        return super().read_page(page_id)

    def write_page(self, page_id: int, image: bytes) -> None:
        crash_point("disk.write")
        plan = active_plan()
        if plan is not None and plan.crash_at == "disk.torn_write":
            if plan.fires("disk.torn_write"):
                # Persist a prefix, zero-fill the rest, then "die".
                cut = plan.torn_cut(len(image))
                torn = image[:cut] + bytes(len(image) - cut)
                super().write_page(page_id, torn)
                self.counters.add("torn_page_writes")
                raise SimulatedCrash("simulated crash at 'disk.torn_write'")
        super().write_page(page_id, image)


class FaultyWAL(WriteAheadLog):
    """A :class:`WriteAheadLog` whose sync path obeys the fault plan.

    The ``wal.torn_sync`` crash point persists only a prefix of the
    fsync batch — cut inside the final record's framing, so the tail
    record of the batch is torn exactly the way a real power cut tears
    the last sector of an append.
    """

    def _write_durable(self, data: bytes) -> None:
        plan = active_plan()
        if plan is not None and plan.crash_at == "wal.torn_sync":
            if plan.fires("wal.torn_sync"):
                cut = plan.torn_tail_cut(len(data))
                super()._write_durable(data[:cut])
                self.counters.add("torn_wal_syncs")
                raise SimulatedCrash("simulated crash at 'wal.torn_sync'")
        super()._write_durable(data)
