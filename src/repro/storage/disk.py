"""Simulated paged disk with a 1997-era I/O cost model.

The paper ran on a 2 GB Quantum Fireball behind a 16 MB buffer pool and
flushed all caches before each query, so its figures are dominated by
how many pages each algorithm touches and whether those touches are
sequential.  We reproduce that with a :class:`SimulatedDisk` that stores
page images in memory and *accounts* (never sleeps) the time a 1997
disk would have spent:

- a seek + rotational delay whenever the accessed page does not
  immediately follow the previously accessed page, and
- a transfer time proportional to the page size.

Simulated seconds accumulate in the disk's :class:`~repro.util.stats.Counters`
under ``sim_io_s`` next to raw ``pages_read`` / ``pages_written`` counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageError
from repro.util.stats import Counters

DEFAULT_PAGE_SIZE = 8192


@dataclass(frozen=True)
class DiskModel:
    """Cost parameters of the simulated disk.

    Defaults approximate a 1997 Quantum Fireball: ~10 ms average
    seek + rotational latency and ~10 MB/s sustained transfer.

    A short *forward* skip (at most ``near_window_pages`` pages) is
    charged as reading through the skipped pages rather than a full
    seek — real disks spin past nearby sectors, which is what makes an
    ascending-position tuple fetch (§4.5) behave like a partial scan.
    """

    seek_ms: float = 10.0
    transfer_mb_per_s: float = 10.0
    near_window_pages: int = 32

    def access_seconds(self, nbytes: int, jump_pages: int) -> float:
        """Simulated seconds for one page access.

        ``jump_pages`` is the distance from the previously accessed
        page (1 = sequential; anything else moved the arm).
        """
        transfer = nbytes / (self.transfer_mb_per_s * 1024 * 1024)
        if jump_pages == 1:
            return transfer
        if 1 < jump_pages <= self.near_window_pages:
            return transfer * jump_pages  # read through the gap
        return transfer + self.seek_ms / 1000.0


class SimulatedDisk:
    """An in-memory volume of fixed-size pages with I/O accounting.

    Page ids are dense non-negative integers handed out by
    :meth:`allocate`; consecutive allocations return consecutive ids, so
    structures that allocate their pages in one burst are laid out
    sequentially — exactly the property the paper relies on for chunk
    files and fact-file extents.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        model: DiskModel | None = None,
    ):
        if page_size <= 0:
            raise PageError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.model = model or DiskModel()
        self.counters = Counters()
        self._pages: list[bytes | None] = []
        self._last_accessed: int | None = None

    # -- allocation -------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of pages allocated so far."""
        return len(self._pages)

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous pages; return the first page id."""
        if count <= 0:
            raise PageError(f"allocation count must be positive, got {count}")
        first = len(self._pages)
        self._pages.extend([None] * count)
        return first

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < len(self._pages):
            raise PageError(
                f"page id {page_id} out of range [0, {len(self._pages)})"
            )

    # -- I/O ---------------------------------------------------------------

    def _account(self, page_id: int, kind: str) -> None:
        if self._last_accessed is None:
            jump = 0  # first access after a reset: a full seek
        else:
            jump = page_id - self._last_accessed
        seconds = self.model.access_seconds(self.page_size, jump)
        self.counters.add("sim_io_s", seconds)
        if jump != 1:
            self.counters.add("seeks")
        self.counters.add(f"pages_{kind}")
        self.counters.add(f"bytes_{kind}", self.page_size)
        self._last_accessed = page_id

    def read_page(self, page_id: int) -> bytes:
        """Read one page image (zero-filled if never written)."""
        self._check(page_id)
        self._account(page_id, "read")
        image = self._pages[page_id]
        if image is None:
            return bytes(self.page_size)
        return image

    def write_page(self, page_id: int, image: bytes) -> None:
        """Write one full page image."""
        self._check(page_id)
        if len(image) != self.page_size:
            raise PageError(
                f"page image is {len(image)} bytes, page size is "
                f"{self.page_size}"
            )
        self._account(page_id, "written")
        self._pages[page_id] = bytes(image)

    # -- statistics ---------------------------------------------------------

    def reset_stats(self) -> dict[str, float]:
        """Zero all counters and forget arm position (query boundary);
        returns the pre-reset snapshot."""
        before = self.counters.reset()
        self._last_accessed = None
        return before

    def used_bytes(self) -> int:
        """Total bytes of allocated pages (the on-disk footprint)."""
        return len(self._pages) * self.page_size

    # -- volume image persistence ---------------------------------------------

    _IMAGE_MAGIC = b"RPRODSK1"

    def save(self, path: str) -> None:
        """Write the whole volume image to a real file.

        Together with :meth:`load` and :meth:`Database.attach
        <repro.relational.catalog.Database.attach>` this lets a built
        database outlive the process.
        """
        import os as _os
        import struct as _struct

        with open(path, "wb") as handle:
            handle.write(self._IMAGE_MAGIC)
            handle.write(_struct.pack("<iq", self.page_size, len(self._pages)))
            zero = bytes(self.page_size)
            for image in self._pages:
                handle.write(zero if image is None else image)
            handle.flush()
            _os.fsync(handle.fileno())

    @classmethod
    def load(cls, path: str, model: DiskModel | None = None) -> "SimulatedDisk":
        """Re-open a volume image written by :meth:`save`."""
        import struct as _struct

        with open(path, "rb") as handle:
            magic = handle.read(len(cls._IMAGE_MAGIC))
            if magic != cls._IMAGE_MAGIC:
                raise PageError(f"{path!r} is not a volume image")
            header = handle.read(12)
            if len(header) != 12:
                raise PageError(f"{path!r} volume image header is truncated")
            page_size, num_pages = _struct.unpack("<iq", header)
            if page_size <= 0 or num_pages < 0:
                raise PageError(
                    f"{path!r} volume image header is corrupt "
                    f"(page_size={page_size}, num_pages={num_pages})"
                )
            disk = cls(page_size=page_size, model=model)
            if num_pages:
                disk.allocate(num_pages)
            for page_id in range(num_pages):
                image = handle.read(page_size)
                if len(image) != page_size:
                    raise PageError(
                        f"{path!r} volume image is truncated at page "
                        f"{page_id} (got {len(image)} of {page_size} bytes)"
                    )
                disk._pages[page_id] = image
        return disk
