"""Crash points and deterministic fault plans.

The paper inherited recovery from SHORE and never had to prove it; our
substrate proves its own.  A **crash point** is a named location in a
write path (buffer-pool flush, WAL append, chunk write, ...) where an
installed :class:`FaultPlan` may terminate the "process" by raising
:class:`~repro.errors.SimulatedCrash`.  The crash-recovery harness
(``repro.bench.faultcheck``) iterates :func:`registered_crash_points`
and proves that recovery restores exactly the committed state no matter
where the crash lands.

A plan is installed with the :func:`fault_plan` context manager; when no
plan is active every :func:`crash_point` call is a near-free no-op, so
the instrumentation stays in production paths permanently.

All randomness (torn-write cut positions, transient-read selection)
comes from the plan's seeded :class:`random.Random`, so every scenario
replays bit-identically from its seed.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import FaultError, SimulatedCrash

#: Size in bytes of a WAL record's fixed framing (header + CRC trailer);
#: the torn-tail cut targets this window so the *final* record tears.
WAL_RECORD_OVERHEAD = 25

#: The built-in crash points.  ``disk.write`` / ``disk.torn_write`` /
#: ``wal.torn_sync`` fire from the ``Faulty*`` wrappers (the pristine
#: simulated disk stays fault-free); the rest fire from the real write
#: paths whenever a plan is active.
BUILTIN_CRASH_POINTS = (
    "pool.flush_page",
    "wal.append",
    "wal.commit",
    "wal.sync",
    "wal.torn_sync",
    "lob.write",
    "disk.write",
    "disk.torn_write",
    "checkpoint.pre_truncate",
)

_registry: set[str] = set(BUILTIN_CRASH_POINTS)
_active: threading.local = threading.local()


def register_crash_point(name: str) -> str:
    """Add a crash point name to the registry (idempotent)."""
    _registry.add(name)
    return name


def registered_crash_points() -> tuple[str, ...]:
    """Every known crash point, sorted — the harness's crash matrix."""
    return tuple(sorted(_registry))


def active_plan() -> "FaultPlan | None":
    """The plan installed on this thread, if any."""
    return getattr(_active, "plan", None)


@contextmanager
def fault_plan(plan: "FaultPlan"):
    """Install ``plan`` for the duration of the ``with`` block."""
    previous = active_plan()
    _active.plan = plan
    try:
        yield plan
    finally:
        _active.plan = previous


def crash_point(name: str) -> None:
    """Fire one crash point; raises :class:`SimulatedCrash` if the
    active plan targets it.  No-op when no plan is installed."""
    plan = active_plan()
    if plan is None:
        return
    if name not in _registry:
        raise FaultError(f"unregistered crash point {name!r}")
    if plan.fires(name):
        raise SimulatedCrash(f"simulated crash at {name!r}")


@dataclass
class FaultPlan:
    """A deterministic, seedable schedule of injected faults.

    One plan describes at most one crash (``crash_at`` names the crash
    point, ``crash_on_hit`` the 1-based occurrence that fires) plus a
    budget of transient read errors.  Counting is per plan instance, so
    a fresh plan replays the identical scenario from the same seed.
    """

    seed: int = 0
    #: crash point name to crash at (``None`` = never crash)
    crash_at: str | None = None
    #: which occurrence of ``crash_at`` fires the crash (1 = first)
    crash_on_hit: int = 1
    #: how many reads raise :class:`TransientDiskError` before the disk
    #: heals (0 = no read faults)
    transient_read_errors: int = 0
    #: probability each read consumes one unit of the error budget
    transient_read_prob: float = 1.0
    #: per-point hit counts, maintained by :meth:`fires`
    hits: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.crash_at is not None and self.crash_at not in _registry:
            raise FaultError(f"unknown crash point {self.crash_at!r}")
        if self.crash_on_hit < 1:
            raise FaultError(
                f"crash_on_hit must be >= 1, got {self.crash_on_hit}"
            )
        self.rng = random.Random(self.seed)
        self._reads_failed = 0
        self._crashed = False

    # -- crash scheduling --------------------------------------------------

    def fires(self, name: str) -> bool:
        """Record one hit of ``name``; True when the crash triggers.

        One-shot: after the crash has fired once the plan goes inert
        (mirroring a process that is already dead).
        """
        self.hits[name] = self.hits.get(name, 0) + 1
        if self._crashed or name != self.crash_at:
            return False
        if self.hits[name] >= self.crash_on_hit:
            self._crashed = True
            return True
        return False

    @property
    def crashed(self) -> bool:
        """Whether the plan's crash has fired."""
        return self._crashed

    # -- transient faults --------------------------------------------------

    def should_fail_read(self) -> bool:
        """Whether the next read consumes one transient-error unit."""
        if self._reads_failed >= self.transient_read_errors:
            return False
        if self.rng.random() <= self.transient_read_prob:
            self._reads_failed += 1
            return True
        return False

    # -- torn-write geometry -----------------------------------------------

    def torn_cut(self, total: int) -> int:
        """Bytes that survive a torn write of a ``total``-byte buffer."""
        if total <= 1:
            return 0
        return self.rng.randrange(1, total)

    def torn_tail_cut(self, total: int, window: int = WAL_RECORD_OVERHEAD) -> int:
        """A cut landing inside the final ``window`` bytes, so the last
        WAL record of a sync batch is the one that tears."""
        if total <= 1:
            return 0
        return total - self.rng.randrange(1, min(window, total))
