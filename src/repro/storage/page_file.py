"""Named page files built from extents of contiguous pages.

A :class:`PageFile` is an ordered sequence of logical data pages mapped
onto physical disk pages in fixed-size **extents** — runs of contiguous
page ids, exactly the §4.4 layout the fact file relies on ("the fact
file allocates n pages in groups called extents; within each extent,
all the pages are contiguous").  The header page keeps the extent
directory plus a small metadata blob for the structure living in the
file (record size, tuple count, ...).

A :class:`FileManager` is the volume-level name → file catalog, itself
persisted on a master page, so a disk image is self-describing.
"""

from __future__ import annotations

import struct

from repro.errors import FileError
from repro.storage.buffer_pool import BufferPool

_HEADER = struct.Struct(
    "<IqIIIq"
)  # magic, npages, extent_pages, n_extents, meta_len, next_dir_page
_MAGIC = 0x50474649  # "PGFI"
_EXTENT_ENTRY = struct.Struct("<q")
_DIR_NEXT = struct.Struct("<q")
_NO_PAGE = -1

DEFAULT_EXTENT_PAGES = 16


def _meta_capacity(page_size: int) -> int:
    """Bytes reserved at the tail of the header page for metadata.

    At least 96 bytes even on tiny pages (schema strings must fit); the
    extent directory spills into chained pages when the header area is
    squeezed out.
    """
    return min(2048, max(96, page_size // 4))


class PageFile:
    """A growable sequence of logical pages stored in contiguous extents."""

    def __init__(self, pool: BufferPool, header_page_id: int):
        self.pool = pool
        self.header_page_id = header_page_id
        self._load_header()

    # -- creation -------------------------------------------------------------

    @classmethod
    def create(
        cls, pool: BufferPool, extent_pages: int = DEFAULT_EXTENT_PAGES
    ) -> "PageFile":
        """Allocate and initialize a new empty file; returns its handle."""
        if extent_pages <= 0:
            raise FileError(f"extent_pages must be positive, got {extent_pages}")
        header_id = pool.new_page()
        buf = pool.get(header_id)
        _HEADER.pack_into(buf, 0, _MAGIC, 0, extent_pages, 0, 0, _NO_PAGE)
        pool.mark_dirty(header_id)
        return cls(pool, header_id)

    def _header_capacity(self) -> int:
        page_size = self.pool.disk.page_size
        usable = page_size - _HEADER.size - _meta_capacity(page_size)
        return usable // _EXTENT_ENTRY.size

    def _overflow_capacity(self) -> int:
        return (self.pool.disk.page_size - _DIR_NEXT.size) // _EXTENT_ENTRY.size

    def _load_header(self) -> None:
        buf = self.pool.get(self.header_page_id)
        magic, npages, extent_pages, n_extents, meta_len, next_dir = (
            _HEADER.unpack_from(buf, 0)
        )
        if magic != _MAGIC:
            raise FileError(
                f"page {self.header_page_id} is not a PageFile header"
            )
        self.extent_pages = extent_pages
        self._npages = npages
        self._meta_len = meta_len
        in_header = min(n_extents, self._header_capacity())
        self._extents: list[int] = [
            _EXTENT_ENTRY.unpack_from(buf, _HEADER.size + i * _EXTENT_ENTRY.size)[0]
            for i in range(in_header)
        ]
        # the directory spills into a chain of overflow pages
        self._dir_pages: list[int] = []
        remaining = n_extents - in_header
        per_page = self._overflow_capacity()
        page_id = next_dir
        while remaining > 0:
            if page_id == _NO_PAGE:
                raise FileError("extent directory chain truncated")
            self._dir_pages.append(page_id)
            dir_buf = self.pool.get(page_id)
            take = min(remaining, per_page)
            for i in range(take):
                self._extents.append(
                    _EXTENT_ENTRY.unpack_from(
                        dir_buf, _DIR_NEXT.size + i * _EXTENT_ENTRY.size
                    )[0]
                )
            remaining -= take
            (page_id,) = _DIR_NEXT.unpack_from(dir_buf, 0)

    def _store_header(self) -> None:
        in_header = self._header_capacity()
        per_page = self._overflow_capacity()
        overflow = self._extents[in_header:]
        pages_needed = -(-len(overflow) // per_page) if overflow else 0
        while len(self._dir_pages) < pages_needed:
            self._dir_pages.append(self.pool.new_page())

        buf = self.pool.get(self.header_page_id)
        _HEADER.pack_into(
            buf,
            0,
            _MAGIC,
            self._npages,
            self.extent_pages,
            len(self._extents),
            self._meta_len,
            self._dir_pages[0] if pages_needed else _NO_PAGE,
        )
        for i, first in enumerate(self._extents[:in_header]):
            _EXTENT_ENTRY.pack_into(
                buf, _HEADER.size + i * _EXTENT_ENTRY.size, first
            )
        self.pool.mark_dirty(self.header_page_id)

        for page_no in range(pages_needed):
            dir_buf = self.pool.get(self._dir_pages[page_no])
            next_page = (
                self._dir_pages[page_no + 1]
                if page_no + 1 < pages_needed
                else _NO_PAGE
            )
            _DIR_NEXT.pack_into(dir_buf, 0, next_page)
            piece = overflow[page_no * per_page : (page_no + 1) * per_page]
            for i, first in enumerate(piece):
                _EXTENT_ENTRY.pack_into(
                    dir_buf, _DIR_NEXT.size + i * _EXTENT_ENTRY.size, first
                )
            self.pool.mark_dirty(self._dir_pages[page_no])

    # -- geometry ---------------------------------------------------------------

    @property
    def npages(self) -> int:
        """Number of logical data pages appended so far."""
        return self._npages

    def page_id(self, logical: int) -> int:
        """Physical page id of logical data page ``logical``."""
        if not 0 <= logical < self._npages:
            raise FileError(
                f"logical page {logical} out of range [0, {self._npages})"
            )
        extent, within = divmod(logical, self.extent_pages)
        return self._extents[extent] + within

    def append_page(self) -> int:
        """Append one logical page; returns its logical page number."""
        logical = self._npages
        extent, within = divmod(logical, self.extent_pages)
        if extent == len(self._extents):
            first = self.pool.disk.allocate(self.extent_pages)
            self._extents.append(first)
            self.pool.counters.add("extents_allocated")
        self._npages += 1
        self._store_header()
        return logical

    def ensure_pages(self, count: int) -> None:
        """Grow the file until it has at least ``count`` logical pages."""
        while self._npages < count:
            self.append_page()

    # -- data access ---------------------------------------------------------------

    def read(self, logical: int) -> bytearray:
        """Buffer-pool frame of a logical page (see :meth:`BufferPool.get`)."""
        return self.pool.get(self.page_id(logical))

    def mark_dirty(self, logical: int) -> None:
        """Mark a logical page modified."""
        self.pool.mark_dirty(self.page_id(logical))

    def write(self, logical: int, image: bytes) -> None:
        """Replace a logical page's image."""
        self.pool.write(self.page_id(logical), image)

    # -- metadata ---------------------------------------------------------------------

    def get_meta(self) -> bytes:
        """The file's metadata blob (empty if never set)."""
        if not self._meta_len:
            return b""
        buf = self.pool.get(self.header_page_id)
        start = self.pool.disk.page_size - _meta_capacity(self.pool.disk.page_size)
        return bytes(buf[start : start + self._meta_len])

    def set_meta(self, blob: bytes) -> None:
        """Store the metadata blob in the header page's reserved tail."""
        capacity = _meta_capacity(self.pool.disk.page_size)
        if len(blob) > capacity:
            raise FileError(
                f"metadata blob is {len(blob)} bytes, capacity is {capacity}"
            )
        buf = self.pool.get(self.header_page_id)
        start = self.pool.disk.page_size - capacity
        buf[start : start + len(blob)] = blob
        self._meta_len = len(blob)
        self._store_header()

    def size_bytes(self) -> int:
        """On-disk footprint: header, directory chain, and every extent."""
        page = self.pool.disk.page_size
        return page * (
            1 + len(self._dir_pages) + len(self._extents) * self.extent_pages
        )


_MASTER_COUNT = struct.Struct("<I")
_MASTER_ENTRY_HEAD = struct.Struct("<Hq")
_MASTER_PAGE_HEAD = struct.Struct("<qI")  # next page, payload bytes on page


class FileManager:
    """Volume-level catalog mapping file names to header pages.

    The catalog serializes onto a chain of master pages, so the number
    of files is bounded only by the volume.
    """

    def __init__(self, pool: BufferPool, master_page_id: int | None = None):
        self.pool = pool
        if master_page_id is None:
            master_page_id = pool.new_page()
            self._directory: dict[str, int] = {}
            self._chain: list[int] = [master_page_id]
            self.master_page_id = master_page_id
            self._store()
        else:
            self.master_page_id = master_page_id
            self._load()

    def _payload_capacity(self) -> int:
        return self.pool.disk.page_size - _MASTER_PAGE_HEAD.size

    def _load(self) -> None:
        payload = bytearray()
        self._chain = []
        page_id = self.master_page_id
        while page_id != _NO_PAGE:
            self._chain.append(page_id)
            buf = self.pool.get(page_id)
            next_page, length = _MASTER_PAGE_HEAD.unpack_from(buf, 0)
            start = _MASTER_PAGE_HEAD.size
            payload += buf[start : start + length]
            page_id = next_page
        (count,) = _MASTER_COUNT.unpack_from(payload, 0)
        offset = _MASTER_COUNT.size
        self._directory = {}
        for _ in range(count):
            name_len, header_id = _MASTER_ENTRY_HEAD.unpack_from(payload, offset)
            offset += _MASTER_ENTRY_HEAD.size
            name = bytes(payload[offset : offset + name_len]).decode("utf-8")
            offset += name_len
            self._directory[name] = header_id

    def _store(self) -> None:
        payload = bytearray(_MASTER_COUNT.pack(len(self._directory)))
        for name, header_id in self._directory.items():
            raw = name.encode("utf-8")
            payload += _MASTER_ENTRY_HEAD.pack(len(raw), header_id)
            payload += raw
        capacity = self._payload_capacity()
        pages_needed = max(1, -(-len(payload) // capacity))
        while len(self._chain) < pages_needed:
            self._chain.append(self.pool.new_page())
        for page_no in range(pages_needed):
            buf = self.pool.get(self._chain[page_no])
            piece = payload[page_no * capacity : (page_no + 1) * capacity]
            next_page = (
                self._chain[page_no + 1]
                if page_no + 1 < pages_needed
                else _NO_PAGE
            )
            _MASTER_PAGE_HEAD.pack_into(buf, 0, next_page, len(piece))
            buf[_MASTER_PAGE_HEAD.size : _MASTER_PAGE_HEAD.size + len(piece)] = (
                piece
            )
            self.pool.mark_dirty(self._chain[page_no])

    def create(
        self, name: str, extent_pages: int = DEFAULT_EXTENT_PAGES
    ) -> PageFile:
        """Create an empty named file."""
        if name in self._directory:
            raise FileError(f"file {name!r} already exists")
        pfile = PageFile.create(self.pool, extent_pages)
        self._directory[name] = pfile.header_page_id
        self._store()
        self.pool.counters.add("files_created")
        return pfile

    def open(self, name: str) -> PageFile:
        """Open an existing named file."""
        if name not in self._directory:
            raise FileError(f"no such file: {name!r}")
        self.pool.counters.add("files_opened")
        return PageFile(self.pool, self._directory[name])

    def exists(self, name: str) -> bool:
        """Whether a file with this name exists."""
        return name in self._directory

    def names(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._directory)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush every dirty frame so the disk holds the full catalog.

        Idempotent; part of the uniform ``open()/close()`` +
        context-manager surface shared with :class:`Database
        <repro.relational.catalog.Database>` and
        :class:`~repro.storage.wal.WriteAheadLog`.
        """
        self.pool.flush_all()

    def __enter__(self) -> "FileManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
