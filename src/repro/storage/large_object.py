"""Large-object store: SHORE's role for array chunks.

Each chunk of a Paradise multi-dimensional array is "stored as a SHORE
large object" (§3.1).  A :class:`LargeObjectStore` provides that
service: variable-length byte objects identified by a dense integer OID,
each laid out on a run of contiguous disk pages, with a page-resident
directory of ``(first_page, length)`` entries.

Objects created consecutively get consecutive page runs, so an array
whose chunks are created in chunk-number order is "laid out on the disk
in the same order as their chunk number order" (§4.2) — the property the
chunk-ordered cross-product scan exploits.
"""

from __future__ import annotations

import struct

from repro.errors import FileError
from repro.storage.buffer_pool import BufferPool
from repro.storage.crashpoints import crash_point
from repro.storage.page_file import FileManager, PageFile

_DIR_ENTRY = struct.Struct("<qq")  # first_page_id, length
_META = struct.Struct("<q")  # object count


class LargeObjectStore:
    """Variable-length blobs on contiguous page runs, with a paged directory."""

    def __init__(self, file_manager: FileManager, name: str):
        self.pool: BufferPool = file_manager.pool
        self.page_size = self.pool.disk.page_size
        self._entries_per_page = self.page_size // _DIR_ENTRY.size
        if file_manager.exists(name):
            self._directory: PageFile = file_manager.open(name)
            (self._count,) = _META.unpack_from(self._directory.get_meta(), 0)
        else:
            self._directory = file_manager.create(name)
            self._count = 0
            self._directory.set_meta(_META.pack(0))

    def __len__(self) -> int:
        return self._count

    # -- directory access --------------------------------------------------------

    def _entry_location(self, oid: int) -> tuple[int, int]:
        page_no, index = divmod(oid, self._entries_per_page)
        return page_no, index * _DIR_ENTRY.size

    def _read_entry(self, oid: int) -> tuple[int, int]:
        if not 0 <= oid < self._count:
            raise FileError(f"OID {oid} out of range [0, {self._count})")
        page_no, offset = self._entry_location(oid)
        buf = self._directory.read(page_no)
        return _DIR_ENTRY.unpack_from(buf, offset)

    def _write_entry(self, oid: int, first_page: int, length: int) -> None:
        page_no, offset = self._entry_location(oid)
        self._directory.ensure_pages(page_no + 1)
        buf = self._directory.read(page_no)
        _DIR_ENTRY.pack_into(buf, offset, first_page, length)
        self._directory.mark_dirty(page_no)

    # -- object operations ----------------------------------------------------------

    def _data_pages(self, length: int) -> int:
        return max(1, -(-length // self.page_size))

    def create(self, payload: bytes) -> int:
        """Store a new object; returns its OID."""
        # Reserve the directory page first so directory extents never
        # interleave with object data: objects created back to back then
        # occupy consecutive disk pages (the §4.2 sequential-chunk layout).
        dir_page, _ = self._entry_location(self._count)
        self._directory.ensure_pages(dir_page + 1)
        npages = self._data_pages(len(payload))
        first = self.pool.disk.allocate(npages)
        crash_point("lob.write")
        for i in range(npages):
            start = i * self.page_size
            piece = payload[start : start + self.page_size]
            image = piece + bytes(self.page_size - len(piece))
            self.pool.write(first + i, image)
        oid = self._count
        self._write_entry(oid, first, len(payload))
        self._count += 1
        self._directory.set_meta(_META.pack(self._count))
        return oid

    def read(self, oid: int) -> bytes:
        """Fetch an object's full payload."""
        first, length = self._read_entry(oid)
        npages = self._data_pages(length)
        parts = [self.pool.get(first + i) for i in range(npages)]
        return b"".join(bytes(p) for p in parts)[:length]

    def length(self, oid: int) -> int:
        """Stored payload length of an object."""
        return self._read_entry(oid)[1]

    def object_pages(self, oid: int) -> int:
        """Number of disk pages the object occupies."""
        return self._data_pages(self._read_entry(oid)[1])

    def first_page(self, oid: int) -> int:
        """Physical id of the object's first page (layout inspection)."""
        return self._read_entry(oid)[0]

    # -- footprint ------------------------------------------------------------------

    def data_bytes(self) -> int:
        """Sum of stored payload lengths."""
        return sum(self._read_entry(oid)[1] for oid in range(self._count))

    def footprint_bytes(self) -> int:
        """On-disk footprint: data page runs plus the directory file."""
        data = sum(
            self._data_pages(self._read_entry(oid)[1]) for oid in range(self._count)
        )
        return data * self.page_size + self._directory.size_bytes()
