"""Aggregate functions shared by the relational and array engines.

The paper implements summation and notes the algorithms "could easily
be extended to aggregates such as count and average" — we do exactly
that.  An :class:`Aggregate` is a tiny fold: ``initial()`` produces the
state, ``add`` folds one measure in, ``merge`` combines two states, and
``result`` extracts the final value.
"""

from __future__ import annotations

from repro.errors import QueryError


class Aggregate:
    """Base class; subclasses define the fold."""

    name = "?"

    def initial(self):
        raise NotImplementedError

    def add(self, state, value):
        raise NotImplementedError

    def merge(self, state, other):
        raise NotImplementedError

    def result(self, state):
        return state


class Sum(Aggregate):
    """Sum of measures (the paper's aggregate)."""

    name = "sum"

    def initial(self):
        return 0

    def add(self, state, value):
        return state + value

    def merge(self, state, other):
        return state + other


class Count(Aggregate):
    """Number of valid cells / tuples in the group."""

    name = "count"

    def initial(self):
        return 0

    def add(self, state, value):
        return state + 1

    def merge(self, state, other):
        return state + other


class Min(Aggregate):
    """Minimum measure in the group."""

    name = "min"

    def initial(self):
        return None

    def add(self, state, value):
        return value if state is None or value < state else state

    def merge(self, state, other):
        if state is None:
            return other
        if other is None:
            return state
        return min(state, other)


class Max(Aggregate):
    """Maximum measure in the group."""

    name = "max"

    def initial(self):
        return None

    def add(self, state, value):
        return value if state is None or value > state else state

    def merge(self, state, other):
        if state is None:
            return other
        if other is None:
            return state
        return max(state, other)


class Avg(Aggregate):
    """Arithmetic mean of measures in the group."""

    name = "avg"

    def initial(self):
        return (0, 0)  # (sum, count)

    def add(self, state, value):
        return (state[0] + value, state[1] + 1)

    def merge(self, state, other):
        return (state[0] + other[0], state[1] + other[1])

    def result(self, state):
        total, count = state
        return total / count if count else None


class Variance(Aggregate):
    """Population variance of the group's measures.

    One of the "complicated mathematical and statistical functions"
    §2.1 names and §3.5 promises the ADT model will eventually host.
    State is the (count, sum, sum-of-squares) sketch, so partitions
    merge exactly.
    """

    name = "var"

    def initial(self):
        return (0, 0.0, 0.0)

    def add(self, state, value):
        count, total, squares = state
        return (count + 1, total + value, squares + value * value)

    def merge(self, state, other):
        return tuple(a + b for a, b in zip(state, other))

    def result(self, state):
        count, total, squares = state
        if count == 0:
            return None
        mean = total / count
        return max(0.0, squares / count - mean * mean)


class StdDev(Variance):
    """Population standard deviation (square root of :class:`Variance`)."""

    name = "stddev"

    def result(self, state):
        variance = super().result(state)
        return None if variance is None else variance**0.5


_REGISTRY: dict[str, Aggregate] = {
    agg.name: agg
    for agg in (Sum(), Count(), Min(), Max(), Avg(), Variance(), StdDev())
}


def get_aggregate(name: str) -> Aggregate:
    """Look up an aggregate by name (``sum``/``count``/``min``/``max``/``avg``)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise QueryError(
            f"unknown aggregate {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
