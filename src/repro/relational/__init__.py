"""Relational substrate: the ROLAP side of the comparison.

Implements everything §2.2 and §4.3–4.5 describe: star schemas on heap
files, the fixed-length **fact file**, Volcano-style operators, the
Starjoin consolidation operator, and bitmap-driven selection.
"""

from repro.relational.schema import Column, Schema
from repro.relational.heap_file import HeapFile
from repro.relational.fact_file import FactFile
from repro.relational.catalog import Database
from repro.relational.operators import (
    Filter,
    HashGroupBy,
    HashJoin,
    Project,
    SeqScan,
)
from repro.relational.star_join import DimensionJoinSpec, star_join_consolidate
from repro.relational.bitmap_select import bitmap_select_consolidate
from repro.relational.btree_select import btree_select_consolidate
from repro.relational.mbtree_select import mbtree_select_consolidate, skip_scan

__all__ = [
    "Column",
    "Schema",
    "HeapFile",
    "FactFile",
    "Database",
    "SeqScan",
    "Filter",
    "Project",
    "HashJoin",
    "HashGroupBy",
    "DimensionJoinSpec",
    "star_join_consolidate",
    "bitmap_select_consolidate",
    "btree_select_consolidate",
    "mbtree_select_consolidate",
    "skip_scan",
]
