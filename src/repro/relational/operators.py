"""Volcano-style relational operators.

These implement the "traditional alternative" the paper's introduction
contrasts the specialized algorithms against: pipelined plans built
from scans, filters, hash joins and a hash group-by.  They are used by
the left-deep star-join baseline (ablation ``abl3``) and are general
enough for ad-hoc queries in examples.

Column names can be qualified via a scan alias (``dim0.d0``) so joins
between tables sharing column names stay unambiguous.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.aggregates import get_aggregate
from repro.errors import QueryError


class Operator:
    """Base class: every operator exposes ``names`` and is iterable."""

    names: tuple[str, ...] = ()

    def __iter__(self) -> Iterator[tuple]:
        raise NotImplementedError

    def _index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError:
            raise QueryError(
                f"no column {name!r} in {list(self.names)}"
            ) from None


class SeqScan(Operator):
    """Scan a heap table or fact file, optionally qualifying columns."""

    def __init__(self, table, alias: str | None = None):
        self.table = table
        prefix = f"{alias}." if alias else ""
        self.names = tuple(f"{prefix}{n}" for n in table.schema.names)

    def __iter__(self) -> Iterator[tuple]:
        return table_scan(self.table)


def table_scan(table) -> Iterator[tuple]:
    """Iterate a table's rows (shared by operators and algorithms)."""
    return table.scan()


class Filter(Operator):
    """Keep rows satisfying a predicate or a dict of equality conditions."""

    def __init__(
        self,
        child: Operator,
        predicate: Callable[[tuple], bool] | None = None,
        equals: dict[str, object] | None = None,
    ):
        if (predicate is None) == (equals is None):
            raise QueryError("Filter needs exactly one of predicate/equals")
        self.child = child
        self.names = child.names
        if equals is not None:
            positions = [(child._index_of(c), v) for c, v in equals.items()]

            def predicate(row, _positions=tuple(positions)):
                return all(row[i] == v for i, v in _positions)

        self.predicate = predicate

    def __iter__(self) -> Iterator[tuple]:
        predicate = self.predicate
        return (row for row in self.child if predicate(row))


class Project(Operator):
    """Keep (and reorder) a subset of columns."""

    def __init__(self, child: Operator, columns: list[str]):
        self.child = child
        self._positions = tuple(child._index_of(c) for c in columns)
        self.names = tuple(columns)

    def __iter__(self) -> Iterator[tuple]:
        positions = self._positions
        for row in self.child:
            yield tuple(row[i] for i in positions)


class HashJoin(Operator):
    """Equi-join: build an in-memory hash table on the left child.

    The build side is fully materialized into a dict before the first
    probe-side row flows — the exact property that makes left-deep
    plans with a fact-table-sized build side expensive (§4.3).
    """

    def __init__(
        self,
        build: Operator,
        probe: Operator,
        build_keys: list[str],
        probe_keys: list[str],
    ):
        if len(build_keys) != len(probe_keys):
            raise QueryError("join key lists differ in length")
        self.build = build
        self.probe = probe
        self._build_positions = tuple(build._index_of(k) for k in build_keys)
        self._probe_positions = tuple(probe._index_of(k) for k in probe_keys)
        self.names = build.names + probe.names
        self.build_rows_materialized = 0

    def __iter__(self) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        build_positions = self._build_positions
        for row in self.build:
            key = tuple(row[i] for i in build_positions)
            table.setdefault(key, []).append(row)
            self.build_rows_materialized += 1
        probe_positions = self._probe_positions
        for row in self.probe:
            key = tuple(row[i] for i in probe_positions)
            for match in table.get(key, ()):
                yield match + row


class HashGroupBy(Operator):
    """Group by columns and fold aggregates over measure columns."""

    def __init__(
        self,
        child: Operator,
        group_columns: list[str],
        aggregations: list[tuple[str, str]],
    ):
        self.child = child
        self._group_positions = tuple(child._index_of(c) for c in group_columns)
        self._aggs = [
            (get_aggregate(name), child._index_of(col))
            for name, col in aggregations
        ]
        self.names = tuple(group_columns) + tuple(
            f"{name}({col})" for name, col in aggregations
        )

    def __iter__(self) -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        group_positions = self._group_positions
        aggs = self._aggs
        for row in self.child:
            key = tuple(row[i] for i in group_positions)
            state = groups.get(key)
            if state is None:
                state = [agg.initial() for agg, _ in aggs]
                groups[key] = state
            for slot, (agg, position) in enumerate(aggs):
                state[slot] = agg.add(state[slot], row[position])
        for key in sorted(groups):
            state = groups[key]
            yield key + tuple(
                agg.result(state[slot]) for slot, (agg, _) in enumerate(aggs)
            )


def left_deep_consolidation(
    fact_scan: Operator,
    dimension_scans: list[tuple[Operator, str, str]],
    group_columns: list[str],
    measure_columns: str | list[str],
    aggregate: str = "sum",
) -> HashGroupBy:
    """The pipelined left-deep hash-join plan the paper criticizes.

    ``dimension_scans`` is a list of ``(scan, dim_key, fact_key)`` with
    qualified key names.  The first join builds on the (small) first
    dimension and probes the fact table; every later join *builds on
    the fact-sized intermediate result* and probes the next dimension —
    the §4.3 complaint made executable.
    """
    if not dimension_scans:
        raise QueryError("left-deep plan needs at least one dimension")
    if isinstance(measure_columns, str):
        measure_columns = [measure_columns]
    first_dim, dim_key, fact_key = dimension_scans[0]
    plan: Operator = HashJoin(first_dim, fact_scan, [dim_key], [fact_key])
    for dim_scan, dim_key, fact_key in dimension_scans[1:]:
        plan = HashJoin(plan, dim_scan, [fact_key], [dim_key])
    return HashGroupBy(
        plan, group_columns, [(aggregate, m) for m in measure_columns]
    )
