"""The §4.4 fact file: fixed-length records with positional access.

Fact-table tuples are fixed length, so the fact file packs them
back-to-back on pages inside contiguous-page extents (provided by
:class:`~repro.storage.page_file.PageFile`) with **no slot directory**.
Given a tuple number, the page and offset are arithmetic:

    page  = tuple_no // records_per_page
    offset = (tuple_no % records_per_page) * record_size

which gives both of the paper's benefits: (1) a fast path from bitmap
positions to tuples, and (2) zero per-record space overhead.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable, Iterator

from repro.errors import FileError
from repro.relational.schema import Schema
from repro.storage.page_file import FileManager, PageFile
from repro.util.bitset import Bitset
from repro.util.stats import Counters

_META_HEAD = struct.Struct("<qH")  # tuple count, schema text length


class FactFile:
    """A table of fixed-length records addressable by tuple number."""

    def __init__(self, pfile: PageFile, schema: Schema | None = None):
        self._file = pfile
        self.counters = Counters()
        meta = pfile.get_meta()
        if meta:
            count, text_len = _META_HEAD.unpack_from(meta, 0)
            stored = Schema.from_text(
                meta[_META_HEAD.size : _META_HEAD.size + text_len].decode()
            )
            if schema is not None and schema != stored:
                raise FileError("schema does not match stored table schema")
            self.schema = stored
            self._count = count
        else:
            if schema is None:
                raise FileError("new fact file needs a schema")
            self.schema = schema
            self._count = 0
            self._store_meta()
        page_size = pfile.pool.disk.page_size
        self.record_size = self.schema.record_size
        self.records_per_page = page_size // self.record_size
        if self.records_per_page == 0:
            raise FileError(
                f"record of {self.record_size} bytes exceeds page size"
            )

    @classmethod
    def create(
        cls,
        fm: FileManager,
        name: str,
        schema: Schema,
        extent_pages: int = 16,
    ) -> "FactFile":
        """Create an empty named fact file."""
        return cls(fm.create(name, extent_pages=extent_pages), schema)

    @classmethod
    def open(cls, fm: FileManager, name: str) -> "FactFile":
        """Open an existing fact file."""
        return cls(fm.open(name))

    def _store_meta(self) -> None:
        text = self.schema.to_text().encode()
        self._file.set_meta(_META_HEAD.pack(self._count, len(text)) + text)

    def _locate(self, tuple_no: int) -> tuple[int, int]:
        if not 0 <= tuple_no < self._count:
            raise FileError(
                f"tuple number {tuple_no} out of range [0, {self._count})"
            )
        page_no, index = divmod(tuple_no, self.records_per_page)
        return page_no, index * self.record_size

    # -- modification ----------------------------------------------------------

    def append(self, row: tuple) -> int:
        """Append one row; returns its tuple number."""
        tuple_no = self._count
        page_no, index = divmod(tuple_no, self.records_per_page)
        if page_no == self._file.npages:
            self._file.append_page()
        buf = self._file.read(page_no)
        self.schema.codec.pack_into(buf, index * self.record_size, row)
        self._file.mark_dirty(page_no)
        self._count += 1
        self._store_meta()
        return tuple_no

    def append_many(self, rows: Iterable[tuple]) -> None:
        """Bulk append without per-row metadata writes."""
        codec = self.schema.codec
        for row in rows:
            page_no, index = divmod(self._count, self.records_per_page)
            if page_no == self._file.npages:
                self._file.append_page()
            buf = self._file.read(page_no)
            codec.pack_into(buf, index * self.record_size, row)
            self._file.mark_dirty(page_no)
            self._count += 1
        self._store_meta()

    def update(self, tuple_no: int, row: tuple) -> None:
        """Overwrite one row in place (records are fixed length)."""
        page_no, offset = self._locate(tuple_no)
        buf = self._file.read(page_no)
        self.schema.codec.pack_into(buf, offset, row)
        self._file.mark_dirty(page_no)

    # -- access -------------------------------------------------------------------

    def get(self, tuple_no: int) -> tuple:
        """Fetch one row by tuple number (the bitmap fast path)."""
        page_no, offset = self._locate(tuple_no)
        self.counters.add("fact_tuple_gets")
        return self.schema.codec.unpack_from(self._file.read(page_no), offset)

    def scan(self) -> Iterator[tuple]:
        """Yield every row in tuple-number order, one page at a time."""
        codec = self.schema.codec
        remaining = self._count
        for page_no in range(self._file.npages):
            in_page = min(self.records_per_page, remaining)
            if in_page <= 0:
                return
            buf = self._file.read(page_no)
            self.counters.add("fact_pages_scanned")
            yield from codec.iter_unpack(buf, in_page)
            remaining -= in_page

    def fetch_bitmap(self, bits: Bitset) -> Iterator[tuple]:
        """Yield the rows at set bit positions, in position order.

        Positions are grouped by page so each page is read once — the
        "interface that takes a bitmap and retrieves the tuples
        corresponding to non-zero bit positions" of §4.4.
        """
        if len(bits) != self._count:
            raise FileError(
                f"bitmap covers {len(bits)} positions, table has {self._count}"
            )
        codec = self.schema.codec
        current_page = -1
        buf = None
        for position in bits.set_positions().tolist():
            page_no, index = divmod(position, self.records_per_page)
            if page_no != current_page:
                buf = self._file.read(page_no)
                current_page = page_no
                self.counters.add("fact_bitmap_pages")
            self.counters.add("fact_tuples_fetched")
            yield codec.unpack_from(buf, index * self.record_size)

    def __len__(self) -> int:
        return self._count

    def size_bytes(self) -> int:
        """On-disk footprint (extents plus the header page)."""
        return self._file.size_bytes()
