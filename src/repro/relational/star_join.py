"""The §4.3 Starjoin consolidation operator.

One hash table per dimension plus one aggregation hash table, one scan
of the fact table:

1. For each dimension, build an in-memory hash table mapping the
   dimension key to the tuple's group-by attribute value (dimension
   tables are assumed memory-resident — the standard star-schema
   assumption).
2. Scan the fact table once.  For each fact tuple, probe every
   dimension hash table to assemble the group-by values, then fold the
   measure(s) into the aggregation hash table.

This is the *value-based* aggregation the paper contrasts with the
array's *position-based* aggregation.  ``key_filters`` (an extension)
lets the same single-scan operator evaluate selections: a fact tuple
whose foreign key is not in a filter set is skipped.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.aggregates import get_aggregate
from repro.errors import QueryError
from repro.obs.tracer import get_tracer
from repro.relational.fact_file import FactFile
from repro.relational.heap_file import HeapFile
from repro.util.stats import Counters


@dataclass(frozen=True)
class DimensionJoinSpec:
    """How one dimension participates in a consolidation.

    ``dim_key`` is the key column in the dimension table, ``fact_key``
    the matching foreign-key column in the fact table, and
    ``group_attr`` the dimension attribute the query groups by.
    """

    table: HeapFile
    dim_key: str
    fact_key: str
    group_attr: str


def build_dimension_hash(spec: DimensionJoinSpec) -> dict:
    """Build the in-memory key → group-by-value hash for one dimension."""
    key_pos = spec.table.schema.index_of(spec.dim_key)
    attr_pos = spec.table.schema.index_of(spec.group_attr)
    return {row[key_pos]: row[attr_pos] for row in spec.table.scan()}


def normalize_measures(measure: str | list[str]) -> list[str]:
    """Accept a single measure name or a list; return a list."""
    return [measure] if isinstance(measure, str) else list(measure)


def aggregate_rows(
    groups: dict[tuple, list], aggs: list
) -> list[tuple]:
    """Finalize an aggregation hash table into sorted output rows."""
    return [
        key + tuple(agg.result(state[m]) for m, agg in enumerate(aggs))
        for key, state in sorted(groups.items())
    ]


def star_join_consolidate(
    fact: FactFile | HeapFile,
    dimensions: list[DimensionJoinSpec],
    measure: str | list[str],
    aggregate: str | list[str] = "sum",
    counters: Counters | None = None,
    key_filters: dict[str, Iterable] | None = None,
) -> list[tuple]:
    """Run the Starjoin consolidation; returns sorted result rows.

    Each output row is ``(group values..., aggregate values...)`` with
    group values ordered as ``dimensions``.  ``key_filters`` maps a fact
    foreign-key column to the set of key values that pass selection.
    """
    if not dimensions:
        raise QueryError("consolidation needs at least one dimension")
    counters = counters if counters is not None else Counters()
    measures = normalize_measures(measure)
    agg_names = (
        [aggregate] * len(measures) if isinstance(aggregate, str) else list(aggregate)
    )
    if len(agg_names) != len(measures):
        raise QueryError(
            f"{len(agg_names)} aggregates for {len(measures)} measures"
        )
    aggs = [get_aggregate(n) for n in agg_names]
    tracer = get_tracer()

    with tracer.span("build_dimension_hashes", dimensions=len(dimensions)):
        dim_hashes = [build_dimension_hash(spec) for spec in dimensions]
        for table in dim_hashes:
            counters.add("dim_hash_entries", len(table))

    fact_schema = fact.schema
    key_positions = [fact_schema.index_of(s.fact_key) for s in dimensions]
    measure_positions = [fact_schema.index_of(m) for m in measures]
    filters = [
        (fact_schema.index_of(column), frozenset(allowed))
        for column, allowed in (key_filters or {}).items()
    ]

    groups: dict[tuple, list] = {}
    scanned = 0
    with tracer.span("scan_fact", filters=len(filters)):
        for row in fact.scan():
            scanned += 1
            if any(row[p] not in allowed for p, allowed in filters):
                continue
            try:
                key = tuple(
                    dim_hashes[d][row[p]] for d, p in enumerate(key_positions)
                )
            except KeyError:
                # a fact tuple with no matching dimension row joins nothing
                counters.add("dangling_fact_tuples")
                continue
            state = groups.get(key)
            if state is None:
                state = [agg.initial() for agg in aggs]
                groups[key] = state
            for m, agg in enumerate(aggs):
                state[m] = agg.add(state[m], row[measure_positions[m]])
        counters.add("fact_tuples_scanned", scanned)
        counters.add("result_groups", len(groups))

    with tracer.span("finalize_groups", groups=len(groups)):
        return aggregate_rows(groups, aggs)
