"""Standard B-tree selection baseline (mentioned, and dominated, in §4.4).

The paper tested "standard B-tree indexing" before settling on bitmaps;
we keep it as an extra baseline.  Each selected dimension contributes a
B-tree over the fact table's foreign-key column (key value → tuple
numbers).  Selection resolves dimension predicates to key lists, probes
the B-trees for position lists, intersects them, fetches and
aggregates.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.aggregates import get_aggregate
from repro.errors import QueryError
from repro.index.btree import BTree
from repro.obs.tracer import get_tracer
from repro.relational.fact_file import FactFile
from repro.relational.star_join import (
    DimensionJoinSpec,
    aggregate_rows,
    build_dimension_hash,
    normalize_measures,
)
from repro.util.stats import Counters


def btree_select_consolidate(
    fact: FactFile,
    group_dimensions: list[DimensionJoinSpec],
    selections: list[tuple[BTree, Iterable]],
    measure: str | list[str],
    aggregate: str = "sum",
    counters: Counters | None = None,
) -> list[tuple]:
    """B-tree probe, position-list intersection, fetch, aggregate.

    ``selections`` pairs a fact-column B-tree (key → tuple numbers)
    with the matching dimension key values.  Output rows match
    :func:`~repro.relational.star_join.star_join_consolidate`.
    """
    if not group_dimensions:
        raise QueryError("consolidation needs at least one group dimension")
    counters = counters if counters is not None else Counters()
    measures = normalize_measures(measure)
    aggs = [get_aggregate(aggregate)] * len(measures)
    tracer = get_tracer()

    with tracer.span("btree_probe", selections=len(selections)):
        positions: set[int] | None = None
        for tree, keys in selections:
            found: set[int] = set()
            for key in keys:
                found.update(tree.search(key))
                counters.add("btree_probes")
            positions = found if positions is None else positions & found
            if not positions:
                break
        if positions is None:
            raise QueryError(
                "btree_select_consolidate needs at least one selection"
            )
        counters.add("selected_tuples", len(positions))

    with tracer.span(
        "build_dimension_hashes", dimensions=len(group_dimensions)
    ):
        dim_hashes = [build_dimension_hash(spec) for spec in group_dimensions]
    fact_schema = fact.schema
    key_positions = [fact_schema.index_of(s.fact_key) for s in group_dimensions]
    measure_positions = [fact_schema.index_of(m) for m in measures]

    groups: dict[tuple, list] = {}
    with tracer.span("fetch_tuples", tuples=len(positions)):
        for tuple_no in sorted(positions):
            row = fact.get(tuple_no)
            key = tuple(
                dim_hashes[d][row[p]] for d, p in enumerate(key_positions)
            )
            state = groups.get(key)
            if state is None:
                state = [agg.initial() for agg in aggs]
                groups[key] = state
            for m, agg in enumerate(aggs):
                state[m] = agg.add(state[m], row[measure_positions[m]])
        counters.add("result_groups", len(groups))

    with tracer.span("finalize_groups", groups=len(groups)):
        return aggregate_rows(groups, aggs)
