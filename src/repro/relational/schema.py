"""Relational schemas and their record codecs.

A :class:`Schema` is an ordered list of named, typed columns.  Types
reuse the :class:`~repro.util.records.RecordCodec` names (``int32``,
``int64``, ``float64``, ``str:N``) so every table — heap or fact file —
stores fixed-length records; the difference the paper measures is the
page layout around those records, not the records themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemaError
from repro.util.records import RecordCodec


@dataclass(frozen=True)
class Column:
    """One named, typed column."""

    name: str
    ctype: str

    def __post_init__(self):
        RecordCodec([self.ctype])  # validates the type name


class Schema:
    """An ordered list of columns with a fixed-length record codec."""

    def __init__(self, columns: list[Column] | list[tuple[str, str]]):
        normalized = [
            c if isinstance(c, Column) else Column(*c) for c in columns
        ]
        names = [c.name for c in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")
        self.columns = tuple(normalized)
        self._positions = {c.name: i for i, c in enumerate(self.columns)}
        self.codec = RecordCodec([c.ctype for c in self.columns])

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in order."""
        return tuple(c.name for c in self.columns)

    def index_of(self, name: str) -> int:
        """Position of a column; raises :class:`SchemaError` if unknown."""
        try:
            return self._positions[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {list(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        """Column object by name."""
        return self.columns[self.index_of(name)]

    @property
    def record_size(self) -> int:
        """Bytes of one encoded record."""
        return self.codec.record_size

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype}" for c in self.columns)
        return f"Schema({inner})"

    # -- (de)serialization for table metadata --------------------------------

    def to_text(self) -> str:
        """Compact textual form stored in file metadata."""
        return ",".join(f"{c.name}={c.ctype}" for c in self.columns)

    @classmethod
    def from_text(cls, text: str) -> "Schema":
        """Inverse of :meth:`to_text`."""
        columns = []
        for part in text.split(","):
            name, _, ctype = part.partition("=")
            if not name or not ctype:
                raise SchemaError(f"bad schema text {text!r}")
            columns.append(Column(name, ctype))
        return cls(columns)
