"""The §4.5 relational algorithm for consolidation with selection.

    Set all bits of ResultBitmap to ones;
    foreach selected dimension {
        retrieve the bitmaps for the selected values;
        AND ResultBitmap with the bitmaps;
    }
    retrieve the tuples for ResultBitmap;
    aggregate the tuples' measure to the results;

The per-value bitmaps are **join bitmap indices** built ahead of time
(one per selected dimension attribute, over fact-tuple positions); the
tuple fetch is the fact file's positional fast path.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.aggregates import get_aggregate
from repro.errors import QueryError
from repro.index.bitmap import BitmapIndex
from repro.obs.tracer import get_tracer
from repro.relational.fact_file import FactFile
from repro.relational.star_join import (
    DimensionJoinSpec,
    aggregate_rows,
    build_dimension_hash,
    normalize_measures,
)
from repro.util.bitset import Bitset
from repro.util.stats import Counters


def bitmap_select_consolidate(
    fact: FactFile,
    group_dimensions: list[DimensionJoinSpec],
    selections: list[tuple[BitmapIndex, Iterable]],
    measure: str | list[str],
    aggregate: str = "sum",
    counters: Counters | None = None,
) -> list[tuple]:
    """Bitmap-AND selection, then fetch-and-aggregate.

    ``selections`` pairs a join bitmap index (over this fact table's
    positions) with the selected values of its attribute — or with a
    precomputed :class:`~repro.util.bitset.Bitset` (range predicates
    arrive this way).  Output rows
    are ``(group values..., aggregate values...)`` ordered as
    ``group_dimensions``; rows come out sorted.
    """
    if not group_dimensions:
        raise QueryError("consolidation needs at least one group dimension")
    counters = counters if counters is not None else Counters()
    measures = normalize_measures(measure)
    aggs = [get_aggregate(aggregate)] * len(measures)
    tracer = get_tracer()

    with tracer.span("fetch_bitmaps", selections=len(selections)):
        result_bitmap = Bitset.ones(len(fact))
        for index, values in selections:
            if index.length != len(fact):
                raise QueryError(
                    f"bitmap index {index.name!r} covers {index.length} "
                    f"positions, fact table has {len(fact)}"
                )
            if isinstance(values, Bitset):
                merged = values  # a precomputed range/merged bitmap
            else:
                merged = index.bitmap_for_any(values)
            counters.add("bitmaps_fetched", 1)
            result_bitmap.iand(merged)
        counters.add("selected_tuples", result_bitmap.count())

    with tracer.span(
        "build_dimension_hashes", dimensions=len(group_dimensions)
    ):
        dim_hashes = [build_dimension_hash(spec) for spec in group_dimensions]
    fact_schema = fact.schema
    key_positions = [fact_schema.index_of(s.fact_key) for s in group_dimensions]
    measure_positions = [fact_schema.index_of(m) for m in measures]

    groups: dict[tuple, list] = {}
    with tracer.span("fetch_tuples"):
        for row in fact.fetch_bitmap(result_bitmap):
            key = tuple(
                dim_hashes[d][row[p]] for d, p in enumerate(key_positions)
            )
            state = groups.get(key)
            if state is None:
                state = [agg.initial() for agg in aggs]
                groups[key] = state
            for m, agg in enumerate(aggs):
                state[m] = agg.add(state[m], row[measure_positions[m]])
        counters.add("result_groups", len(groups))

    with tracer.span("finalize_groups", groups=len(groups)):
        return aggregate_rows(groups, aggs)
