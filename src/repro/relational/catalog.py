"""The :class:`Database`: one storage stack plus a table/index catalog.

A ``Database`` bundles the simulated disk, buffer pool, optional WAL,
lock manager and file manager, and tracks which files are heap tables,
fact files, B-trees or bitmap indices.  The experiment harness talks to
a ``Database`` for cold-cache resets and I/O statistics.
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.index.bitmap import BitmapIndex
from repro.index.btree import BTree
from repro.obs.heatmap import ChunkHeatmap
from repro.obs.registry import MetricsRegistry
from repro.relational.fact_file import FactFile
from repro.relational.heap_file import HeapFile
from repro.relational.schema import Schema
from repro.storage.buffer_pool import BufferPool, DEFAULT_POOL_BYTES
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.locks import LockManager
from repro.storage.page_file import FileManager
from repro.storage.wal import WriteAheadLog, recover

_CATALOG_FILE = "__catalog__"


class Database:
    """A self-contained storage stack with named tables and indices."""

    def __init__(
        self,
        page_size: int = 8192,
        pool_bytes: int = DEFAULT_POOL_BYTES,
        disk_model: DiskModel | None = None,
        enable_wal: bool = False,
        disk: SimulatedDisk | None = None,
        wal: WriteAheadLog | None = None,
        wal_dir: str | None = None,
    ):
        if disk is not None and disk.num_pages:
            raise CatalogError(
                "Database() initialises a fresh volume; use Database.attach "
                "to re-open an existing one"
            )
        self.disk = disk or SimulatedDisk(page_size=page_size, model=disk_model)
        if wal is not None:
            self.wal: WriteAheadLog | None = wal
        elif wal_dir is not None:
            self.wal = WriteAheadLog(wal_dir)
        elif enable_wal:
            self.wal = WriteAheadLog()
        else:
            self.wal = None
        self.pool = BufferPool(
            self.disk, capacity_bytes=pool_bytes, wal=self.wal
        )
        self.fm = FileManager(self.pool)
        self.locks = LockManager()
        self.metrics = self._build_metrics()
        #: per-array chunk access counters; cumulative across queries
        #: (cold_cache / reset_stats leave it alone, like histograms)
        self.heatmap = ChunkHeatmap()
        self._tables: dict[str, HeapFile | FactFile] = {}
        self._btrees: dict[str, BTree] = {}
        self._bitmaps: dict[str, BitmapIndex] = {}
        self._kinds: dict[str, str] = {}
        self._closed = False
        self.fm.create(_CATALOG_FILE)

    def _build_metrics(self) -> MetricsRegistry:
        """Register every storage-stack counter source, gauge and
        latency histogram."""
        metrics = MetricsRegistry()
        metrics.register("disk", self.disk.counters, reset=self.disk.reset_stats)
        metrics.register("pool", self.pool.counters, reset=self.pool.reset_stats)
        metrics.register_gauge("pool_resident_pages", self.pool.resident_pages)
        metrics.register_gauge("pool_hit_rate", self.pool.hit_rate)
        metrics.register_gauge("disk_used_bytes", self.disk.used_bytes)
        for name, histogram in self.pool.histograms.items():
            metrics.register_histogram(name, histogram)
        if self.wal is not None:
            metrics.register("wal", self.wal.counters)
            metrics.register_gauge("wal_size_bytes", self.wal.size_bytes)
            metrics.register_gauge("wal_segments", self.wal.segment_count)
            for name, histogram in self.wal.histograms.items():
                metrics.register_histogram(name, histogram)
        return metrics

    @classmethod
    def attach(
        cls,
        disk: SimulatedDisk,
        pool_bytes: int = DEFAULT_POOL_BYTES,
        wal: WriteAheadLog | None = None,
    ) -> "Database":
        """Re-open a database from an existing volume.

        The volume typically comes from :meth:`SimulatedDisk.load`; the
        persisted catalog reconstructs every table and index object.
        (Volumes created with a WAL must be recovered first — see
        :func:`repro.storage.wal.recover`; pass the recovered ``wal`` to
        keep logging writes against the same log.)
        """
        db = cls.__new__(cls)
        db.disk = disk
        db.wal = wal
        db.pool = BufferPool(disk, capacity_bytes=pool_bytes, wal=wal)
        # the Database constructor allocates the FileManager master page
        # first, so it is always page 0 of the volume
        db.fm = FileManager(db.pool, master_page_id=0)
        db.locks = LockManager()
        db.metrics = db._build_metrics()
        db.heatmap = ChunkHeatmap()
        db._tables = {}
        db._btrees = {}
        db._bitmaps = {}
        db._closed = False
        db._kinds = db._load_kinds()
        for name, kind in db._kinds.items():
            if kind == "heap":
                db._tables[name] = HeapFile.open(db.fm, name)
            elif kind == "fact":
                table = FactFile.open(db.fm, name)
                db._tables[name] = table
                db.metrics.register(f"fact:{name}", table.counters)
            elif kind == "btree":
                db._btrees[name] = BTree.open(db.fm, name)
            elif kind.startswith("bitmap:"):
                length = int(kind.split(":", 1)[1])
                db._bitmaps[name] = BitmapIndex(db.fm, name, length)
            else:
                raise CatalogError(f"unknown catalog kind {kind!r} for {name!r}")
        return db

    @classmethod
    def open(
        cls,
        image_path: str,
        wal_dir: str | None = None,
        pool_bytes: int = DEFAULT_POOL_BYTES,
        disk_model: DiskModel | None = None,
    ) -> "Database":
        """Open a database from a saved volume image, replaying the WAL.

        ``image_path`` is a file written by :meth:`SimulatedDisk.save`
        (e.g. a :meth:`checkpoint` image).  When ``wal_dir`` names a
        file-backed log, committed records past the image are replayed
        before the catalog loads, so a crashed process's committed state
        is fully restored — this is the "restart" path.
        """
        disk = SimulatedDisk.load(image_path, model=disk_model)
        wal = None
        if wal_dir is not None:
            wal = WriteAheadLog(wal_dir)
            recover(disk, wal)
        return cls.attach(disk, pool_bytes=pool_bytes, wal=wal)

    def _load_kinds(self) -> dict[str, str]:
        catalog = self.fm.open(_CATALOG_FILE)
        meta = catalog.get_meta()
        if not meta:
            return {}
        length = int(meta.decode())
        page_size = self.disk.page_size
        payload = bytearray()
        for page_no in range(catalog.npages):
            payload += catalog.read(page_no)
        text = bytes(payload[:length]).decode()
        if not text:
            return {}
        return dict(part.split("=", 1) for part in text.split(","))

    # -- catalog persistence ------------------------------------------------

    def _store_kinds(self) -> None:
        # The kind registry grows with the number of files, so it lives on
        # the catalog file's data pages; the header meta holds its length.
        text = ",".join(f"{k}={v}" for k, v in sorted(self._kinds.items()))
        payload = text.encode()
        catalog = self.fm.open(_CATALOG_FILE)
        page_size = self.disk.page_size
        catalog.ensure_pages(max(1, -(-len(payload) // page_size)))
        for page_no in range(catalog.npages):
            piece = payload[page_no * page_size : (page_no + 1) * page_size]
            buf = catalog.read(page_no)
            buf[: len(piece)] = piece
            catalog.mark_dirty(page_no)
        catalog.set_meta(str(len(payload)).encode())

    def _register(self, name: str, kind: str) -> None:
        if name in self._kinds:
            raise CatalogError(f"{name!r} already exists (as {self._kinds[name]})")
        self._kinds[name] = kind
        self._store_kinds()

    # -- tables ------------------------------------------------------------------

    def create_heap_table(
        self, name: str, schema: Schema, extent_pages: int = 16
    ) -> HeapFile:
        """Create a slotted-page table (dimension tables)."""
        self._register(name, "heap")
        table = HeapFile.create(self.fm, name, schema, extent_pages=extent_pages)
        self._tables[name] = table
        return table

    def create_fact_table(self, name: str, schema: Schema) -> FactFile:
        """Create a §4.4 fixed-record fact file."""
        self._register(name, "fact")
        table = FactFile.create(self.fm, name, schema)
        self._tables[name] = table
        self.metrics.register(f"fact:{name}", table.counters)
        return table

    def table(self, name: str) -> HeapFile | FactFile:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    # -- indices --------------------------------------------------------------------

    def create_btree_index(
        self, index_name: str, table_name: str, column: str
    ) -> BTree:
        """Build a B-tree mapping ``column`` values → tuple positions.

        For a fact file the position is the tuple number (usable with
        :meth:`FactFile.get`); for a heap table it is the scan ordinal.
        """
        table = self.table(table_name)
        position = table.schema.index_of(column)
        self._register(index_name, "btree")
        tree = BTree.bulk_load(
            self.fm,
            index_name,
            ((row[position], tuple_no) for tuple_no, row in enumerate(table.scan())),
        )
        self._btrees[index_name] = tree
        return tree

    def create_composite_btree_index(
        self, index_name: str, table_name: str, columns: list[str]
    ) -> BTree:
        """Build a multi-attribute B-tree: tuple of columns → position.

        The backing structure of the "skipping multi-attribute B-tree"
        selection baseline (§4.4); keys compare lexicographically.
        """
        table = self.table(table_name)
        positions = [table.schema.index_of(c) for c in columns]
        self._register(index_name, "btree")
        tree = BTree.bulk_load(
            self.fm,
            index_name,
            (
                (tuple(row[p] for p in positions), tuple_no)
                for tuple_no, row in enumerate(table.scan())
            ),
        )
        self._btrees[index_name] = tree
        return tree

    def create_bitmap_index(
        self, index_name: str, length: int, position_values
    ) -> BitmapIndex:
        """Build a bitmap index over an explicit position/value stream.

        Join bitmap indices need values *joined through* the fact table,
        so the caller supplies the per-position values (see
        :func:`repro.olap.engine.OlapEngine.build_relational`).
        """
        # the position-space length rides in the catalog kind so that
        # attach() can reconstruct the index
        self._register(index_name, f"bitmap:{length}")
        index = BitmapIndex.build(self.fm, index_name, length, position_values)
        self._bitmaps[index_name] = index
        return index

    def btree(self, name: str) -> BTree:
        """Look up a B-tree index by name."""
        try:
            return self._btrees[name]
        except KeyError:
            raise CatalogError(f"no B-tree index named {name!r}") from None

    def bitmap(self, name: str) -> BitmapIndex:
        """Look up a bitmap index by name."""
        try:
            return self._bitmaps[name]
        except KeyError:
            raise CatalogError(f"no bitmap index named {name!r}") from None

    def index_names(self) -> list[str]:
        """All index names, sorted."""
        return sorted(list(self._btrees) + list(self._bitmaps))

    # -- durability ------------------------------------------------------------------

    def commit(self) -> None:
        """Make every completed write durable.

        With a WAL this logs after-images of unlogged dirty frames and
        syncs through a commit marker (the fsync point); without one it
        is a no-op — volatile databases are "committed" by definition.
        """
        self.pool.commit()

    def checkpoint(self, image_path: str | None = None) -> str | None:
        """Flush the pool, persist a volume image, truncate the WAL.

        Returns the image path (defaults to ``checkpoint.img`` inside a
        file-backed WAL's directory).  After a checkpoint, restart =
        :meth:`open` on the image + replay of the (short) residual log.
        """
        if self.wal is None:
            raise CatalogError("checkpoint requires a database with a WAL")
        self.pool.flush_all()  # commits first (no-steal), then writes back
        return self.wal.checkpoint(self.disk, image_path=image_path)

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Commit, flush, and release the WAL's file handle (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.pool.flush_all()
        if self.wal is not None:
            self.wal.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- measurement support ---------------------------------------------------------

    def cold_cache(self) -> None:
        """Flush and empty the buffer pool, zero all I/O statistics.

        This is the paper's pre-query ritual ("we flushed both the Unix
        file system buffer and Paradise buffer pool before running each
        query").
        """
        self.pool.clear()
        self.reset_stats()

    def reset_stats(self) -> dict[str, float]:
        """Zero every registered counter source without disturbing the
        cache; returns the pre-reset merged snapshot."""
        return self.metrics.reset_all()

    def stats(self) -> dict[str, float]:
        """All registered counters merged, since the last reset."""
        return self.metrics.merged_snapshot()

    def sim_io_seconds(self) -> float:
        """Simulated I/O seconds since the last reset."""
        return self.disk.counters.get("sim_io_s")
