"""The "skipping multi-attribute B-tree" selection baseline (§4.4).

The paper tested, alongside bitmaps, "a specialized 'skipping
multi-attribute B-tree' algorithm" (detailed only in the [RQZN] working
paper, which never circulated); bitmaps dominated it.  This module
reconstructs the standard algorithm that name describes — an **index
skip scan** over a composite B-tree on the fact table's foreign keys:

- the index keys are tuples ``(d0, d1, ..., dn-1)`` in dimension order,
  values are fact tuple numbers;
- a selection supplies, per dimension, the sorted list of key values
  that qualify;
- the scan walks the leaf chain collecting qualifying entries, and
  whenever an entry violates some dimension's list it computes the
  *next possible qualifying key* and re-seeks ("skips") the B-tree
  there, bypassing whole subtrees of non-qualifying combinations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence

from repro.aggregates import get_aggregate
from repro.errors import QueryError
from repro.index.btree import BTree
from repro.obs.tracer import get_tracer
from repro.relational.fact_file import FactFile
from repro.relational.star_join import (
    DimensionJoinSpec,
    aggregate_rows,
    build_dimension_hash,
    normalize_measures,
)
from repro.util.stats import Counters


def _first_candidate(allowed: list[list]) -> tuple | None:
    if any(not lst for lst in allowed):
        return None
    return tuple(lst[0] for lst in allowed)


def _advance(key: tuple, allowed: list[list], dim: int) -> tuple | None:
    """Smallest qualifying key whose prefix up to ``dim`` exceeds ``key``.

    Advances dimension ``dim`` to its next allowed value strictly above
    ``key[dim]``, carrying into earlier dimensions when a list is
    exhausted; all later dimensions reset to their minimum.
    """
    while dim >= 0:
        lst = allowed[dim]
        position = bisect_right(lst, key[dim])
        if position < len(lst):
            return (
                key[:dim]
                + (lst[position],)
                + tuple(allowed[d][0] for d in range(dim + 1, len(allowed)))
            )
        dim -= 1
    return None


def skip_scan(
    tree: BTree,
    allowed: Sequence[Sequence],
    counters: Counters | None = None,
) -> list[int]:
    """All values whose composite key qualifies on every dimension.

    ``allowed[d]`` is the collection of qualifying values for key
    position ``d``.  Returns values in key order.
    """
    counters = counters if counters is not None else Counters()
    allowed_sorted = [sorted(set(lst)) for lst in allowed]
    allowed_sets = [set(lst) for lst in allowed_sorted]
    ndim = len(allowed_sorted)
    out: list[int] = []

    candidate = _first_candidate(allowed_sorted)
    while candidate is not None:
        counters.add("mbtree_seeks")
        reseek_at = None
        for key, value in tree.range_search(low=candidate):
            violating = next(
                (d for d in range(ndim) if key[d] not in allowed_sets[d]),
                None,
            )
            if violating is None:
                out.append(value)
                counters.add("mbtree_hits")
                continue
            # compute the next possibly-qualifying key and re-seek there
            lst = allowed_sorted[violating]
            position = bisect_left(lst, key[violating])
            if position < len(lst):
                reseek_at = (
                    key[:violating]
                    + (lst[position],)
                    + tuple(
                        allowed_sorted[d][0]
                        for d in range(violating + 1, ndim)
                    )
                )
                # the candidate must be strictly beyond the current key,
                # else we would loop on it forever
                if reseek_at <= key:
                    reseek_at = _advance(key, allowed_sorted, violating)
            else:
                reseek_at = _advance(key, allowed_sorted, violating - 1) if violating else None
            break
        else:
            return out  # leaf chain exhausted
        candidate = reseek_at
    return out


def mbtree_select_consolidate(
    fact: FactFile,
    group_dimensions: list[DimensionJoinSpec],
    tree: BTree,
    allowed: Sequence[Sequence],
    measure: str | list[str],
    aggregate: str = "sum",
    counters: Counters | None = None,
) -> list[tuple]:
    """Skip-scan the composite index, fetch the tuples, aggregate.

    Output rows match the other selection algorithms' exactly.
    """
    if not group_dimensions:
        raise QueryError("consolidation needs at least one group dimension")
    counters = counters if counters is not None else Counters()
    measures = normalize_measures(measure)
    aggs = [get_aggregate(aggregate)] * len(measures)
    tracer = get_tracer()

    with tracer.span("skip_scan", dimensions=len(allowed)):
        positions = skip_scan(tree, allowed, counters)
        counters.add("selected_tuples", len(positions))

    with tracer.span(
        "build_dimension_hashes", dimensions=len(group_dimensions)
    ):
        dim_hashes = [build_dimension_hash(spec) for spec in group_dimensions]
    fact_schema = fact.schema
    key_positions = [fact_schema.index_of(s.fact_key) for s in group_dimensions]
    measure_positions = [fact_schema.index_of(m) for m in measures]

    groups: dict[tuple, list] = {}
    with tracer.span("fetch_tuples", tuples=len(positions)):
        for tuple_no in sorted(positions):
            row = fact.get(tuple_no)
            key = tuple(
                dim_hashes[d][row[p]] for d, p in enumerate(key_positions)
            )
            state = groups.get(key)
            if state is None:
                state = [agg.initial() for agg in aggs]
                groups[key] = state
            for m, agg in enumerate(aggs):
                state[m] = agg.add(state[m], row[measure_positions[m]])
        counters.add("result_groups", len(groups))
    with tracer.span("finalize_groups", groups=len(groups)):
        return aggregate_rows(groups, aggs)
