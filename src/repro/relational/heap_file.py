"""Slotted-page heap files: the standard relational table layout.

Dimension tables are stored here.  Each record costs its payload plus a
4-byte slot entry and a share of the page header — the overhead §4.4's
fact file eliminates for the (much larger) fact table.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.errors import FileError
from repro.relational.schema import Schema
from repro.storage.page_file import FileManager, PageFile
from repro.storage.slotted_page import SlottedPage

_META_HEAD = struct.Struct("<qH")  # tuple count, schema text length


class HeapFile:
    """A table of fixed-length records on slotted pages."""

    def __init__(self, pfile: PageFile, schema: Schema | None = None):
        self._file = pfile
        meta = pfile.get_meta()
        if meta:
            count, text_len = _META_HEAD.unpack_from(meta, 0)
            stored = Schema.from_text(
                meta[_META_HEAD.size : _META_HEAD.size + text_len].decode()
            )
            if schema is not None and schema != stored:
                raise FileError("schema does not match stored table schema")
            self.schema = stored
            self._count = count
        else:
            if schema is None:
                raise FileError("new heap file needs a schema")
            self.schema = schema
            self._count = 0
            self._store_meta()

    @classmethod
    def create(
        cls,
        fm: FileManager,
        name: str,
        schema: Schema,
        extent_pages: int = 16,
    ) -> "HeapFile":
        """Create an empty named table.

        ``extent_pages`` sets the allocation granularity; tiny lookup
        tables (snowflake levels) use 1 to avoid paying a whole extent.
        """
        return cls(fm.create(name, extent_pages=extent_pages), schema)

    @classmethod
    def open(cls, fm: FileManager, name: str) -> "HeapFile":
        """Open an existing table."""
        return cls(fm.open(name))

    def _store_meta(self) -> None:
        text = self.schema.to_text().encode()
        self._file.set_meta(_META_HEAD.pack(self._count, len(text)) + text)

    # -- modification --------------------------------------------------------

    def insert(self, row: tuple) -> tuple[int, int]:
        """Insert one row; returns its record id ``(page, slot)``."""
        payload = self.schema.codec.pack(row)
        if self._file.npages:
            last = self._file.npages - 1
            page = SlottedPage(self._file.read(last))
            slot = page.insert(payload)
            if slot is not None:
                self._file.mark_dirty(last)
                self._count += 1
                self._store_meta()
                return last, slot
        logical = self._file.append_page()
        page = SlottedPage.format(self._file.read(logical))
        slot = page.insert(payload)
        if slot is None:
            raise FileError(
                f"record of {len(payload)} bytes does not fit an empty page"
            )
        self._file.mark_dirty(logical)
        self._count += 1
        self._store_meta()
        return logical, slot

    def insert_many(self, rows) -> None:
        """Bulk insert without per-row metadata writes."""
        inserted = 0
        page_no = self._file.npages - 1 if self._file.npages else None
        page = SlottedPage(self._file.read(page_no)) if page_no is not None else None
        for row in rows:
            payload = self.schema.codec.pack(row)
            if page is None or page.insert(payload) is None:
                page_no = self._file.append_page()
                page = SlottedPage.format(self._file.read(page_no))
                if page.insert(payload) is None:
                    raise FileError(
                        f"record of {len(payload)} bytes does not fit a page"
                    )
            self._file.mark_dirty(page_no)
            inserted += 1
        self._count += inserted
        self._store_meta()

    def delete(self, rid: tuple[int, int]) -> None:
        """Delete one row by record id (slot space is not compacted)."""
        page_no, slot = rid
        page = SlottedPage(self._file.read(page_no))
        page.delete(slot)
        self._file.mark_dirty(page_no)
        self._count -= 1
        self._store_meta()

    def update(self, rid: tuple[int, int], row: tuple) -> tuple[int, int]:
        """Replace one row; returns its (possibly new) record id.

        Fixed-length records always fit back in place, but the
        delete + insert fallback keeps the method correct if a page had
        no room (e.g. after concurrent inserts).
        """
        page_no, slot = rid
        payload = self.schema.codec.pack(row)
        page = SlottedPage(self._file.read(page_no))
        page.get(slot)  # raises if the slot is already deleted
        page.delete(slot)
        new_slot = page.insert(payload)
        if new_slot is not None:
            self._file.mark_dirty(page_no)
            return page_no, new_slot
        self._file.mark_dirty(page_no)
        self._count -= 1
        return self.insert(row)

    # -- access ------------------------------------------------------------------

    def get(self, rid: tuple[int, int]) -> tuple:
        """Fetch one row by record id."""
        page_no, slot = rid
        page = SlottedPage(self._file.read(page_no))
        return self.schema.codec.unpack(page.get(slot))

    def scan(self) -> Iterator[tuple]:
        """Yield every row in physical order."""
        codec = self.schema.codec
        for page_no in range(self._file.npages):
            page = SlottedPage(self._file.read(page_no))
            for _, payload in page.records():
                yield codec.unpack(payload)

    def __len__(self) -> int:
        return self._count

    def size_bytes(self) -> int:
        """On-disk footprint including slotted-page overhead."""
        return self._file.size_bytes()
