"""The OLAP Array ADT — the paper's contribution (§3, §4.1, §4.2).

- :mod:`repro.core.chunking` — chunk (tile) geometry and offset math.
- :mod:`repro.core.compression` — chunk codecs, led by §3.3's
  chunk-offset compression.
- :mod:`repro.core.dimension_index` — per-dimension B-tree key ↔ array
  index maps.
- :mod:`repro.core.index_to_index` — §3.4 hierarchy arrays.
- :mod:`repro.core.meta` — §3.3 chunk meta directory (OID + length).
- :mod:`repro.core.olap_array` — the ADT object and its functions.
- :mod:`repro.core.builder` — bulk loading fact tuples into an array.
- :mod:`repro.core.consolidate` — §4.1 array consolidation.
- :mod:`repro.core.select_consolidate` — §4.2 consolidation with
  selection.
"""

from repro.core.chunking import ChunkGeometry
from repro.core.compression import (
    AdaptiveCodec,
    ChunkOffsetCodec,
    DenseCodec,
    LZWDenseCodec,
    get_codec,
)
from repro.core.dimension_index import DimensionIndex
from repro.core.index_to_index import IndexToIndex
from repro.core.olap_array import OLAPArray
from repro.core.builder import build_olap_array
from repro.core.consolidate import (
    ConsolidationResult,
    ConsolidationSpec,
    consolidate,
)
from repro.core.select_consolidate import Selection, consolidate_with_selection
from repro.core.parallel import consolidate_partitioned, partition_chunks
from repro.core.cube import compute_cube

__all__ = [
    "ChunkGeometry",
    "ChunkOffsetCodec",
    "DenseCodec",
    "LZWDenseCodec",
    "AdaptiveCodec",
    "get_codec",
    "DimensionIndex",
    "IndexToIndex",
    "OLAPArray",
    "build_olap_array",
    "ConsolidationResult",
    "ConsolidationSpec",
    "consolidate",
    "Selection",
    "consolidate_with_selection",
    "consolidate_partitioned",
    "partition_chunks",
    "compute_cube",
]
