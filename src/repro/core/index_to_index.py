"""§3.4 IndexToIndex arrays: the array form of dimension hierarchies.

For a dimension attribute (a hierarchy level), the IndexToIndex array
maps each input array index to the result array index of that level:
``mapping[m] = c`` means the m-th distinct key of the dimension maps to
the c-th distinct value of the attribute.  The paper's city → state
example: slot 10344 holds 47.

Result indices are assigned by first appearance in dimension-key order,
and the distinct attribute values (the result dimension's keys) are
stored alongside the mapping.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.dimension_index import decode_keys, encode_keys
from repro.errors import DimensionError

_HEAD = struct.Struct("<I")


class IndexToIndex:
    """Mapping array plus the target level's distinct values."""

    def __init__(self, mapping: np.ndarray, target_keys: list):
        mapping = np.ascontiguousarray(mapping, dtype=np.int32)
        if mapping.ndim != 1:
            raise DimensionError("IndexToIndex mapping must be 1-D")
        if mapping.size and (
            mapping.min() < 0 or mapping.max() >= len(target_keys)
        ):
            raise DimensionError("IndexToIndex mapping out of target range")
        self.mapping = mapping
        self.target_keys = list(target_keys)

    @classmethod
    def build(cls, attribute_values: list) -> "IndexToIndex":
        """From the attribute value of every dimension key, in index order."""
        distinct: dict = {}
        mapping = np.empty(len(attribute_values), dtype=np.int32)
        for index, value in enumerate(attribute_values):
            target = distinct.get(value)
            if target is None:
                target = len(distinct)
                distinct[value] = target
            mapping[index] = target
        return cls(mapping, list(distinct))

    @classmethod
    def identity(cls, keys: list) -> "IndexToIndex":
        """Group by the key attribute itself (every index maps to itself)."""
        return cls(np.arange(len(keys), dtype=np.int32), list(keys))

    @classmethod
    def collapse(cls, size: int) -> "IndexToIndex":
        """Aggregate a dimension away: every index maps to one group."""
        return cls(np.zeros(size, dtype=np.int32), ["*"])

    def __len__(self) -> int:
        return int(self.mapping.size)

    @property
    def target_size(self) -> int:
        """Number of groups at the target level."""
        return len(self.target_keys)

    def __getitem__(self, index: int) -> int:
        return int(self.mapping[index])

    @classmethod
    def factor(
        cls, fine: "IndexToIndex", coarse: "IndexToIndex"
    ) -> "IndexToIndex":
        """The mapping ``m`` with ``coarse = m ∘ fine``, if one exists.

        Both inputs map the *same* base indices (e.g. dimension keys) to
        their levels.  The result maps fine-level indices to
        coarse-level indices — exactly what aggregate navigation needs
        to roll a (city-grained) materialized view up to states.  Raises
        :class:`DimensionError` when the coarse level does not
        functionally depend on the fine one (two base keys in one fine
        group landing in different coarse groups).
        """
        if len(fine) != len(coarse):
            raise DimensionError(
                f"factor over different base sizes: {len(fine)} vs "
                f"{len(coarse)}"
            )
        mapping = np.full(fine.target_size, -1, dtype=np.int32)
        for base in range(len(fine)):
            fine_group = int(fine.mapping[base])
            coarse_group = int(coarse.mapping[base])
            if mapping[fine_group] == -1:
                mapping[fine_group] = coarse_group
            elif mapping[fine_group] != coarse_group:
                raise DimensionError(
                    "coarse level is not a function of the fine level "
                    f"(fine group {fine_group} maps to both "
                    f"{mapping[fine_group]} and {coarse_group})"
                )
        if (mapping == -1).any():
            raise DimensionError("fine level has groups with no base keys")
        return cls(mapping, coarse.target_keys)

    def compose(self, finer_to_self: "IndexToIndex") -> "IndexToIndex":
        """Chain two hierarchy steps (city→state then state→region)."""
        if finer_to_self.target_size != len(self):
            raise DimensionError(
                "composition mismatch: inner targets "
                f"{finer_to_self.target_size} groups, outer covers {len(self)}"
            )
        return IndexToIndex(
            self.mapping[finer_to_self.mapping], self.target_keys
        )

    # -- persistence -------------------------------------------------------

    def to_blob(self) -> bytes:
        """Serialize for the ADT's aux large-object store."""
        return (
            _HEAD.pack(self.mapping.size)
            + self.mapping.tobytes()
            + encode_keys(self.target_keys)
        )

    @classmethod
    def from_blob(cls, payload: bytes) -> "IndexToIndex":
        """Inverse of :meth:`to_blob`."""
        (size,) = _HEAD.unpack_from(payload, 0)
        mapping = np.frombuffer(payload, np.int32, size, _HEAD.size).copy()
        target_keys = decode_keys(payload[_HEAD.size + 4 * size :])
        return cls(mapping, target_keys)
