"""§4.1: the OLAP Array consolidation algorithm.

Consolidation merges the star join, the group-by and the aggregation
into a single position-based pass:

    For each joined dimension { create result B-tree; load the
        IndexToIndex array; }
    scan the input array
    For each array cell {
        look up result indices using the IndexToIndex arrays;  // star join
        find the corresponding result array cell;
        add the input cell to the result array cell;           // aggregation
    }

The result is held as a flat in-memory array indexed positionally (the
paper's in-memory result OLAP object); :func:`consolidate` can
optionally materialize it back into a persisted
:class:`~repro.core.olap_array.OLAPArray`.

Two execution modes: ``interpreted`` runs the per-cell loop exactly as
the pseudo-code reads (used for the figures so the relational baseline,
also per-tuple Python, pays symmetric interpreter costs);
``vectorized`` runs the same mapping with numpy gathers per chunk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.aggregates import get_aggregate
from repro.core.index_to_index import IndexToIndex
from repro.core.olap_array import OLAPArray
from repro.errors import QueryError
from repro.obs.tracer import get_tracer
from repro.util.stats import Counters

_VECTOR_AGGS = {"sum", "count", "min", "max"}


@dataclass(frozen=True)
class ConsolidationSpec:
    """What to do with one dimension: group by a level, the key, or drop.

    - ``level(attr)`` — group by hierarchy attribute ``attr``;
    - ``key()`` — group by the dimension key itself (identity);
    - ``drop()`` — aggregate the dimension away entirely;
    - ``mapping(i2i)`` — group by an explicit IndexToIndex array (used
      by aggregate navigation, which derives the mapping by factoring
      hierarchy levels instead of reading it off the array).
    """

    kind: str
    attr: str | None = None
    i2i: IndexToIndex | None = None

    @classmethod
    def level(cls, attr: str) -> "ConsolidationSpec":
        return cls("level", attr)

    @classmethod
    def key(cls) -> "ConsolidationSpec":
        return cls("key")

    @classmethod
    def drop(cls) -> "ConsolidationSpec":
        return cls("drop")

    @classmethod
    def mapping(cls, i2i: IndexToIndex) -> "ConsolidationSpec":
        return cls("mapping", i2i=i2i)


@dataclass
class ConsolidationResult:
    """Rows (sorted), optional materialized result array, and counters."""

    rows: list[tuple]
    counters: Counters
    result_array: OLAPArray | None = None


def _resolve_specs(
    array: OLAPArray, specs: list[ConsolidationSpec]
) -> list[IndexToIndex]:
    if len(specs) != array.geometry.ndim:
        raise QueryError(
            f"need one spec per dimension ({array.geometry.ndim}), got "
            f"{len(specs)}"
        )
    i2is = []
    for d, spec in enumerate(specs):
        if spec.kind == "level":
            i2is.append(array.index_to_index(d, spec.attr))
        elif spec.kind == "key":
            i2is.append(IndexToIndex.identity(array.dims[d].keys()))
        elif spec.kind == "drop":
            i2is.append(IndexToIndex.collapse(len(array.dims[d])))
        elif spec.kind == "mapping":
            if spec.i2i is None or len(spec.i2i) != len(array.dims[d]):
                raise QueryError(
                    f"mapping spec on dimension {d} must cover its "
                    f"{len(array.dims[d])} indices"
                )
            i2is.append(spec.i2i)
        else:
            raise QueryError(f"unknown spec kind {spec.kind!r}")
    return i2is


class ResultAccumulator:
    """The in-memory result OLAP object both algorithms aggregate into.

    Result cells are addressed positionally: ``linear = Σ result_index[d]
    * stride[d]`` where each dimension's result index comes from its
    IndexToIndex array.  Dropped dimensions contribute a size-1 axis and
    are omitted from output rows.
    """

    def __init__(
        self,
        array: OLAPArray,
        specs: list[ConsolidationSpec],
        aggregate: str | list[str] = "sum",
    ):
        self.array = array
        self.specs = list(specs)
        self.i2is = _resolve_specs(array, specs)
        self.result_shape = tuple(i.target_size for i in self.i2is)
        self.total_cells = math.prod(self.result_shape)
        strides = [1] * len(self.result_shape)
        for axis in range(len(strides) - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.result_shape[axis + 1]
        self.result_strides = tuple(strides)
        names = (
            [aggregate] * array.n_measures
            if isinstance(aggregate, str)
            else list(aggregate)
        )
        if len(names) != array.n_measures:
            raise QueryError(
                f"{len(names)} aggregates for {array.n_measures} measures"
            )
        self.agg_names = names
        self.aggs = [get_aggregate(n) for n in names]
        # interpreted state: one list of per-measure states per touched cell
        self._states: dict[int, list] = {}
        # vectorized state: accumulator matrices + per-cell touch counts
        self._vec: np.ndarray | None = None
        self._vec_counts: np.ndarray | None = None

    # -- interpreted path ----------------------------------------------------

    def mapping_lists(self) -> list[list[int]]:
        """Per-dimension index→result-index lists as plain Python lists."""
        return [i.mapping.tolist() for i in self.i2is]

    def add_one(self, linear: int, measures) -> None:
        """Fold one cell's measures into result cell ``linear``."""
        state = self._states.get(linear)
        if state is None:
            state = [agg.initial() for agg in self.aggs]
            self._states[linear] = state
        for m, agg in enumerate(self.aggs):
            state[m] = agg.add(state[m], measures[m])

    # -- vectorized path ---------------------------------------------------------

    def _vec_init(self) -> None:
        self._vec_counts = np.zeros(self.total_cells, dtype=np.int64)
        columns = []
        for name in self.agg_names:
            if name == "min":
                columns.append(np.full(self.total_cells, np.inf))
            elif name == "max":
                columns.append(np.full(self.total_cells, -np.inf))
            else:
                columns.append(np.zeros(self.total_cells, dtype=np.float64))
        self._vec = np.stack(columns, axis=1)

    def add_many(self, linear: np.ndarray, values: np.ndarray) -> None:
        """Fold many cells at once (vectorized mode)."""
        for name in self.agg_names:
            if name not in _VECTOR_AGGS and name != "avg":
                raise QueryError(
                    f"aggregate {name!r} not supported in vectorized mode"
                )
        if self._vec is None:
            self._vec_init()
        np.add.at(self._vec_counts, linear, 1)
        for m, name in enumerate(self.agg_names):
            column = values[:, m].astype(np.float64)
            if name in ("sum", "avg"):
                np.add.at(self._vec[:, m], linear, column)
            elif name == "count":
                np.add.at(self._vec[:, m], linear, 1.0)
            elif name == "min":
                np.minimum.at(self._vec[:, m], linear, column)
            elif name == "max":
                np.maximum.at(self._vec[:, m], linear, column)

    # -- extraction -------------------------------------------------------------------

    def _group_values(self, linear: int) -> tuple:
        out = []
        for d, (spec, i2i, stride) in enumerate(
            zip(self.specs, self.i2is, self.result_strides)
        ):
            if spec.kind == "drop":
                continue
            index = (linear // stride) % self.result_shape[d]
            out.append(i2i.target_keys[index])
        return tuple(out)

    def rows(self) -> list[tuple]:
        """Sorted output rows: ``(group values..., aggregates...)``."""
        out = []
        if self._vec is not None:
            touched = np.nonzero(self._vec_counts)[0]
            integral = self.array.dtype == "int64"
            for linear in touched.tolist():
                cells = []
                for m, name in enumerate(self.agg_names):
                    value = float(self._vec[linear, m])
                    if name == "avg":
                        value = value / float(self._vec_counts[linear])
                    elif name == "count":
                        value = int(value)
                    elif integral:
                        value = int(value)
                    cells.append(value)
                out.append(self._group_values(linear) + tuple(cells))
        for linear, state in self._states.items():
            results = tuple(
                agg.result(state[m]) for m, agg in enumerate(self.aggs)
            )
            out.append(self._group_values(linear) + results)
        out.sort()
        return out

    def touched_cells(self) -> int:
        """Number of distinct result cells that received input."""
        if self._vec is not None:
            return int((self._vec_counts > 0).sum())
        return len(self._states)

    # -- shard transport (the repro.shard scatter-gather hook) -------------------

    def export_state(self) -> dict:
        """The accumulator's aggregate state as a picklable payload.

        Every interpreted aggregate state is a plain Python scalar or
        tuple and the vectorized state is a pair of ndarrays, so the
        payload crosses a process boundary losslessly.  The structural
        parts (array, specs, strides) are *not* included — the receiver
        rebuilds an accumulator against its own array handle and calls
        :meth:`import_state`.
        """
        return {
            "states": {int(k): list(v) for k, v in self._states.items()},
            "vec": self._vec,
            "vec_counts": self._vec_counts,
        }

    def import_state(self, payload: dict) -> "ResultAccumulator":
        """Restore a payload produced by :meth:`export_state`."""
        self._states = {int(k): list(v) for k, v in payload["states"].items()}
        self._vec = payload["vec"]
        self._vec_counts = payload["vec_counts"]
        return self

    # -- partition merging (the §6 parallelization hook) ------------------------

    def merge_from(self, other: "ResultAccumulator") -> None:
        """Fold another accumulator (same specs/aggregates) into this one.

        This is the combine step of a partitioned consolidation: each
        partition aggregates its chunk range independently, then the
        states merge exactly (every aggregate carries a mergeable
        sketch).
        """
        if other.result_shape != self.result_shape or other.agg_names != self.agg_names:
            raise QueryError("cannot merge accumulators with different specs")
        for linear, state in other._states.items():
            mine = self._states.get(linear)
            if mine is None:
                self._states[linear] = list(state)
            else:
                for m, agg in enumerate(self.aggs):
                    mine[m] = agg.merge(mine[m], state[m])
        if other._vec is not None:
            if self._vec is None:
                self._vec_init()
            self._vec_counts += other._vec_counts
            for m, name in enumerate(self.agg_names):
                if name == "min":
                    np.minimum(self._vec[:, m], other._vec[:, m], out=self._vec[:, m])
                elif name == "max":
                    np.maximum(self._vec[:, m], other._vec[:, m], out=self._vec[:, m])
                else:  # sum / count / avg accumulate additively
                    self._vec[:, m] += other._vec[:, m]


def allowed_masks(
    array: OLAPArray, allowed: list[list[int]]
) -> list[np.ndarray]:
    """Per-dimension boolean membership masks from final index lists."""
    masks = []
    for d, indices in enumerate(allowed):
        mask = np.zeros(len(array.dims[d]), dtype=bool)
        if len(indices):
            mask[np.asarray(list(indices), dtype=np.int64)] = True
        masks.append(mask)
    return masks


def _chunk_overlaps(geometry, chunk_no: int, masks: list[np.ndarray]) -> bool:
    """Whether a chunk's index box intersects the selection at all."""
    origin = geometry.chunk_origin(chunk_no)
    for d, mask in enumerate(masks):
        if not mask[origin[d] : origin[d] + geometry.chunk_shape[d]].any():
            return False
    return True


def scan_chunk_range(
    array: OLAPArray,
    accumulator: ResultAccumulator,
    chunk_range,
    mode: str,
    allowed: list[list[int]] | None = None,
    counters: Counters | None = None,
) -> int:
    """Run the §4.1 scan over a range of chunk numbers.

    Factored out so a partitioned consolidation (see
    :func:`repro.core.parallel.consolidate_partitioned`) and the shard
    workers (:mod:`repro.shard.worker`) can drive one accumulator per
    chunk partition.  Returns the number of valid cells folded in.

    ``allowed`` (per-dimension sorted index lists, the §4.2 "final
    lists") pushes a selection into the scan: chunks whose index box
    misses the selection are skipped without a read, and non-matching
    cells inside surviving chunks are filtered out.  ``counters``, when
    given, receives per-call ``chunks_read`` / ``chunks_skipped`` /
    ``cells_scanned`` — the per-shard attribution the shared
    ``array.counters`` bag cannot provide under concurrent scans.
    """
    geometry = array.geometry
    masks = allowed_masks(array, allowed) if allowed is not None else None
    scanned = 0
    chunks_read = 0
    chunks_skipped = 0
    if mode == "interpreted":
        maps = accumulator.mapping_lists()
        strides = accumulator.result_strides
        cell_strides = geometry.cell_strides
        chunk_shape = geometry.chunk_shape
        ndim = geometry.ndim
        mask_lists = [m.tolist() for m in masks] if masks is not None else None
        for chunk_no in chunk_range:
            if masks is not None and not _chunk_overlaps(
                geometry, chunk_no, masks
            ):
                chunks_skipped += 1
                continue
            offsets, values = array.read_chunk(chunk_no)
            if not len(offsets):
                continue
            chunks_read += 1
            origin = geometry.chunk_origin(chunk_no)
            value_rows = values.tolist()
            for j, offset in enumerate(offsets.tolist()):
                linear = 0
                keep = True
                for d in range(ndim):
                    index = origin[d] + (offset // cell_strides[d]) % chunk_shape[d]
                    if mask_lists is not None and not mask_lists[d][index]:
                        keep = False
                        break
                    linear += maps[d][index] * strides[d]
                if keep:
                    accumulator.add_one(linear, value_rows[j])
                    scanned += 1
    else:
        strides = np.array(accumulator.result_strides, dtype=np.int64)
        maps = [i.mapping.astype(np.int64) for i in accumulator.i2is]
        for chunk_no in chunk_range:
            if masks is not None and not _chunk_overlaps(
                geometry, chunk_no, masks
            ):
                chunks_skipped += 1
                continue
            offsets, values = array.read_chunk(chunk_no)
            if not len(offsets):
                continue
            chunks_read += 1
            coords = geometry.chunk_offset_to_coords(chunk_no, offsets)
            if masks is not None:
                keep = np.ones(len(offsets), dtype=bool)
                for d in range(geometry.ndim):
                    keep &= masks[d][coords[:, d]]
                if not keep.any():
                    continue
                coords = coords[keep]
                values = values[keep]
            linear = np.zeros(len(coords), dtype=np.int64)
            for d in range(geometry.ndim):
                linear += maps[d][coords[:, d]] * strides[d]
            accumulator.add_many(linear, values)
            scanned += len(coords)
    if counters is not None:
        counters.add("chunks_read", chunks_read)
        counters.add("cells_scanned", scanned)
        if chunks_skipped:
            counters.add("chunks_skipped", chunks_skipped)
    return scanned


def consolidate(
    array: OLAPArray,
    specs: list[ConsolidationSpec],
    aggregate: str | list[str] = "sum",
    mode: str = "interpreted",
    counters: Counters | None = None,
    materialize_as: str | None = None,
) -> ConsolidationResult:
    """Run the §4.1 consolidation over a whole array.

    ``mode`` is ``interpreted`` (faithful per-cell loop) or
    ``vectorized`` (numpy kernels).  With ``materialize_as`` the result
    is also persisted as a new OLAP array of that name.
    """
    if mode not in ("interpreted", "vectorized"):
        raise QueryError(f"unknown mode {mode!r}")
    counters = counters if counters is not None else Counters()
    tracer = get_tracer()
    with tracer.span("resolve_mappings"):
        accumulator = ResultAccumulator(array, specs, aggregate)
    with tracer.span(
        "scan_chunks", mode=mode, chunks=array.geometry.n_chunks
    ):
        scanned = scan_chunk_range(
            array, accumulator, range(array.geometry.n_chunks), mode
        )
        counters.add("cells_scanned", scanned)
        counters.merge(array.counters)
        array.counters.reset()
    counters.add("result_cells", accumulator.touched_cells())

    with tracer.span("extract_rows"):
        rows = accumulator.rows()
    result_array = None
    if materialize_as is not None:
        result_array = _materialize(array, accumulator, rows, materialize_as)
    return ConsolidationResult(rows=rows, counters=counters, result_array=result_array)


def _materialize(
    array: OLAPArray,
    accumulator: ResultAccumulator,
    rows: list[tuple],
    name: str,
) -> OLAPArray:
    """Persist consolidation output as a new OLAP array."""
    from repro.core.builder import DimensionData, build_olap_array

    kept = [
        (d, spec, i2i)
        for d, (spec, i2i) in enumerate(zip(accumulator.specs, accumulator.i2is))
        if spec.kind != "drop"
    ]
    if not kept:
        raise QueryError("cannot materialize a fully collapsed result")
    dimensions = [
        DimensionData(
            name=(
                f"{array.dim_names[d]}.{spec.attr}"
                if spec.kind == "level"
                else array.dim_names[d]
            ),
            keys=list(i2i.target_keys),
        )
        for d, spec, i2i in kept
    ]
    chunk_shape = tuple(min(len(dim.keys), 16) for dim in dimensions)
    dtype = array.dtype
    if any(n in ("avg",) for n in accumulator.agg_names):
        dtype = "float64"
    return build_olap_array(
        array.fm,
        name,
        dimensions,
        rows,
        chunk_shape,
        codec=array.codec_name,
        dtype=dtype,
        measure_names=[
            f"{agg}({m})"
            for agg, m in zip(accumulator.agg_names, array.measure_names)
        ],
    )
