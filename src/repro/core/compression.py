"""Chunk codecs, led by §3.3's chunk-offset compression.

A chunk's logical content is a set of valid cells: a sorted ``int32``
array of offsets-in-chunk plus a ``(count, p)`` value matrix (``p``
measures per cell, all of one dtype).  Codecs turn that into bytes and
back; every payload starts with a one-byte codec tag so a stored chunk
is self-describing.

- :class:`ChunkOffsetCodec` — the paper's format: ``(offsetInChunk,
  data)`` pairs sorted by offset, enabling binary-search probes (§4.2).
- :class:`DenseCodec` — an uncompressed tile: validity bitmap plus one
  value slot per cell (what a plain Paradise array stores).
- :class:`LZWDenseCodec` — the dense tile run through LZW, Paradise's
  generic tile compression (§3.1).
- :class:`AdaptiveCodec` — picks dense above a density threshold,
  chunk-offset below (an extension the paper's storage analysis in
  §3.2 motivates).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CompressionError
from repro.util.lzw import lzw_compress, lzw_decompress

_TAG_CHUNK_OFFSET = 1
_TAG_DENSE = 2
_TAG_LZW_DENSE = 3

_COUNT = struct.Struct("<I")

_DTYPES = {"int64": np.int64, "float64": np.float64}


def _np_dtype(dtype: str):
    try:
        return _DTYPES[dtype]
    except KeyError:
        raise CompressionError(
            f"unsupported measure dtype {dtype!r}; expected one of "
            f"{sorted(_DTYPES)}"
        ) from None


def _validate(offsets: np.ndarray, values: np.ndarray, chunk_cells: int) -> None:
    if offsets.ndim != 1 or values.ndim != 2:
        raise CompressionError("expected 1-D offsets and (count, p) values")
    if len(offsets) != len(values):
        raise CompressionError(
            f"{len(offsets)} offsets but {len(values)} value rows"
        )
    if len(offsets):
        if offsets.min() < 0 or offsets.max() >= chunk_cells:
            raise CompressionError("offset outside the chunk")
        if (np.diff(offsets) <= 0).any():
            raise CompressionError("offsets must be strictly increasing")


class ChunkCodec:
    """Base class; stateless encode/decode of one chunk."""

    name = "?"
    tag = 0

    def encode(
        self,
        offsets: np.ndarray,
        values: np.ndarray,
        chunk_cells: int,
        dtype: str,
    ) -> bytes:
        raise NotImplementedError

    def decode(
        self, payload: bytes, chunk_cells: int, n_measures: int, dtype: str
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError


class ChunkOffsetCodec(ChunkCodec):
    """§3.3: sorted ``(offsetInChunk, data)`` pairs, valid cells only."""

    name = "chunk-offset"
    tag = _TAG_CHUNK_OFFSET

    def encode(self, offsets, values, chunk_cells, dtype):
        offsets = np.ascontiguousarray(offsets, dtype=np.int32)
        values = np.ascontiguousarray(values, dtype=_np_dtype(dtype))
        _validate(offsets, values, chunk_cells)
        return (
            bytes([self.tag])
            + _COUNT.pack(len(offsets))
            + offsets.tobytes()
            + values.tobytes()
        )

    def decode(self, payload, chunk_cells, n_measures, dtype):
        count = _COUNT.unpack_from(payload, 1)[0]
        start = 1 + _COUNT.size
        offsets = np.frombuffer(payload, np.int32, count, start)
        values = np.frombuffer(
            payload, _np_dtype(dtype), count * n_measures, start + 4 * count
        ).reshape(count, n_measures)
        return offsets, values


class DenseCodec(ChunkCodec):
    """Uncompressed tile: validity bitmap + one value slot per cell."""

    name = "dense"
    tag = _TAG_DENSE

    def _encode_body(self, offsets, values, chunk_cells, dtype):
        np_dtype = _np_dtype(dtype)
        valid = np.zeros(chunk_cells, dtype=np.uint8)
        valid[offsets] = 1
        slots = np.zeros((chunk_cells, values.shape[1]), dtype=np_dtype)
        slots[offsets] = values
        return np.packbits(valid, bitorder="little").tobytes() + slots.tobytes()

    def _decode_body(self, body, chunk_cells, n_measures, dtype):
        np_dtype = _np_dtype(dtype)
        nbitmap = (chunk_cells + 7) // 8
        valid = np.unpackbits(
            np.frombuffer(body, np.uint8, nbitmap), bitorder="little"
        )[:chunk_cells]
        slots = np.frombuffer(
            body, np_dtype, chunk_cells * n_measures, nbitmap
        ).reshape(chunk_cells, n_measures)
        offsets = np.nonzero(valid)[0].astype(np.int32)
        return offsets, slots[offsets].copy()

    def encode(self, offsets, values, chunk_cells, dtype):
        offsets = np.ascontiguousarray(offsets, dtype=np.int32)
        values = np.ascontiguousarray(values, dtype=_np_dtype(dtype))
        _validate(offsets, values, chunk_cells)
        return bytes([self.tag]) + self._encode_body(
            offsets, values, chunk_cells, dtype
        )

    def decode(self, payload, chunk_cells, n_measures, dtype):
        return self._decode_body(payload[1:], chunk_cells, n_measures, dtype)


class LZWDenseCodec(DenseCodec):
    """The dense tile run through LZW (Paradise's generic compression)."""

    name = "lzw-dense"
    tag = _TAG_LZW_DENSE

    def encode(self, offsets, values, chunk_cells, dtype):
        offsets = np.ascontiguousarray(offsets, dtype=np.int32)
        values = np.ascontiguousarray(values, dtype=_np_dtype(dtype))
        _validate(offsets, values, chunk_cells)
        body = self._encode_body(offsets, values, chunk_cells, dtype)
        return bytes([self.tag]) + lzw_compress(body)

    def decode(self, payload, chunk_cells, n_measures, dtype):
        body = lzw_decompress(payload[1:])
        return self._decode_body(body, chunk_cells, n_measures, dtype)


class AdaptiveCodec(ChunkCodec):
    """Per-chunk choice: dense above ``dense_threshold`` density.

    §3.2 shows a dense array beats pairs when density exceeds
    ``p / (n + p)``-ish ratios; storing ``(offset, value)`` pairs costs
    ``4 + 8p`` bytes per valid cell while dense costs ``8p + 1/8``
    bytes per *logical* cell, so the break-even density is roughly
    ``8p / (4 + 8p)``.  The default threshold of ``2/3`` is the
    ``p = 1`` break-even.
    """

    name = "adaptive"
    tag = 0  # never written; delegates to a concrete codec

    def __init__(self, dense_threshold: float = 2 / 3):
        if not 0 < dense_threshold <= 1:
            raise CompressionError(
                f"dense_threshold must be in (0, 1], got {dense_threshold}"
            )
        self.dense_threshold = dense_threshold
        self._sparse = ChunkOffsetCodec()
        self._dense = DenseCodec()

    def encode(self, offsets, values, chunk_cells, dtype):
        density = len(offsets) / chunk_cells if chunk_cells else 0.0
        codec = self._dense if density >= self.dense_threshold else self._sparse
        return codec.encode(offsets, values, chunk_cells, dtype)

    def decode(self, payload, chunk_cells, n_measures, dtype):
        return decode_chunk(payload, chunk_cells, n_measures, dtype)


_BY_TAG: dict[int, ChunkCodec] = {
    codec.tag: codec
    for codec in (ChunkOffsetCodec(), DenseCodec(), LZWDenseCodec())
}
_BY_NAME: dict[str, ChunkCodec] = {
    c.name: c for c in (*_BY_TAG.values(), AdaptiveCodec())
}


def get_codec(name: str) -> ChunkCodec:
    """Codec by name (``chunk-offset``/``dense``/``lzw-dense``/``adaptive``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise CompressionError(
            f"unknown codec {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


def decode_chunk(
    payload: bytes, chunk_cells: int, n_measures: int, dtype: str
) -> tuple[np.ndarray, np.ndarray]:
    """Decode any tagged chunk payload regardless of which codec wrote it.

    Every malformed payload surfaces as :class:`CompressionError`, never
    as a bare struct/numpy exception.
    """
    if not payload:
        raise CompressionError("empty chunk payload")
    codec = _BY_TAG.get(payload[0])
    if codec is None:
        raise CompressionError(f"unknown codec tag {payload[0]}")
    try:
        offsets, values = codec.decode(payload, chunk_cells, n_measures, dtype)
    except CompressionError:
        raise
    except (ValueError, struct.error, IndexError) as exc:
        raise CompressionError(f"corrupt {codec.name} chunk: {exc}") from exc
    if len(offsets) != len(values):
        raise CompressionError("corrupt chunk: offset/value count mismatch")
    if len(offsets) and (
        offsets.min() < 0 or offsets.max() >= chunk_cells
    ):
        raise CompressionError("corrupt chunk: offset outside the chunk")
    return offsets, values
