"""§4.2: the OLAP Array consolidation algorithm with selection.

    For each join dimension table {
        Use the B-tree to retrieve the index list for the selected values;
        Merge those index lists to generate the final list;
    }
    Generate the cross-product of the final lists;
    For each cross-product element {
        calculate the chunk number and chunk offset;
        probe the chunk;
        if (cross-product element is valid)
            aggregate the array cell to the results;
    }

With the paper's three optimizations:

1. cross-product elements are generated **chunk by chunk in
   chunk-number order**, so chunks are visited in their physical disk
   order and a chunk containing no cross-product element is never read;
2. chunk payloads keep cells sorted by offset, so each probe is a
   **binary search**;
3. within a chunk, elements are generated in increasing offset order.

``order="naive"`` disables optimization 1/3 (the ablation ``abl5``):
elements stream in global index order and every element re-derives and
re-reads its chunk through the buffer pool.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.core.consolidate import (
    ConsolidationResult,
    ConsolidationSpec,
    ResultAccumulator,
)
from repro.core.olap_array import OLAPArray
from repro.errors import DimensionError, QueryError
from repro.obs.tracer import get_tracer
from repro.util.stats import Counters


@dataclass(frozen=True)
class Selection:
    """An equality / IN-list / range predicate on one dimension attribute.

    ``attr=None`` selects on the dimension *key* attribute itself (the
    index list then comes from the dimension's key B-tree instead of an
    attribute B-tree).  Exactly one of ``values`` (IN-list) or
    ``low``/``high`` (an inclusive BETWEEN, either bound open) must be
    given.
    """

    dim: int | str
    attr: str | None
    values: tuple | None = None
    low: object = None
    high: object = None

    def __post_init__(self):
        is_range = self.low is not None or self.high is not None
        if is_range and self.values is not None:
            raise QueryError("give either values or a range, not both")
        if not is_range and not self.values:
            raise QueryError(
                f"selection on {self.attr!r} needs at least one value"
            )

    @property
    def is_range(self) -> bool:
        """Whether this is a BETWEEN predicate."""
        return self.values is None


def _final_index_lists(
    array: OLAPArray, selections: list[Selection], counters: Counters
) -> list[list[int]]:
    """Per-dimension sorted "final lists" of selected array indices.

    Within one selection, values OR together; multiple selections on
    the same dimension AND together; unselected dimensions keep every
    index.
    """
    per_dim: list[set[int] | None] = [None] * array.geometry.ndim
    for selection in selections:
        d = array.dim_no(selection.dim)
        matched: set[int] = set()
        if selection.attr is None:
            if selection.is_range:
                matched.update(
                    array.dims[d].range_of(selection.low, selection.high)
                )
                counters.add("btree_probes")
            else:
                for value in selection.values:
                    try:
                        matched.add(array.dims[d].index_of(value))
                    except DimensionError:  # unknown key selects nothing
                        pass
                    counters.add("btree_probes")
        else:
            tree = array.attribute_index(d, selection.attr)
            if selection.is_range:
                matched.update(
                    v for _, v in tree.range_search(selection.low, selection.high)
                )
                counters.add("btree_probes")
            else:
                for value in selection.values:
                    matched.update(tree.search(value))
                    counters.add("btree_probes")
        per_dim[d] = matched if per_dim[d] is None else per_dim[d] & matched
    return [
        sorted(chosen) if chosen is not None else list(range(size))
        for chosen, size in zip(per_dim, array.geometry.shape)
    ]


def consolidate_with_selection(
    array: OLAPArray,
    specs: list[ConsolidationSpec],
    selections: list[Selection],
    aggregate: str | list[str] = "sum",
    mode: str = "interpreted",
    order: str = "chunk",
    counters: Counters | None = None,
) -> ConsolidationResult:
    """Run the §4.2 algorithm; returns sorted rows like :func:`consolidate`."""
    if mode not in ("interpreted", "vectorized"):
        raise QueryError(f"unknown mode {mode!r}")
    if order not in ("chunk", "naive"):
        raise QueryError(f"unknown order {order!r}")
    counters = counters if counters is not None else Counters()
    tracer = get_tracer()
    with tracer.span("resolve_mappings"):
        accumulator = ResultAccumulator(array, specs, aggregate)
    with tracer.span("btree_dimension_lookup", selections=len(selections)):
        final_lists = _final_index_lists(array, selections, counters)
    counters.add(
        "cross_product_size",
        float(np.prod([len(lst) for lst in final_lists])),
    )

    with tracer.span("probe_chunks", mode=mode, order=order):
        if order == "naive":
            _enumerate_naive(array, accumulator, final_lists, counters)
        elif mode == "interpreted":
            _enumerate_chunked_interpreted(
                array, accumulator, final_lists, counters
            )
        else:
            _enumerate_chunked_vectorized(
                array, accumulator, final_lists, counters
            )
        counters.merge(array.counters)
        array.counters.reset()
    counters.add("result_cells", accumulator.touched_cells())
    with tracer.span("extract_rows"):
        rows = accumulator.rows()
    return ConsolidationResult(rows=rows, counters=counters)


def _group_by_grid(
    final_lists: list[list[int]], chunk_shape: tuple[int, ...]
) -> list[dict[int, list[int]]]:
    """Split each dimension's final list by chunk-grid coordinate."""
    grouped: list[dict[int, list[int]]] = []
    for indices, cs in zip(final_lists, chunk_shape):
        by_grid: dict[int, list[int]] = {}
        for index in indices:  # indices are sorted, so the lists stay sorted
            by_grid.setdefault(index // cs, []).append(index)
        grouped.append(by_grid)
    return grouped


def _enumerate_chunked_interpreted(
    array: OLAPArray,
    accumulator: ResultAccumulator,
    final_lists: list[list[int]],
    counters: Counters,
) -> None:
    geometry = array.geometry
    ndim = geometry.ndim
    grouped = _group_by_grid(final_lists, geometry.chunk_shape)
    if any(not g for g in grouped):
        return
    grid_coords = [sorted(g) for g in grouped]
    maps = accumulator.mapping_lists()
    result_strides = accumulator.result_strides
    cell_strides = geometry.cell_strides
    chunk_shape = geometry.chunk_shape
    grid_strides = geometry.grid_strides

    def visit_chunk(chunk_grid: tuple[int, ...]) -> None:
        chunk_no = sum(g * s for g, s in zip(chunk_grid, grid_strides))
        offsets, values = array.read_chunk(chunk_no)
        if not len(offsets):
            counters.add("empty_chunks_skipped")
            return
        offset_list = offsets.tolist()
        value_rows = values.tolist()
        dim_indices = [grouped[d][chunk_grid[d]] for d in range(ndim)]
        # precompute each index's offset contribution and result contribution
        contribs = [
            [
                ((idx % chunk_shape[d]) * cell_strides[d],
                 maps[d][idx] * result_strides[d])
                for idx in dim_indices[d]
            ]
            for d in range(ndim)
        ]

        def recurse(axis: int, offset_base: int, result_base: int) -> None:
            if axis == ndim:
                counters.add("cells_probed")
                position = bisect_left(offset_list, offset_base)
                if (
                    position < len(offset_list)
                    and offset_list[position] == offset_base
                ):
                    accumulator.add_one(result_base, value_rows[position])
                return
            for off_c, res_c in contribs[axis]:
                recurse(axis + 1, offset_base + off_c, result_base + res_c)

        recurse(0, 0, 0)

    def walk_grid(axis: int, prefix: list[int]) -> None:
        if axis == ndim:
            visit_chunk(tuple(prefix))
            return
        for g in grid_coords[axis]:
            prefix.append(g)
            walk_grid(axis + 1, prefix)
            prefix.pop()

    walk_grid(0, [])


def _enumerate_chunked_vectorized(
    array: OLAPArray,
    accumulator: ResultAccumulator,
    final_lists: list[list[int]],
    counters: Counters,
) -> None:
    geometry = array.geometry
    ndim = geometry.ndim
    grouped = _group_by_grid(final_lists, geometry.chunk_shape)
    if any(not g for g in grouped):
        return
    grid_coords = [sorted(g) for g in grouped]
    maps = [i.mapping.astype(np.int64) for i in accumulator.i2is]
    result_strides = accumulator.result_strides
    cell_strides = geometry.cell_strides
    chunk_shape = geometry.chunk_shape
    grid_strides = geometry.grid_strides

    import itertools

    for chunk_grid in itertools.product(*grid_coords):
        chunk_no = sum(g * s for g, s in zip(chunk_grid, grid_strides))
        offsets, values = array.read_chunk(chunk_no)
        if not len(offsets):
            counters.add("empty_chunks_skipped")
            continue
        offset_parts = []
        result_parts = []
        for d in range(ndim):
            idx = np.array(grouped[d][chunk_grid[d]], dtype=np.int64)
            offset_parts.append((idx % chunk_shape[d]) * cell_strides[d])
            result_parts.append(maps[d][idx] * result_strides[d])
        candidate_offsets = _outer_sum(offset_parts)
        candidate_results = _outer_sum(result_parts)
        counters.add("cells_probed", candidate_offsets.size)
        positions = np.searchsorted(offsets, candidate_offsets)
        positions_clipped = np.minimum(positions, len(offsets) - 1)
        hits = offsets[positions_clipped] == candidate_offsets
        if hits.any():
            accumulator.add_many(
                candidate_results[hits], values[positions_clipped[hits]]
            )


def _outer_sum(parts: list[np.ndarray]) -> np.ndarray:
    """Flattened sum over the cross product of 1-D contribution arrays.

    Row-major flattening of sorted inputs yields ascending offsets —
    the paper's "increasing order of their chunk offsets".
    """
    total = parts[0]
    for part in parts[1:]:
        total = np.add.outer(total, part)
    return total.ravel()


def _enumerate_naive(
    array: OLAPArray,
    accumulator: ResultAccumulator,
    final_lists: list[list[int]],
    counters: Counters,
) -> None:
    """The un-optimized order: global index order, chunk recomputed per cell."""
    geometry = array.geometry
    ndim = geometry.ndim
    maps = accumulator.mapping_lists()
    result_strides = accumulator.result_strides

    import itertools

    for coords in itertools.product(*final_lists):
        counters.add("cells_probed")
        chunk_no, offset = geometry.locate(coords)
        offsets, values = array.read_chunk(chunk_no)
        position = int(np.searchsorted(offsets, offset))
        if position < len(offsets) and offsets[position] == offset:
            linear = sum(
                maps[d][coords[d]] * result_strides[d] for d in range(ndim)
            )
            accumulator.add_one(linear, values[position].tolist())
