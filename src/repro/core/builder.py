"""Bulk loader: dimension data + fact tuples → a persisted OLAP array.

The loader assigns array indices in dimension-table order, converts
fact tuples to ``(chunk, offset)`` pairs in one vectorized pass, sorts
by chunk then offset (giving §3.3's sorted chunk payloads and §4.2's
chunk-number disk order), encodes each chunk with the chosen codec and
writes the meta directory, dimension B-trees, attribute B-trees and
IndexToIndex arrays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.chunking import ChunkGeometry
from repro.core.compression import get_codec
from repro.core.dimension_index import DimensionIndex
from repro.core.index_to_index import IndexToIndex
from repro.core.meta import ChunkDirectory
from repro.core.olap_array import OLAPArray
from repro.errors import ArrayError, DimensionError
from repro.index.btree import BTree
from repro.storage.large_object import LargeObjectStore
from repro.storage.page_file import FileManager


@dataclass
class DimensionData:
    """One dimension's contents for the loader.

    ``keys`` defines the array-index order; ``attributes`` maps each
    hierarchy attribute name to its per-key values (aligned with
    ``keys``), coarsest last — e.g. ``{"h01": [...], "h02": [...]}``.
    """

    name: str
    keys: list
    attributes: dict[str, list] = field(default_factory=dict)

    def __post_init__(self):
        for attr, values in self.attributes.items():
            if len(values) != len(self.keys):
                raise DimensionError(
                    f"dimension {self.name!r}: attribute {attr!r} has "
                    f"{len(values)} values for {len(self.keys)} keys"
                )


def build_olap_array(
    fm: FileManager,
    name: str,
    dimensions: list[DimensionData],
    facts,
    chunk_shape: tuple[int, ...],
    codec: str = "chunk-offset",
    dtype: str = "int64",
    measure_names: list[str] | None = None,
) -> OLAPArray:
    """Build and persist an :class:`OLAPArray` from fact tuples.

    ``facts`` yields ``(key_0, ..., key_{n-1}, m_1, ..., m_p)`` tuples.
    The array shape is the per-dimension distinct key counts; two fact
    tuples addressing the same cell raise :class:`ArrayError`.
    """
    if not dimensions:
        raise DimensionError("an array needs at least one dimension")
    get_codec(codec)  # validate early

    shape = tuple(len(d.keys) for d in dimensions)
    geometry = ChunkGeometry(shape, chunk_shape)
    ndim = geometry.ndim

    # Stores first: the directory's pages are fully allocated up front so
    # the chunk objects that follow land contiguously in chunk order.
    chunk_store = LargeObjectStore(fm, f"{name}.chunks")
    aux = LargeObjectStore(fm, f"{name}.aux")
    directory = ChunkDirectory.create(fm, f"{name}.dir", geometry.n_chunks)

    dim_indexes = [
        DimensionIndex.build(fm, aux, f"{name}.dim{i}.key", d.keys)
        for i, d in enumerate(dimensions)
    ]
    key_maps = [d.index_map() for d in dim_indexes]

    # -- fact tuples → coords + measures -------------------------------------
    coords_rows: list[tuple[int, ...]] = []
    measure_rows: list[tuple] = []
    n_measures = None
    for row in facts:
        if n_measures is None:
            n_measures = len(row) - ndim
            if n_measures < 1:
                raise ArrayError(
                    f"fact tuples need {ndim} keys plus at least one measure"
                )
        try:
            coords_rows.append(
                tuple(key_maps[d][row[d]] for d in range(ndim))
            )
        except KeyError as exc:
            raise DimensionError(
                f"fact tuple references unknown dimension key {exc.args[0]!r}"
            ) from None
        measure_rows.append(row[ndim:])
    if n_measures is None:
        n_measures = 1
    if measure_names is None:
        measure_names = [f"m{i}" for i in range(n_measures)]
    if len(measure_names) != n_measures:
        raise ArrayError(
            f"{len(measure_names)} measure names for {n_measures} measures"
        )

    np_dtype = np.int64 if dtype == "int64" else np.float64
    codec_obj = get_codec(codec)
    if coords_rows:
        coords = np.array(coords_rows, dtype=np.int64)
        values = np.array(measure_rows, dtype=np_dtype).reshape(
            len(measure_rows), n_measures
        )
        chunk_nos, offsets = geometry.coords_to_chunk_offset(coords)
        order = np.lexsort((offsets, chunk_nos))
        chunk_nos, offsets, values = (
            chunk_nos[order],
            offsets[order],
            values[order],
        )
        same = (np.diff(chunk_nos) == 0) & (np.diff(offsets) == 0)
        if same.any():
            where = int(np.nonzero(same)[0][0])
            raise ArrayError(
                "duplicate fact tuples address one cell (chunk "
                f"{int(chunk_nos[where])}, offset {int(offsets[where])})"
            )
        boundaries = np.searchsorted(
            chunk_nos, np.arange(geometry.n_chunks + 1)
        )
        for chunk_no in range(geometry.n_chunks):
            start, stop = boundaries[chunk_no], boundaries[chunk_no + 1]
            if start == stop:
                continue
            payload = codec_obj.encode(
                offsets[start:stop].astype(np.int32),
                values[start:stop],
                geometry.chunk_cells,
                dtype,
            )
            oid = chunk_store.create(payload)
            directory.set_entry(chunk_no, oid, len(payload), int(stop - start))

    # -- attribute B-trees and IndexToIndex arrays ------------------------------
    meta_dims = []
    for i, (data, dim_index) in enumerate(zip(dimensions, dim_indexes)):
        attrs_meta = {}
        for attr, attr_values in data.attributes.items():
            tree = BTree.create(fm, f"{name}.dim{i}.{attr}.idx")
            for index, value in enumerate(attr_values):
                tree.insert(value, index)
            i2i = IndexToIndex.build(list(attr_values))
            attrs_meta[attr] = {"i2i_oid": aux.create(i2i.to_blob())}
        meta_dims.append(
            {"name": data.name, "rev_oid": dim_index.rev_oid, "attrs": attrs_meta}
        )

    meta = {
        "name": name,
        "shape": list(shape),
        "chunk_shape": list(geometry.chunk_shape),
        "dtype": dtype,
        "n_measures": n_measures,
        "measure_names": measure_names,
        "codec": codec,
        "dims": meta_dims,
    }
    directory.set_array_meta_oid(aux.create(json.dumps(meta).encode("utf-8")))
    return OLAPArray(fm, name, meta)
