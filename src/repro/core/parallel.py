"""Partitioned consolidation: the §6 parallelization hook.

The paper's future work: "we believe that the large OLAP data set sizes
require parallel computing and we would like to investigate
parallelization of OLAP data structures and key OLAP operations."  The
consolidation algorithm partitions naturally by chunk ranges — each
partition aggregates independently into its own in-memory result
object, and the partials merge exactly because every aggregate carries
a mergeable sketch (sum, count, min, max, (sum,count), (n,Σ,Σx²)).

This module runs the partitions sequentially (a single-process
reproduction) but the dataflow is exactly the parallel plan: the
correctness property that partitioned == direct is what matters, and
the tests pin it.
"""

from __future__ import annotations

from repro.core.consolidate import (
    ConsolidationResult,
    ConsolidationSpec,
    ResultAccumulator,
    scan_chunk_range,
)
from repro.core.olap_array import OLAPArray
from repro.errors import QueryError
from repro.obs.tracer import get_tracer
from repro.util.stats import Counters


def partition_chunks(n_chunks: int, n_partitions: int) -> list[range]:
    """Split ``range(n_chunks)`` into contiguous, near-equal ranges.

    Contiguity keeps each partition's disk reads sequential — the same
    layout argument §4.2 makes for the single-node scan.
    """
    if n_partitions <= 0:
        raise QueryError(f"n_partitions must be positive, got {n_partitions}")
    n_partitions = min(n_partitions, max(1, n_chunks))
    base, extra = divmod(n_chunks, n_partitions)
    ranges = []
    start = 0
    for p in range(n_partitions):
        size = base + (1 if p < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def consolidate_partitioned(
    array: OLAPArray,
    specs: list[ConsolidationSpec],
    n_partitions: int,
    aggregate: str | list[str] = "sum",
    mode: str = "interpreted",
    counters: Counters | None = None,
) -> ConsolidationResult:
    """§4.1 consolidation over chunk partitions, then an exact merge.

    Returns the same rows as :func:`~repro.core.consolidate.consolidate`
    for any partition count; counters additionally record
    ``partitions`` and per-partition cell totals.
    """
    if mode not in ("interpreted", "vectorized"):
        raise QueryError(f"unknown mode {mode!r}")
    counters = counters if counters is not None else Counters()

    tracer = get_tracer()
    merged = ResultAccumulator(array, specs, aggregate)
    ranges = partition_chunks(array.geometry.n_chunks, n_partitions)
    counters.add("partitions", len(ranges))
    partials: list[ResultAccumulator] = []
    for p, chunk_range in enumerate(ranges):
        with tracer.span(
            "partition_scan", partition=p, chunks=len(chunk_range)
        ):
            partial_counters = Counters()
            partial = ResultAccumulator(array, specs, aggregate)
            scanned = scan_chunk_range(array, partial, chunk_range, mode)
            partial_counters.add("cells_scanned", scanned)
            partial_counters.merge(array.counters)
            array.counters.reset()
            partials.append(partial)
            counters += partial_counters
    with tracer.span("partition_merge", partitions=len(partials)):
        for partial in partials:
            merged.merge_from(partial)
    counters.add("result_cells", merged.touched_cells())
    return ConsolidationResult(rows=merged.rows(), counters=counters)
