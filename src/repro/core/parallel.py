"""Partitioned consolidation: the §6 parallelization hook.

The paper's future work: "we believe that the large OLAP data set sizes
require parallel computing and we would like to investigate
parallelization of OLAP data structures and key OLAP operations."  The
consolidation algorithm partitions naturally by chunk ranges — each
partition aggregates independently into its own in-memory result
object, and the partials merge exactly because every aggregate carries
a mergeable sketch (sum, count, min, max, (sum,count), (n,Σ,Σx²)).

Two in-process executors: ``executor="local"`` runs the partitions
sequentially (the original single-process reproduction), while
``executor="thread"`` fans each partition
out to a worker thread and merges the partials on the caller's thread —
real concurrency over the same dataflow, so the partitioned == direct
oracle holds under actual parallel execution.  The executor names are
the same protocol :mod:`repro.shard` drives (``local`` / ``thread`` /
``process``); cross-process scatter needs the coordinator's volume
snapshot, so ``"process"`` lives there rather than here.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.consolidate import (
    ConsolidationResult,
    ConsolidationSpec,
    ResultAccumulator,
    scan_chunk_range,
)
from repro.core.olap_array import OLAPArray
from repro.errors import QueryError
from repro.obs.tracer import get_tracer
from repro.util.stats import Counters


def partition_chunks(n_chunks: int, n_partitions: int) -> list[range]:
    """Split ``range(n_chunks)`` into contiguous, near-equal ranges.

    Contiguity keeps each partition's disk reads sequential — the same
    layout argument §4.2 makes for the single-node scan.
    """
    if n_partitions <= 0:
        raise QueryError(f"n_partitions must be positive, got {n_partitions}")
    n_partitions = min(n_partitions, max(1, n_chunks))
    base, extra = divmod(n_chunks, n_partitions)
    ranges = []
    start = 0
    for p in range(n_partitions):
        size = base + (1 if p < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def consolidate_partitioned(
    array: OLAPArray,
    specs: list[ConsolidationSpec],
    n_partitions: int,
    aggregate: str | list[str] = "sum",
    mode: str = "interpreted",
    counters: Counters | None = None,
    executor: str = "local",
    max_workers: int | None = None,
) -> ConsolidationResult:
    """§4.1 consolidation over chunk partitions, then an exact merge.

    Returns the same rows as :func:`~repro.core.consolidate.consolidate`
    for any partition count; counters additionally record
    ``partitions`` and per-partition cell totals.  With
    ``executor="thread"`` each partition scans on its own worker thread
    (``max_workers`` defaults to the partition count); the partials
    still merge on the caller's thread through the same mergeable-sketch
    path, so rows are identical to the serial plan.
    """
    if mode not in ("interpreted", "vectorized"):
        raise QueryError(f"unknown mode {mode!r}")
    if executor not in ("local", "thread"):
        raise QueryError(
            f"unknown executor {executor!r}; expected 'local' or 'thread'"
        )
    counters = counters if counters is not None else Counters()

    tracer = get_tracer()
    merged = ResultAccumulator(array, specs, aggregate)
    ranges = partition_chunks(array.geometry.n_chunks, n_partitions)
    counters.add("partitions", len(ranges))
    if executor == "thread":
        partials = _scan_threaded(
            array, specs, aggregate, mode, ranges, counters, max_workers
        )
    else:
        partials = _scan_serial(
            array, specs, aggregate, mode, ranges, counters, tracer
        )
    with tracer.span("partition_merge", partitions=len(partials)):
        for partial in partials:
            merged.merge_from(partial)
    counters.add("result_cells", merged.touched_cells())
    return ConsolidationResult(rows=merged.rows(), counters=counters)


def _scan_serial(
    array, specs, aggregate, mode, ranges, counters, tracer
) -> list[ResultAccumulator]:
    partials: list[ResultAccumulator] = []
    for p, chunk_range in enumerate(ranges):
        with tracer.span(
            "partition_scan", partition=p, chunks=len(chunk_range)
        ):
            partial_counters = Counters()
            partial = ResultAccumulator(array, specs, aggregate)
            scanned = scan_chunk_range(array, partial, chunk_range, mode)
            partial_counters.add("cells_scanned", scanned)
            partial_counters.merge(array.counters)
            array.counters.reset()
            partials.append(partial)
            counters += partial_counters
    return partials


def _scan_threaded(
    array, specs, aggregate, mode, ranges, counters, max_workers
) -> list[ResultAccumulator]:
    """Fan the partition scans out to a thread pool.

    Everything lazily initialized is resolved on the caller's thread
    first: the chunk meta directory, the IndexToIndex mappings (inside
    each accumulator's construction), and — when no shared chunk cache
    is attached — a temporary :class:`~repro.serve.chunk_cache.
    ChunkCache` whose I/O lock serializes the buffer pool underneath
    the concurrent scans (the pool's pin/evict bookkeeping is
    single-threaded).
    """
    array._entries()
    partials = [ResultAccumulator(array, specs, aggregate) for _ in ranges]

    temporary_cache = None
    if array.chunk_cache is None:
        from repro.serve.chunk_cache import ChunkCache

        temporary_cache = ChunkCache(max_chunks=max(8, len(ranges)))
        array.chunk_cache = temporary_cache

    tracer = get_tracer()

    def scan(p: int) -> int:
        # worker threads get their own span stacks (new root trees)
        with tracer.span(
            "partition_scan", partition=p, chunks=len(ranges[p]), threaded=True
        ):
            return scan_chunk_range(array, partials[p], ranges[p], mode)

    try:
        workers = max_workers if max_workers is not None else len(ranges)
        with ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-partition"
        ) as pool:
            for scanned in pool.map(scan, range(len(ranges))):
                counters.add("cells_scanned", scanned)
    finally:
        if temporary_cache is not None:
            array.chunk_cache = None
            temporary_cache.clear()
    counters.merge(array.counters)
    array.counters.reset()
    return partials
