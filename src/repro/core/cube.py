"""The CUBE operator on the OLAP Array ADT.

The paper's companion work ([ZDN97], "An Array-Based Algorithm for
Simultaneous Multi-Dimensional Aggregates") computes *all* 2ⁿ group-bys
of a cube from the chunked array in a single pass.  This module brings
that operator to the ADT: one scan of the chunks, with each cell's
per-dimension result indices computed once and folded into every
subset's accumulator.

Compared with running 2ⁿ separate consolidations, the shared scan pays
for chunk I/O and decompression once — the ablation
``benchmarks/test_ablation_cube.py`` quantifies the saving.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.consolidate import ConsolidationSpec, ResultAccumulator
from repro.core.olap_array import OLAPArray
from repro.errors import QueryError
from repro.obs.tracer import get_tracer
from repro.util.stats import Counters


def _subset_key(array: OLAPArray, subset: tuple[int, ...]) -> tuple[str, ...]:
    return tuple(array.dim_names[d] for d in subset)


def compute_cube(
    array: OLAPArray,
    specs: list[ConsolidationSpec],
    aggregate: str | list[str] = "sum",
    subsets: list[tuple[str, ...]] | None = None,
    counters: Counters | None = None,
) -> dict[tuple[str, ...], list[tuple]]:
    """All 2ⁿ group-bys (or a chosen subset of them) in one chunk scan.

    ``specs`` gives each dimension's grouping level when it *is*
    grouped (``level(attr)`` or ``key()``; ``drop`` is disallowed —
    the cube drops dimensions per subset).  Returns a dict mapping each
    grouped-dimension-name tuple (in cube order; ``()`` is the grand
    total) to its sorted rows.
    """
    ndim = array.geometry.ndim
    if len(specs) != ndim:
        raise QueryError(f"need one spec per dimension ({ndim})")
    if any(spec.kind == "drop" for spec in specs):
        raise QueryError("cube specs must not contain drop(); every "
                         "dimension is dropped in some subset anyway")
    counters = counters if counters is not None else Counters()

    all_subsets = [
        subset
        for size in range(ndim + 1)
        for subset in combinations(range(ndim), size)
    ]
    if subsets is not None:
        wanted = {tuple(s) for s in subsets}
        known = {_subset_key(array, s) for s in all_subsets}
        unknown = wanted - known
        if unknown:
            raise QueryError(f"unknown cube subsets: {sorted(unknown)}")
        all_subsets = [
            s for s in all_subsets if _subset_key(array, s) in wanted
        ]

    tracer = get_tracer()
    with tracer.span("resolve_mappings", subsets=len(all_subsets)):
        accumulators: dict[tuple[int, ...], ResultAccumulator] = {}
        for subset in all_subsets:
            subset_specs = [
                specs[d] if d in subset else ConsolidationSpec.drop()
                for d in range(ndim)
            ]
            accumulators[subset] = ResultAccumulator(
                array, subset_specs, aggregate
            )

        # the full-group accumulator's maps serve every subset: a dropped
        # dimension just contributes stride 0
        reference = ResultAccumulator(array, specs, aggregate)
        maps = [i.mapping.astype(np.int64) for i in reference.i2is]
        subset_strides = {
            subset: np.array(
                [
                    acc.result_strides[d] if d in subset else 0
                    for d in range(ndim)
                ],
                dtype=np.int64,
            )
            for subset, acc in accumulators.items()
        }

    with tracer.span("cube_scan", chunks=array.geometry.n_chunks):
        scanned = 0
        for chunk_no, offsets, values in array.cells():
            coords = array.geometry.chunk_offset_to_coords(chunk_no, offsets)
            mapped = [maps[d][coords[:, d]] for d in range(ndim)]
            scanned += len(offsets)
            for subset, accumulator in accumulators.items():
                strides = subset_strides[subset]
                linear = np.zeros(len(offsets), dtype=np.int64)
                for d in subset:
                    linear += mapped[d] * strides[d]
                accumulator.add_many(linear, values)
        counters.add("cells_scanned", scanned)
        counters.add("group_bys_computed", len(accumulators))
        counters.merge(array.counters)
        array.counters.reset()

    with tracer.span("extract_rows"):
        return {
            _subset_key(array, subset): accumulator.rows()
            for subset, accumulator in accumulators.items()
        }
