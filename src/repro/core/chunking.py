"""Chunk (tile) geometry for n-dimensional arrays.

Paradise breaks an array into n-dimensional tiles so logically adjacent
cells stay close on disk (§3.1, following Sarawagi & Stonebraker).  A
:class:`ChunkGeometry` fixes an array shape and a chunk shape and
provides all the arithmetic the paper's algorithms need:

- chunk numbers are row-major over the grid of chunks;
- a cell's ``offsetInChunk`` is the row-major offset within its chunk,
  computed against the *nominal* chunk shape (§3.3's
  ``s = ((i*c)+j)*c)+k`` formula), so edge chunks simply leave some
  offsets unused;
- bulk (numpy) converters between global coordinates and
  ``(chunk_no, offset)`` pairs for the loader and vectorized kernels.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ChunkError


class ChunkGeometry:
    """Shape + chunk-shape arithmetic for a chunked array."""

    def __init__(self, shape: tuple[int, ...], chunk_shape: tuple[int, ...]):
        if not shape:
            raise ChunkError("array must have at least one dimension")
        if len(chunk_shape) != len(shape):
            raise ChunkError(
                f"chunk shape {chunk_shape} has {len(chunk_shape)} dims, "
                f"array has {len(shape)}"
            )
        if any(s <= 0 for s in shape) or any(c <= 0 for c in chunk_shape):
            raise ChunkError("shape and chunk shape must be positive")
        self.shape = tuple(int(s) for s in shape)
        self.chunk_shape = tuple(
            min(int(c), int(s)) for c, s in zip(chunk_shape, shape)
        )
        self.ndim = len(shape)
        self.grid = tuple(
            math.ceil(s / c) for s, c in zip(self.shape, self.chunk_shape)
        )
        self.n_chunks = math.prod(self.grid)
        self.chunk_cells = math.prod(self.chunk_shape)
        self.logical_cells = math.prod(self.shape)
        # row-major strides within a chunk and over the chunk grid
        self.cell_strides = _row_major_strides(self.chunk_shape)
        self.grid_strides = _row_major_strides(self.grid)

    # -- scalar conversions ------------------------------------------------

    def _check_coords(self, coords) -> None:
        if len(coords) != self.ndim:
            raise ChunkError(
                f"coordinate arity {len(coords)} != array rank {self.ndim}"
            )
        for axis, (c, s) in enumerate(zip(coords, self.shape)):
            if not 0 <= c < s:
                raise ChunkError(
                    f"coordinate {c} out of range [0, {s}) on axis {axis}"
                )

    def chunk_of(self, coords) -> int:
        """Chunk number containing a cell."""
        self._check_coords(coords)
        return sum(
            (c // cs) * gs
            for c, cs, gs in zip(coords, self.chunk_shape, self.grid_strides)
        )

    def offset_in_chunk(self, coords) -> int:
        """The §3.3 ``offsetInChunk`` of a cell."""
        self._check_coords(coords)
        return sum(
            (c % cs) * st
            for c, cs, st in zip(coords, self.chunk_shape, self.cell_strides)
        )

    def locate(self, coords) -> tuple[int, int]:
        """Both at once: ``(chunk_no, offset_in_chunk)``."""
        return self.chunk_of(coords), self.offset_in_chunk(coords)

    def chunk_coords(self, chunk_no: int) -> tuple[int, ...]:
        """Grid coordinates of a chunk."""
        if not 0 <= chunk_no < self.n_chunks:
            raise ChunkError(
                f"chunk {chunk_no} out of range [0, {self.n_chunks})"
            )
        out = []
        for g, gs in zip(self.grid, self.grid_strides):
            out.append((chunk_no // gs) % g)
        return tuple(out)

    def chunk_origin(self, chunk_no: int) -> tuple[int, ...]:
        """Global coordinates of a chunk's first cell."""
        return tuple(
            gc * cs for gc, cs in zip(self.chunk_coords(chunk_no), self.chunk_shape)
        )

    def chunk_extent(self, chunk_no: int) -> tuple[int, ...]:
        """Actual cell counts of a chunk (smaller at array edges)."""
        origin = self.chunk_origin(chunk_no)
        return tuple(
            min(cs, s - o)
            for cs, s, o in zip(self.chunk_shape, self.shape, origin)
        )

    def valid_cells_in_chunk(self, chunk_no: int) -> int:
        """Logical (addressable) cells of a chunk, honoring edges."""
        return math.prod(self.chunk_extent(chunk_no))

    def cell_of(self, chunk_no: int, offset: int) -> tuple[int, ...]:
        """Global coordinates of ``(chunk_no, offset_in_chunk)``."""
        if not 0 <= offset < self.chunk_cells:
            raise ChunkError(
                f"offset {offset} out of range [0, {self.chunk_cells})"
            )
        origin = self.chunk_origin(chunk_no)
        return tuple(
            o + (offset // st) % cs
            for o, st, cs in zip(origin, self.cell_strides, self.chunk_shape)
        )

    # -- bulk (numpy) conversions ---------------------------------------------

    def coords_to_chunk_offset(
        self, coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vector version of :meth:`locate` over an ``(n, ndim)`` array."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim != 2 or coords.shape[1] != self.ndim:
            raise ChunkError(
                f"expected an (n, {self.ndim}) coordinate array, got "
                f"{coords.shape}"
            )
        if coords.size and (
            coords.min() < 0 or (coords >= np.array(self.shape)).any()
        ):
            raise ChunkError("coordinates out of array bounds")
        chunk_shape = np.array(self.chunk_shape, dtype=np.int64)
        grid_coords, in_chunk = np.divmod(coords, chunk_shape)
        chunk_nos = grid_coords @ np.array(self.grid_strides, dtype=np.int64)
        offsets = in_chunk @ np.array(self.cell_strides, dtype=np.int64)
        return chunk_nos, offsets

    def chunk_offset_to_coords(
        self, chunk_no: int, offsets: np.ndarray
    ) -> np.ndarray:
        """Global coordinates ``(n, ndim)`` of offsets within one chunk."""
        offsets = np.asarray(offsets, dtype=np.int64)
        origin = np.array(self.chunk_origin(chunk_no), dtype=np.int64)
        strides = np.array(self.cell_strides, dtype=np.int64)
        chunk_shape = np.array(self.chunk_shape, dtype=np.int64)
        in_chunk = (offsets[:, None] // strides) % chunk_shape
        return in_chunk + origin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkGeometry):
            return NotImplemented
        return self.shape == other.shape and self.chunk_shape == other.chunk_shape

    def __repr__(self) -> str:
        return f"ChunkGeometry(shape={self.shape}, chunk_shape={self.chunk_shape})"


def _row_major_strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    strides = [1] * len(shape)
    for axis in range(len(shape) - 2, -1, -1):
        strides[axis] = strides[axis + 1] * shape[axis + 1]
    return tuple(strides)
