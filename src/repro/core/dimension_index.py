"""Per-dimension key ↔ array-index maps (§3.1).

Each dimension of the OLAP Array ADT carries a B-tree mapping the
dimension's key value (``pid``, ``sid``, ...) to its array index, plus
the reverse list (array index → key) used when materializing result
rows.  The forward map is a :class:`~repro.index.btree.BTree` on pages;
the reverse list is a serialized key list stored as one large object.
"""

from __future__ import annotations

import struct

from repro.errors import DimensionError
from repro.index.btree import BTree
from repro.storage.large_object import LargeObjectStore
from repro.storage.page_file import FileManager

_COUNT = struct.Struct("<I")
_INT_KEY = struct.Struct("<bq")
_STR_HEAD = struct.Struct("<bH")
_KIND_INT = 0
_KIND_STR = 1


def encode_keys(keys: list) -> bytes:
    """Serialize a list of int/str keys."""
    out = bytearray(_COUNT.pack(len(keys)))
    for key in keys:
        if isinstance(key, bool) or not isinstance(key, (int, str)):
            raise DimensionError(f"unsupported key type {type(key).__name__}")
        if isinstance(key, int):
            out += _INT_KEY.pack(_KIND_INT, key)
        else:
            raw = key.encode("utf-8")
            out += _STR_HEAD.pack(_KIND_STR, len(raw))
            out += raw
    return bytes(out)


def decode_keys(payload: bytes) -> list:
    """Inverse of :func:`encode_keys`."""
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    keys: list = []
    for _ in range(count):
        kind = payload[offset]
        if kind == _KIND_INT:
            _, key = _INT_KEY.unpack_from(payload, offset)
            offset += _INT_KEY.size
        elif kind == _KIND_STR:
            _, length = _STR_HEAD.unpack_from(payload, offset)
            offset += _STR_HEAD.size
            key = payload[offset : offset + length].decode("utf-8")
            offset += length
        else:
            raise DimensionError(f"corrupt key list (kind byte {kind})")
        keys.append(key)
    return keys


class DimensionIndex:
    """Key → array index (B-tree) and array index → key (stored list)."""

    def __init__(
        self,
        tree: BTree,
        aux: LargeObjectStore,
        rev_oid: int,
        keys: list | None = None,
    ):
        self._tree = tree
        self._aux = aux
        self.rev_oid = rev_oid
        self._keys = keys if keys is not None else decode_keys(aux.read(rev_oid))
        self._map = {key: i for i, key in enumerate(self._keys)}

    @classmethod
    def build(
        cls, fm: FileManager, aux: LargeObjectStore, name: str, keys: list
    ) -> "DimensionIndex":
        """Assign indices 0..n-1 to ``keys`` in order and persist both maps."""
        if len(set(keys)) != len(keys):
            raise DimensionError(f"dimension {name!r} has duplicate keys")
        tree = BTree.create(fm, name)
        for index, key in enumerate(keys):
            tree.insert(key, index)
        rev_oid = aux.create(encode_keys(keys))
        return cls(tree, aux, rev_oid, keys=list(keys))

    @classmethod
    def open(
        cls, fm: FileManager, aux: LargeObjectStore, name: str, rev_oid: int
    ) -> "DimensionIndex":
        """Re-open a previously built dimension index."""
        return cls(BTree.open(fm, name), aux, rev_oid)

    def __len__(self) -> int:
        return len(self._keys)

    def index_of(self, key) -> int:
        """Array index of a dimension key, via the B-tree (§4.1 phase 1)."""
        hits = self._tree.search(key)
        if not hits:
            raise DimensionError(f"unknown dimension key {key!r}")
        return hits[0]

    def index_map(self) -> dict:
        """The whole key → index mapping (for bulk loading)."""
        return dict(self._map)

    def range_of(self, low, high) -> list[int]:
        """Array indices of keys in the inclusive range (open bounds OK)."""
        return [index for _, index in self._tree.range_search(low, high)]

    def key_of(self, index: int):
        """Dimension key at an array index."""
        if not 0 <= index < len(self._keys):
            raise DimensionError(
                f"array index {index} out of range [0, {len(self._keys)})"
            )
        return self._keys[index]

    def keys(self) -> list:
        """All keys in array-index order."""
        return list(self._keys)

    def footprint_bytes(self) -> int:
        """On-disk bytes of the B-tree (the reverse list is in the aux store)."""
        return self._tree.size_bytes()
