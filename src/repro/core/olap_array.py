"""The OLAP Array ADT (§3).

An :class:`OLAPArray` bundles, all on storage pages:

- the chunked, compressed n-dimensional array (chunk payloads in a
  large-object store, one object per non-empty chunk);
- the §3.3 chunk meta directory (OID + length per chunk);
- one B-tree per dimension mapping dimension keys → array indices;
- B-trees on dimension *attributes* (attribute value → array-index
  lists), the "join index" structures §4.2 probes;
- §3.4 IndexToIndex arrays, one per hierarchy level, in an aux
  large-object store together with reverse key lists and the array's
  metadata blob.

ADT functions (the §3.5 function set): cell read/write, region
summation, slicing, and — in their own modules — consolidation and
consolidation with selection.
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.core.chunking import ChunkGeometry
from repro.core.compression import decode_chunk, get_codec
from repro.core.dimension_index import DimensionIndex
from repro.core.index_to_index import IndexToIndex
from repro.core.meta import NO_CHUNK, ChunkDirectory
from repro.errors import ArrayError, DimensionError
from repro.index.btree import BTree
from repro.obs.tracer import get_tracer
from repro.storage.large_object import LargeObjectStore
from repro.storage.page_file import FileManager
from repro.util.stats import Counters

_EMPTY_OFFSETS = np.empty(0, dtype=np.int32)


class OLAPArray:
    """A chunked, compressed multi-dimensional array with OLAP indices."""

    def __init__(self, fm: FileManager, name: str, meta: dict):
        self.fm = fm
        self.name = name
        self.geometry = ChunkGeometry(
            tuple(meta["shape"]), tuple(meta["chunk_shape"])
        )
        self.dtype = meta["dtype"]
        self.n_measures = meta["n_measures"]
        self.measure_names = list(meta["measure_names"])
        self.codec_name = meta["codec"]
        self.dim_names = [d["name"] for d in meta["dims"]]
        self._meta = meta
        self.chunks = LargeObjectStore(fm, f"{name}.chunks")
        self.aux = LargeObjectStore(fm, f"{name}.aux")
        self.directory = ChunkDirectory.open(fm, f"{name}.dir")
        self.counters = Counters()
        self.dims = [
            DimensionIndex.open(
                fm, self.aux, f"{name}.dim{i}.key", d["rev_oid"]
            )
            for i, d in enumerate(meta["dims"])
        ]
        self._np_dtype = np.int64 if self.dtype == "int64" else np.float64
        self._i2i_cache: dict[tuple[int, str], IndexToIndex] = {}
        self._attr_tree_cache: dict[tuple[int, str], BTree] = {}
        self._dir_cache: list[tuple[int, int, int]] | None = None
        #: optional shared decoded-chunk cache (see
        #: :class:`repro.serve.chunk_cache.ChunkCache`); when attached,
        #: :meth:`read_chunk` serves repeated reads from it and
        #: concurrent readers become safe (the cache serializes the
        #: underlying page I/O)
        self.chunk_cache = None
        #: optional shared :class:`repro.obs.heatmap.ChunkHeatmap`; the
        #: engine points this at its database's tracker when it
        #: registers the array, after which every chunk access (and
        #: separately every uncached disk read) is counted per chunk
        self.heatmap = None

    def _entries(self) -> list[tuple[int, int, int]]:
        """Chunk meta entries, loaded once sequentially and cached."""
        if self._dir_cache is None:
            with get_tracer().span("chunk_directory_load", array=self.name):
                self._dir_cache = self.directory.load_all()
            self.counters.add("dir_loads")
        return self._dir_cache

    def invalidate_caches(self) -> None:
        """Forget in-memory copies of on-disk metadata.

        Called at cold-cache query boundaries so each measured query
        pays for (one sequential) re-read of the chunk meta directory
        and the IndexToIndex arrays, as the paper's runs did.  An
        attached chunk cache drops this array's decoded chunks for the
        same reason.
        """
        self._dir_cache = None
        self._i2i_cache.clear()
        if self.chunk_cache is not None:
            self.chunk_cache.invalidate_array(self.name)

    # -- opening ----------------------------------------------------------------

    @classmethod
    def open(cls, fm: FileManager, name: str) -> "OLAPArray":
        """Open a previously built array by name."""
        directory = ChunkDirectory.open(fm, f"{name}.dir")
        aux = LargeObjectStore(fm, f"{name}.aux")
        oid = directory.array_meta_oid
        if oid == NO_CHUNK:
            raise ArrayError(f"array {name!r} has no metadata blob")
        meta = json.loads(aux.read(oid).decode("utf-8"))
        return cls(fm, name, meta)

    # -- dimension helpers ------------------------------------------------------------

    def dim_no(self, dim: int | str) -> int:
        """Dimension position from a name or a position."""
        if isinstance(dim, int):
            if not 0 <= dim < self.geometry.ndim:
                raise DimensionError(
                    f"dimension {dim} out of range [0, {self.geometry.ndim})"
                )
            return dim
        try:
            return self.dim_names.index(dim)
        except ValueError:
            raise DimensionError(
                f"no dimension named {dim!r}; have {self.dim_names}"
            ) from None

    def hierarchy_attrs(self, dim: int | str) -> list[str]:
        """The hierarchy attribute names of one dimension, in order."""
        return list(self._meta["dims"][self.dim_no(dim)]["attrs"])

    def attribute_index(self, dim: int | str, attr: str) -> BTree:
        """B-tree: attribute value → array-index list (§4.2's join index)."""
        d = self.dim_no(dim)
        cached = self._attr_tree_cache.get((d, attr))
        if cached is None:
            if attr not in self._meta["dims"][d]["attrs"]:
                raise DimensionError(
                    f"dimension {self.dim_names[d]!r} has no attribute "
                    f"{attr!r}; have {self.hierarchy_attrs(d)}"
                )
            cached = BTree.open(self.fm, f"{self.name}.dim{d}.{attr}.idx")
            self._attr_tree_cache[(d, attr)] = cached
        return cached

    def index_to_index(self, dim: int | str, attr: str) -> IndexToIndex:
        """The §3.4 IndexToIndex array for one hierarchy level."""
        d = self.dim_no(dim)
        cached = self._i2i_cache.get((d, attr))
        if cached is None:
            info = self._meta["dims"][d]["attrs"].get(attr)
            if info is None:
                raise DimensionError(
                    f"dimension {self.dim_names[d]!r} has no attribute "
                    f"{attr!r}; have {self.hierarchy_attrs(d)}"
                )
            with get_tracer().span(
                "i2i_load", dim=self.dim_names[d], attr=attr
            ):
                cached = IndexToIndex.from_blob(self.aux.read(info["i2i_oid"]))
            self.counters.add("i2i_loads")
            self._i2i_cache[(d, attr)] = cached
        return cached

    # -- chunk access -------------------------------------------------------------------

    def read_chunk(self, chunk_no: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode one chunk: ``(sorted offsets, (count, p) values)``.

        Empty chunks return empty arrays without touching the disk
        (the §4.2 skip optimization relies on this).  With a
        :attr:`chunk_cache` attached, repeated reads of the same chunk
        return the shared decoded copy — callers must treat the returned
        arrays as read-only (every in-tree consumer does).
        """
        if self.heatmap is not None:
            self.heatmap.record(self.name, chunk_no)
        cache = self.chunk_cache
        if cache is not None:
            return cache.get_chunk(self, chunk_no)
        return self._read_chunk_direct(chunk_no)

    def _read_chunk_direct(self, chunk_no: int) -> tuple[np.ndarray, np.ndarray]:
        """The uncached read path (large-object fetch + decode)."""
        oid, _, count = self._entries()[chunk_no]
        if oid == NO_CHUNK or count == 0:
            return _EMPTY_OFFSETS, np.empty(
                (0, self.n_measures), dtype=self._np_dtype
            )
        self.counters.add("chunks_read")
        if self.heatmap is not None:
            self.heatmap.record(self.name, chunk_no, disk=True)
        payload = self.chunks.read(oid)
        self.counters.add("chunk_bytes_read", len(payload))
        return decode_chunk(
            payload, self.geometry.chunk_cells, self.n_measures, self.dtype
        )

    def cells(self):
        """Yield ``(chunk_no, offsets, values)`` for every non-empty chunk,
        in chunk-number (physical) order."""
        for chunk_no in range(self.geometry.n_chunks):
            offsets, values = self.read_chunk(chunk_no)
            if len(offsets):
                yield chunk_no, offsets, values

    # -- the §3.5 Read/Write function --------------------------------------------------------

    def _coords_of(self, keys: tuple) -> tuple[int, ...]:
        if len(keys) != self.geometry.ndim:
            raise DimensionError(
                f"expected {self.geometry.ndim} dimension keys, got {len(keys)}"
            )
        return tuple(
            dim.index_of(key) for dim, key in zip(self.dims, keys)
        )

    def get_cell(self, keys: tuple) -> np.ndarray | None:
        """Measure values at the cell addressed by dimension keys.

        Returns a length-``p`` array, or ``None`` for an invalid cell.
        Lookup is a B-tree probe per dimension plus a binary search of
        the chunk's sorted offsets.
        """
        chunk_no, offset = self.geometry.locate(self._coords_of(keys))
        offsets, values = self.read_chunk(chunk_no)
        position = int(np.searchsorted(offsets, offset))
        if position < len(offsets) and offsets[position] == offset:
            return values[position].copy()
        return None

    def write_cell(self, keys: tuple, measures) -> None:
        """Insert or overwrite one cell.

        The chunk is re-encoded into a *new* large object (large objects
        are immutable page runs); the directory is repointed and the old
        object's space is reclaimed only by a rebuild — the standard
        copy-on-write trade-off for tile stores.
        """
        measures = np.asarray(measures, dtype=self._np_dtype).reshape(-1)
        if measures.size != self.n_measures:
            raise ArrayError(
                f"expected {self.n_measures} measures, got {measures.size}"
            )
        chunk_no, offset = self.geometry.locate(self._coords_of(keys))
        offsets, values = self.read_chunk(chunk_no)
        position = int(np.searchsorted(offsets, offset))
        if position < len(offsets) and offsets[position] == offset:
            values = values.copy()
            values[position] = measures
        else:
            offsets = np.insert(offsets, position, offset)
            values = (
                np.insert(values, position, measures, axis=0)
                if values.size
                else measures.reshape(1, -1)
            )
        payload = get_codec(self.codec_name).encode(
            offsets, values, self.geometry.chunk_cells, self.dtype
        )
        oid = self.chunks.create(payload)
        self.directory.set_entry(chunk_no, oid, len(payload), len(offsets))
        if self._dir_cache is not None:
            self._dir_cache[chunk_no] = (oid, len(payload), len(offsets))
        if self.chunk_cache is not None:
            self.chunk_cache.invalidate_chunk(self.name, chunk_no)

    # -- the §3.5 summation and slicing functions ----------------------------------------------

    def _normalize_ranges(self, ranges) -> list[tuple[int, int]]:
        if len(ranges) != self.geometry.ndim:
            raise DimensionError(
                f"expected {self.geometry.ndim} ranges, got {len(ranges)}"
            )
        normalized = []
        for axis, (bounds, size) in enumerate(zip(ranges, self.geometry.shape)):
            low, high = (0, size - 1) if bounds is None else bounds
            if not 0 <= low <= high < size:
                raise DimensionError(
                    f"range ({low}, {high}) invalid on axis {axis} of size {size}"
                )
            normalized.append((low, high))
        return normalized

    def sum_region(self, ranges) -> np.ndarray:
        """Per-measure sums over an index-range box.

        ``ranges`` holds one ``(low, high)`` inclusive index pair per
        dimension (``None`` = the whole dimension).  Chunks outside the
        box are never read.
        """
        box = self._normalize_ranges(ranges)
        totals = np.zeros(self.n_measures, dtype=self._np_dtype)
        lows = np.array([b[0] for b in box])
        highs = np.array([b[1] for b in box])
        for chunk_no in self._chunks_overlapping(box):
            offsets, values = self.read_chunk(chunk_no)
            if not len(offsets):
                continue
            coords = self.geometry.chunk_offset_to_coords(chunk_no, offsets)
            inside = ((coords >= lows) & (coords <= highs)).all(axis=1)
            totals += values[inside].sum(axis=0, dtype=self._np_dtype)
        return totals

    def _chunks_overlapping(self, box):
        grid_ranges = []
        for (low, high), cs in zip(box, self.geometry.chunk_shape):
            grid_ranges.append(range(low // cs, high // cs + 1))
        strides = self.geometry.grid_strides

        def emit(axis, base):
            if axis == len(grid_ranges):
                yield base
                return
            for g in grid_ranges[axis]:
                yield from emit(axis + 1, base + g * strides[axis])

        yield from emit(0, 0)

    def slice_dim(self, dim: int | str, key) -> list[tuple[tuple, np.ndarray]]:
        """All valid cells with one dimension fixed at ``key``.

        Returns ``[(dimension keys..., measure row)]`` sorted by cell
        coordinates — the §3.5 slicing function.
        """
        d = self.dim_no(dim)
        index = self.dims[d].index_of(key)
        box = [
            (index, index) if axis == d else None
            for axis in range(self.geometry.ndim)
        ]
        box = self._normalize_ranges(box)
        out = []
        for chunk_no in self._chunks_overlapping(box):
            offsets, values = self.read_chunk(chunk_no)
            if not len(offsets):
                continue
            coords = self.geometry.chunk_offset_to_coords(chunk_no, offsets)
            inside = coords[:, d] == index
            for row, measure in zip(coords[inside], values[inside]):
                keys = tuple(
                    self.dims[axis].key_of(int(c)) for axis, c in enumerate(row)
                )
                out.append((keys, measure.copy()))
        out.sort(key=lambda item: item[0])
        return out

    # -- statistical ADT functions (§3.5's promised analytics) ------------------------------------

    def _region_values(self, ranges) -> np.ndarray:
        """All measure rows of valid cells inside a region box."""
        box = self._normalize_ranges(ranges)
        lows = np.array([b[0] for b in box])
        highs = np.array([b[1] for b in box])
        parts = []
        for chunk_no in self._chunks_overlapping(box):
            offsets, values = self.read_chunk(chunk_no)
            if not len(offsets):
                continue
            coords = self.geometry.chunk_offset_to_coords(chunk_no, offsets)
            inside = ((coords >= lows) & (coords <= highs)).all(axis=1)
            if inside.any():
                parts.append(values[inside])
        if not parts:
            return np.empty((0, self.n_measures), dtype=self._np_dtype)
        return np.concatenate(parts, axis=0)

    def measure_stats(self, ranges=None) -> dict[str, dict[str, float]]:
        """Per-measure count/sum/mean/variance over a region.

        ``ranges`` is as in :meth:`sum_region` (``None`` = whole array).
        The "expected value" style statistics §2.1 mentions, computed
        inside the ADT.
        """
        if ranges is None:
            ranges = [None] * self.geometry.ndim
        values = self._region_values(ranges).astype(np.float64)
        out: dict[str, dict[str, float]] = {}
        for m, name in enumerate(self.measure_names):
            column = values[:, m]
            count = int(column.size)
            stats = {"count": count}
            if count:
                stats["sum"] = float(column.sum())
                stats["mean"] = float(column.mean())
                stats["var"] = float(column.var())
            out[name] = stats
        return out

    def correlation(self, measure_a: str, measure_b: str, ranges=None) -> float | None:
        """Pearson correlation of two measures over a region's valid cells.

        §3.5: "The Paradise ADT model will eventually allow us to
        implement complex OLAP analytical functions such as correlation
        and variance inside the DBMS server."  Here it is.  Returns
        ``None`` when fewer than two cells qualify or a measure is
        constant.
        """
        try:
            a = self.measure_names.index(measure_a)
            b = self.measure_names.index(measure_b)
        except ValueError as exc:
            raise ArrayError(
                f"unknown measure {exc.args[0] if exc.args else ''!r}; have "
                f"{self.measure_names}"
            ) from None
        if ranges is None:
            ranges = [None] * self.geometry.ndim
        values = self._region_values(ranges).astype(np.float64)
        if values.shape[0] < 2:
            return None
        x, y = values[:, a], values[:, b]
        sx, sy = x.std(), y.std()
        if sx == 0.0 or sy == 0.0:
            return None
        return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * sy))

    # -- statistics ---------------------------------------------------------------------------------

    @property
    def n_valid(self) -> int:
        """Number of valid (stored) cells."""
        return sum(entry[2] for entry in self._entries())

    @property
    def density(self) -> float:
        """Fraction of logical cells that are valid."""
        return self.n_valid / self.geometry.logical_cells

    def storage_bytes(self, include_indices: bool = True) -> int:
        """On-disk footprint of the array.

        Counts page-rounded live chunk payloads plus the chunk
        directory; with ``include_indices`` also the per-dimension key
        B-trees, attribute B-trees and the aux store (IndexToIndex
        arrays, reverse key lists, metadata).
        """
        page = self.fm.pool.disk.page_size
        chunk_bytes = 0
        for oid, length, _ in self._entries():
            if oid != NO_CHUNK:
                chunk_bytes += page * max(1, math.ceil(length / page))
        total = chunk_bytes + self.directory.size_bytes()
        if include_indices:
            total += sum(dim.footprint_bytes() for dim in self.dims)
            for d, info in enumerate(self._meta["dims"]):
                for attr in info["attrs"]:
                    total += self.attribute_index(d, attr).size_bytes()
            total += self.aux.footprint_bytes()
        return total

    def __repr__(self) -> str:
        return (
            f"OLAPArray(name={self.name!r}, shape={self.geometry.shape}, "
            f"chunks={self.geometry.n_chunks}, valid={self.n_valid})"
        )
