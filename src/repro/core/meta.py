"""§3.3 chunk meta directory: OID + length (+ valid-cell count) per chunk.

"Since in this representation chunks will be of variable length, we use
some meta data to hold the OID and the length of each chunk and store
the meta data at the beginning of the data file."  Here the directory
is a page file of fixed entries indexed by chunk number; its header
also stores the OID of the array's metadata blob.

Chunks with no valid cells have no stored object (OID −1) so the scan
can skip them without any I/O.
"""

from __future__ import annotations

import struct

from repro.errors import ChunkError
from repro.storage.page_file import FileManager, PageFile

_ENTRY = struct.Struct("<qqq")  # oid, length, valid-cell count
_META = struct.Struct("<qq")  # n_chunks, array-meta oid

NO_CHUNK = -1


class ChunkDirectory:
    """Fixed-entry chunk_no → (oid, length, count) table on pages."""

    def __init__(self, pfile: PageFile):
        self._file = pfile
        self._per_page = pfile.pool.disk.page_size // _ENTRY.size
        meta = pfile.get_meta()
        if meta:
            self.n_chunks, self._array_meta_oid = _META.unpack_from(meta, 0)
        else:
            raise ChunkError("chunk directory header missing; use create()")

    @classmethod
    def create(cls, fm: FileManager, name: str, n_chunks: int) -> "ChunkDirectory":
        """Allocate a directory with every chunk marked empty."""
        if n_chunks <= 0:
            raise ChunkError(f"n_chunks must be positive, got {n_chunks}")
        pfile = fm.create(name)
        pfile.set_meta(_META.pack(n_chunks, NO_CHUNK))
        directory = cls(pfile)
        pfile.ensure_pages(-(-n_chunks // directory._per_page))
        for chunk_no in range(n_chunks):
            directory.set_entry(chunk_no, NO_CHUNK, 0, 0)
        return directory

    @classmethod
    def open(cls, fm: FileManager, name: str) -> "ChunkDirectory":
        """Open an existing directory."""
        return cls(fm.open(name))

    def _locate(self, chunk_no: int) -> tuple[int, int]:
        if not 0 <= chunk_no < self.n_chunks:
            raise ChunkError(
                f"chunk {chunk_no} out of range [0, {self.n_chunks})"
            )
        page_no, index = divmod(chunk_no, self._per_page)
        return page_no, index * _ENTRY.size

    def set_entry(self, chunk_no: int, oid: int, length: int, count: int) -> None:
        """Record a chunk's object id, byte length and valid-cell count."""
        page_no, offset = self._locate(chunk_no)
        buf = self._file.read(page_no)
        _ENTRY.pack_into(buf, offset, oid, length, count)
        self._file.mark_dirty(page_no)

    def entry(self, chunk_no: int) -> tuple[int, int, int]:
        """``(oid, length, count)``; OID is ``NO_CHUNK`` for empty chunks."""
        page_no, offset = self._locate(chunk_no)
        return _ENTRY.unpack_from(self._file.read(page_no), offset)

    def load_all(self) -> list[tuple[int, int, int]]:
        """Read the whole directory in one sequential pass.

        This is how the paper uses the meta data: it sits "at the
        beginning of the data file" and is loaded once per query, not
        probed page-by-page during the chunk scan.
        """
        entries: list[tuple[int, int, int]] = []
        remaining = self.n_chunks
        for page_no in range(self._file.npages):
            buf = self._file.read(page_no)
            take = min(remaining, self._per_page)
            for i in range(take):
                entries.append(_ENTRY.unpack_from(buf, i * _ENTRY.size))
            remaining -= take
            if remaining <= 0:
                break
        return entries

    def total_valid(self) -> int:
        """Sum of valid-cell counts across all chunks."""
        return sum(self.entry(c)[2] for c in range(self.n_chunks))

    def total_payload_bytes(self) -> int:
        """Sum of stored chunk lengths."""
        return sum(self.entry(c)[1] for c in range(self.n_chunks))

    # -- array metadata pointer ----------------------------------------------

    @property
    def array_meta_oid(self) -> int:
        """OID of the array's metadata blob in the aux store."""
        return self._array_meta_oid

    def set_array_meta_oid(self, oid: int) -> None:
        """Point the directory at the array's metadata blob."""
        self._array_meta_oid = oid
        self._file.set_meta(_META.pack(self.n_chunks, oid))

    def size_bytes(self) -> int:
        """On-disk footprint of the directory."""
        return self._file.size_bytes()
