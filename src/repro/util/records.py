"""Fixed-length binary record codecs.

The fact file (§4.4) depends on every record having the same byte
length, so tuple number → (extent, page, offset) is pure arithmetic.
:class:`RecordCodec` packs a heterogeneous tuple of ints / floats /
fixed-width strings into exactly ``record_size`` bytes using
:mod:`struct`, and unpacks whole pages at a time for scans.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator, Sequence

from repro.errors import SchemaError

_FORMATS = {
    "int32": "i",
    "int64": "q",
    "float64": "d",
}


class RecordCodec:
    """Pack/unpack fixed-length records described by a list of type names.

    Supported field types: ``int32``, ``int64``, ``float64`` and
    ``str:N`` (UTF-8, zero-padded to N bytes; values longer than N are
    rejected, not truncated).
    """

    def __init__(self, field_types: Sequence[str]):
        if not field_types:
            raise SchemaError("a record needs at least one field")
        self.field_types = tuple(field_types)
        fmt = "<"
        self._string_widths: list[int | None] = []
        for ftype in field_types:
            if ftype in _FORMATS:
                fmt += _FORMATS[ftype]
                self._string_widths.append(None)
            elif ftype.startswith("str:"):
                width = int(ftype.split(":", 1)[1])
                if width <= 0:
                    raise SchemaError(f"string width must be positive: {ftype}")
                fmt += f"{width}s"
                self._string_widths.append(width)
            else:
                raise SchemaError(f"unknown field type {ftype!r}")
        self._struct = struct.Struct(fmt)

    @property
    def record_size(self) -> int:
        """Encoded size of one record in bytes."""
        return self._struct.size

    def _encode_fields(self, values: Sequence) -> list:
        if len(values) != len(self.field_types):
            raise SchemaError(
                f"record has {len(values)} values, codec expects "
                f"{len(self.field_types)}"
            )
        encoded = []
        for value, width in zip(values, self._string_widths):
            if width is None:
                encoded.append(value)
            else:
                raw = value.encode("utf-8")
                if len(raw) > width:
                    raise SchemaError(
                        f"string {value!r} exceeds fixed width {width}"
                    )
                encoded.append(raw)
        return encoded

    def _decode_fields(self, raw: tuple) -> tuple:
        values = []
        for value, width in zip(raw, self._string_widths):
            if width is None:
                values.append(value)
            else:
                values.append(value.rstrip(b"\x00").decode("utf-8"))
        return tuple(values)

    def pack(self, values: Sequence) -> bytes:
        """Encode one record to exactly :attr:`record_size` bytes."""
        return self._struct.pack(*self._encode_fields(values))

    def pack_into(self, buffer, offset: int, values: Sequence) -> None:
        """Encode one record into ``buffer`` at ``offset``."""
        self._struct.pack_into(buffer, offset, *self._encode_fields(values))

    def unpack(self, payload: bytes) -> tuple:
        """Decode one record."""
        return self._decode_fields(self._struct.unpack(payload))

    def unpack_from(self, buffer, offset: int = 0) -> tuple:
        """Decode one record from ``buffer`` at ``offset``."""
        return self._decode_fields(self._struct.unpack_from(buffer, offset))

    def iter_unpack(self, buffer, count: int, offset: int = 0) -> Iterator[tuple]:
        """Decode ``count`` consecutive records starting at ``offset``.

        This is the page-scan fast path: one :func:`struct.iter_unpack`
        over a memoryview slice instead of ``count`` separate calls.
        """
        size = self._struct.size
        view = memoryview(buffer)[offset : offset + count * size]
        for raw in self._struct.iter_unpack(view):
            yield self._decode_fields(raw)
