"""Packed fixed-length bitsets backed by numpy.

A :class:`Bitset` holds ``length`` bits packed into a ``uint64`` word
array.  It is the payload type of the bitmap join indices (§4.4/§4.5 of
the paper): one bitset per (attribute, value) pair, one bit per fact
table tuple position.

The hot operations are bitwise AND/OR across whole bitsets and the
enumeration of set positions; both run over the word array in bulk.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import BitmapError

_WORD_BITS = 64


def _n_words(length: int) -> int:
    return (length + _WORD_BITS - 1) // _WORD_BITS


class Bitset:
    """A fixed-length sequence of bits with bulk boolean operations."""

    __slots__ = ("_length", "_words")

    def __init__(self, length: int, words: np.ndarray | None = None):
        if length < 0:
            raise BitmapError(f"bitset length must be >= 0, got {length}")
        self._length = length
        if words is None:
            self._words = np.zeros(_n_words(length), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (_n_words(length),):
                raise BitmapError("backing words array has wrong dtype/shape")
            self._words = words

    # -- construction ---------------------------------------------------

    @classmethod
    def from_indices(cls, length: int, indices: Iterable[int]) -> "Bitset":
        """Build a bitset of ``length`` bits with the given positions set."""
        bits = cls(length)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size:
            if idx.min() < 0 or idx.max() >= length:
                raise BitmapError("bit index out of range")
            words, offsets = np.divmod(idx, _WORD_BITS)
            np.bitwise_or.at(
                bits._words, words, np.uint64(1) << offsets.astype(np.uint64)
            )
        return bits

    @classmethod
    def ones(cls, length: int) -> "Bitset":
        """A bitset with every bit set."""
        bits = cls(length)
        bits._words[:] = np.uint64(0xFFFFFFFFFFFFFFFF)
        bits._mask_tail()
        return bits

    @classmethod
    def from_bytes(cls, length: int, payload: bytes) -> "Bitset":
        """Deserialize a bitset previously produced by :meth:`to_bytes`."""
        expected = _n_words(length) * 8
        if len(payload) != expected:
            raise BitmapError(
                f"bitset payload is {len(payload)} bytes, expected {expected}"
            )
        words = np.frombuffer(payload, dtype=np.uint64).copy()
        return cls(length, words)

    # -- scalar access --------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def _check(self, position: int) -> None:
        if not 0 <= position < self._length:
            raise BitmapError(
                f"bit position {position} out of range [0, {self._length})"
            )

    def set(self, position: int) -> None:
        """Set one bit."""
        self._check(position)
        self._words[position // _WORD_BITS] |= np.uint64(1) << np.uint64(
            position % _WORD_BITS
        )

    def clear(self, position: int) -> None:
        """Clear one bit."""
        self._check(position)
        self._words[position // _WORD_BITS] &= ~(
            np.uint64(1) << np.uint64(position % _WORD_BITS)
        )

    def get(self, position: int) -> bool:
        """Return whether one bit is set."""
        self._check(position)
        word = self._words[position // _WORD_BITS]
        return bool((word >> np.uint64(position % _WORD_BITS)) & np.uint64(1))

    __getitem__ = get

    # -- bulk boolean algebra --------------------------------------------

    def _require_same_length(self, other: "Bitset") -> None:
        if self._length != other._length:
            raise BitmapError(
                f"bitset length mismatch: {self._length} vs {other._length}"
            )

    def __and__(self, other: "Bitset") -> "Bitset":
        self._require_same_length(other)
        return Bitset(self._length, self._words & other._words)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._require_same_length(other)
        return Bitset(self._length, self._words | other._words)

    def __xor__(self, other: "Bitset") -> "Bitset":
        self._require_same_length(other)
        return Bitset(self._length, self._words ^ other._words)

    def __invert__(self) -> "Bitset":
        flipped = Bitset(self._length, ~self._words)
        flipped._mask_tail()
        return flipped

    def iand(self, other: "Bitset") -> None:
        """In-place AND (used by the bitmap selection inner loop)."""
        self._require_same_length(other)
        self._words &= other._words

    def ior(self, other: "Bitset") -> None:
        """In-place OR (merging per-value bitmaps of one dimension)."""
        self._require_same_length(other)
        self._words |= other._words

    def _mask_tail(self) -> None:
        tail = self._length % _WORD_BITS
        if tail and self._words.size:
            self._words[-1] &= (np.uint64(1) << np.uint64(tail)) - np.uint64(1)

    # -- inspection -------------------------------------------------------

    def count(self) -> int:
        """Number of set bits."""
        return int(np.bitwise_count(self._words).sum())

    def any(self) -> bool:
        """Whether at least one bit is set."""
        return bool(self._words.any())

    def set_positions(self) -> np.ndarray:
        """All set positions as a sorted ``int64`` array."""
        if self._length == 0:
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little"
        )[: self._length]
        return np.nonzero(bits)[0].astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.set_positions().tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self._length == other._length and bool(
            np.array_equal(self._words, other._words)
        )

    def __hash__(self):  # bitsets are mutable
        raise TypeError("Bitset is unhashable")

    def to_bytes(self) -> bytes:
        """Serialize to the word array's little-endian bytes."""
        return self._words.tobytes()

    def nbytes(self) -> int:
        """Serialized size in bytes."""
        return self._words.size * 8

    def __repr__(self) -> str:
        return f"Bitset(length={self._length}, set={self.count()})"
