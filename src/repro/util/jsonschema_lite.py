"""A small JSON-Schema subset validator (stdlib only).

The CI explain-smoke validates ``repro explain --json`` output against
the checked-in ``benchmarks/schemas/explain_plan.schema.json``.  The
container has no ``jsonschema`` package, so this module implements the
subset the schema actually uses:

``type`` (including lists of types), ``properties``,
``additionalProperties`` (boolean form), ``required``, ``items``
(single-schema form), ``enum``, ``minimum`` / ``maximum``,
``minItems``, and ``$ref`` into local ``$defs``.

Unknown keywords are ignored, as the spec requires.  Errors carry a
JSON-pointer-ish path (``plan.children[0].op``), so a failed CI check
points at the offending node.
"""

from __future__ import annotations

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """A document failed schema validation."""


def _type_ok(value: object, name: str) -> bool:
    expected = _TYPES[name]
    if value is True or value is False:
        # bool subclasses int; JSON keeps the types distinct
        return name == "boolean"
    return isinstance(value, expected)


def _resolve(schema: dict, root: dict) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return schema
    if not ref.startswith("#/"):
        raise SchemaError(f"only local $refs are supported, got {ref!r}")
    node: object = root
    for part in ref[2:].split("/"):
        if not isinstance(node, dict) or part not in node:
            raise SchemaError(f"unresolvable $ref {ref!r}")
        node = node[part]
    if not isinstance(node, dict):
        raise SchemaError(f"$ref {ref!r} does not point at a schema")
    return node


def _check(value: object, schema: dict, root: dict, path: str) -> list[str]:
    schema = _resolve(schema, root)
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(value, name) for name in names):
            return [
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(value).__name__}"
            ]
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']!r}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")
    if isinstance(value, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required property {name!r}")
        for name, sub in properties.items():
            if name in value:
                errors.extend(
                    _check(value[name], sub, root, f"{path}.{name}")
                )
        if schema.get("additionalProperties") is False:
            for name in value:
                if name not in properties:
                    errors.append(f"{path}: unexpected property {name!r}")
    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(
                f"{path}: {len(value)} items < minItems {schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for index, element in enumerate(value):
                errors.extend(
                    _check(element, items, root, f"{path}[{index}]")
                )
    return errors


def validate(document: object, schema: dict) -> None:
    """Raise :class:`SchemaError` listing every violation, or return."""
    errors = _check(document, schema, schema, "$")
    if errors:
        raise SchemaError("; ".join(errors))
