"""LZW compression (Welch 1984).

Paradise's generic multi-dimensional array type compresses each tile
with LZW; the paper's OLAP Array ADT replaces that with chunk-offset
compression (§3.3).  We implement LZW so the compression ablation
(`benchmarks/test_ablation_compression.py`) can compare the two on the
same chunks.

The codec uses variable-width codes starting at 9 bits, growing to
``_MAX_CODE_BITS``; when the dictionary fills, it emits a CLEAR code and
restarts, matching the classic Unix ``compress`` behaviour closely
enough for a storage study.
"""

from __future__ import annotations

from repro.errors import CompressionError

_MIN_CODE_BITS = 9
_MAX_CODE_BITS = 16
_CLEAR_CODE = 256
_FIRST_FREE_CODE = 257


class _BitWriter:
    """Append integers of varying bit widths into a byte stream (LSB first)."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, width: int) -> None:
        self._acc |= value << self._nbits
        self._nbits += width
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def getvalue(self) -> bytes:
        if self._nbits:
            self._out.append(self._acc & 0xFF)
            self._acc = 0
            self._nbits = 0
        return bytes(self._out)


class _BitReader:
    """Read integers of varying bit widths from a byte stream (LSB first)."""

    def __init__(self, payload: bytes) -> None:
        self._payload = payload
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read(self, width: int) -> int | None:
        while self._nbits < width:
            if self._pos >= len(self._payload):
                return None
            self._acc |= self._payload[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << width) - 1)
        self._acc >>= width
        self._nbits -= width
        return value


def lzw_compress(data: bytes) -> bytes:
    """Compress ``data`` with LZW, returning the code stream."""
    if not data:
        return b""
    table: dict[bytes, int] = {bytes([i]): i for i in range(256)}
    next_code = _FIRST_FREE_CODE
    width = _MIN_CODE_BITS
    writer = _BitWriter()

    prefix = data[:1]
    for byte in data[1:]:
        candidate = prefix + bytes([byte])
        if candidate in table:
            prefix = candidate
            continue
        writer.write(table[prefix], width)
        if next_code < (1 << _MAX_CODE_BITS):
            table[candidate] = next_code
            next_code += 1
            if next_code > (1 << width) and width < _MAX_CODE_BITS:
                width += 1
        else:
            writer.write(_CLEAR_CODE, width)
            table = {bytes([i]): i for i in range(256)}
            next_code = _FIRST_FREE_CODE
            width = _MIN_CODE_BITS
        prefix = bytes([byte])
    writer.write(table[prefix], width)
    return writer.getvalue()


def lzw_decompress(payload: bytes) -> bytes:
    """Decompress an :func:`lzw_compress` code stream."""
    if not payload:
        return b""
    reader = _BitReader(payload)
    width = _MIN_CODE_BITS

    def fresh_table() -> list[bytes]:
        return [bytes([i]) for i in range(256)] + [b""]  # slot 256 = CLEAR

    table = fresh_table()
    out = bytearray()

    code = reader.read(width)
    if code is None or code >= 256:
        raise CompressionError("LZW stream does not start with a literal")
    previous = table[code]
    out += previous

    while True:
        code = reader.read(width)
        if code is None:
            return bytes(out)
        if code == _CLEAR_CODE:
            table = fresh_table()
            width = _MIN_CODE_BITS
            code = reader.read(width)
            if code is None:
                return bytes(out)
            if code >= 256:
                raise CompressionError("LZW CLEAR not followed by a literal")
            previous = table[code]
            out += previous
            continue
        if code < len(table):
            entry = table[code]
        elif code == len(table):
            entry = previous + previous[:1]  # the KwKwK special case
        else:
            raise CompressionError(f"LZW code {code} out of range")
        out += entry
        if len(table) < (1 << _MAX_CODE_BITS):
            table.append(previous + entry[:1])
            # The encoder bumps its width when next_code exceeds the
            # current code range; mirror that exactly.
            if len(table) + 1 > (1 << width) and width < _MAX_CODE_BITS:
                width += 1
        else:
            raise CompressionError("LZW table overflow without CLEAR code")
        previous = entry
