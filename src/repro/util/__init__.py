"""Low-level utilities shared by every subsystem.

- :mod:`repro.util.bitset` — packed bitsets (the payload of bitmap indices).
- :mod:`repro.util.lzw` — LZW codec (Welch 1984), used by Paradise array tiles.
- :mod:`repro.util.records` — fixed-length binary record codecs.
- :mod:`repro.util.stats` — counters and timers for I/O / CPU accounting.
"""

from repro.util.bitset import Bitset
from repro.util.lzw import lzw_compress, lzw_decompress
from repro.util.records import RecordCodec
from repro.util.stats import Counters, Timer

__all__ = [
    "Bitset",
    "lzw_compress",
    "lzw_decompress",
    "RecordCodec",
    "Counters",
    "Timer",
]
