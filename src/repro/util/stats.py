"""Counters and timers used for I/O and CPU accounting.

The performance study never sleeps to simulate a disk; instead the
storage layer *accounts* simulated I/O seconds into a :class:`Counters`
bag while wall-clock CPU time is measured with :class:`Timer`.  Reports
combine the two (see ``repro.bench.harness``).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field


class Counters:
    """A bag of named numeric counters.

    Unknown names read as zero, so callers can add domain-specific
    counters (``chunks_read``, ``btree_probes``, ...) without
    registration.  All operations are thread-safe: the serving layer
    lets concurrent queries account into shared bags (the buffer pool's,
    an array's), so increments must not be lost to read-modify-write
    races.
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)
        self._lock = threading.Lock()

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment ``name`` by ``amount``."""
        with self._lock:
            self._values[name] += amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never incremented)."""
        with self._lock:
            return self._values.get(name, 0.0)

    def reset(self) -> dict[str, float]:
        """Zero every counter; returns the pre-reset snapshot."""
        with self._lock:
            before = {k: v for k, v in self._values.items() if v}
            self._values.clear()
        return before

    def snapshot(self) -> dict[str, float]:
        """A plain-dict copy of all non-zero counters."""
        with self._lock:
            return {k: v for k, v in self._values.items() if v}

    def merge(self, other: "Counters") -> None:
        """Add every counter of ``other`` into this bag."""
        # snapshot first: taking both locks at once could deadlock
        # against a concurrent merge in the opposite direction
        items = other.snapshot()
        with self._lock:
            for name, value in items.items():
                self._values[name] += value

    def __iadd__(self, other: "Counters") -> "Counters":
        """``bag += other`` merges ``other`` into this bag."""
        self.merge(other)
        return self

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


@dataclass
class Timer:
    """Context manager measuring wall-clock elapsed seconds."""

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed += time.perf_counter() - self._start

    def reset(self) -> None:
        """Zero the accumulated elapsed time."""
        self.elapsed = 0.0
