"""``repro trace-smoke``: the end-to-end distributed-tracing gate.

Two halves, one verdict:

1. **Shard decomposition** — run one consolidation scattered over
   ``shards`` chunk-range shards on the ``process`` executor with the
   slow-query threshold at zero, pull the query's trace out of the
   flight recorder over live HTTP (``/trace/id/<trace_id>``), validate
   it against ``benchmarks/schemas/trace.schema.json``, and assert the
   span tree is *contiguous* (every ``shard_scan_<i>`` span carries the
   re-parented ``shard_worker`` subtree its worker process shipped
   back) and *additive* (the scatter span's counter deltas equal the
   sum of its shard children's, which equal the worker roots' shipped
   deltas key for key).

2. **Async causality** — drive the slicer API over loopback HTTP with
   the structured access log on, force a stale-grain fallback with a
   churn write, and assert the response's ``X-Trace-Id`` resolves on
   ``/trace/id/<trace_id>`` to a record whose ``schedules`` link points
   at a resident rollup-rebuild trace carrying the reverse
   ``follows_from`` link.

``failures`` in the returned payload is empty on success; the CLI (and
CI's trace-smoke job) exits non-zero otherwise.
"""

from __future__ import annotations

import io
import json
import tempfile
import time
import urllib.error
import urllib.request

from repro.bench.harness import bench_settings, build_cube_engine, query2_for
from repro.data.datasets import dataset1
from repro.data.generator import generate_fact_rows

#: counter keys the decomposition check sums across the span tree
#: (chunk-read accounting is the paper's cost model, so these must
#: survive the process hop exactly)
DECOMPOSE_KEYS = ("chunks_read", "cells_scanned")

TRACE_SCHEMA_PATH = "benchmarks/schemas/trace.schema.json"


def _http_json(url: str, timeout_s: float = 10.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return json.loads(response.read())


def _find_span(node: dict, name: str) -> dict | None:
    if node.get("name") == name:
        return node
    for child in node.get("children", ()):
        found = _find_span(child, name)
        if found is not None:
            return found
    return None


def _find_all(node: dict, prefix: str, out: list[dict]) -> list[dict]:
    if str(node.get("name", "")).startswith(prefix):
        out.append(node)
    for child in node.get("children", ()):
        _find_all(child, prefix, out)
    return out


def _check_decomposition(trace: dict, failures: list[str]) -> dict:
    """The contiguity + additivity assertions over one fetched trace."""
    scatter = None
    for root in trace.get("roots", ()):
        scatter = _find_span(root, "shard_scatter")
        if scatter is not None:
            break
    summary: dict = {"scatter_found": scatter is not None}
    if scatter is None:
        failures.append("no shard_scatter span in the sharded query trace")
        return summary
    scans = [
        child
        for child in scatter.get("children", ())
        if str(child.get("name", "")).startswith("shard_scan_")
    ]
    summary["shard_scans"] = len(scans)
    if not scans:
        failures.append("shard_scatter span has no shard_scan children")
        return summary
    workers = _find_all(scatter, "shard_worker", [])
    summary["worker_spans"] = len(workers)
    if len(workers) < len(scans):
        failures.append(
            f"only {len(workers)} shard_worker spans were re-parented "
            f"under {len(scans)} shard scans (tree not contiguous)"
        )
    for scan in scans:
        scan_workers = [
            c for c in scan.get("children", ())
            if str(c.get("name", "")).startswith("shard_worker")
        ]
        if not scan_workers:
            failures.append(
                f"{scan['name']} carries no shipped worker subtree"
            )
    summary["decomposition"] = {}
    for key in DECOMPOSE_KEYS:
        total = float(scatter.get("io", {}).get(key, 0.0))
        scan_sum = sum(
            float(scan.get("io", {}).get(key, 0.0)) for scan in scans
        )
        worker_sum = sum(
            float(worker.get("io", {}).get(key, 0.0)) for worker in workers
        )
        summary["decomposition"][key] = {
            "scatter": total,
            "scan_sum": scan_sum,
            "worker_sum": worker_sum,
        }
        if total <= 0:
            failures.append(f"scatter span recorded no {key}")
        if abs(total - scan_sum) > 1e-6:
            failures.append(
                f"{key}: scatter delta {total} != shard-scan sum {scan_sum}"
            )
        if abs(scan_sum - worker_sum) > 1e-6:
            failures.append(
                f"{key}: shard-scan sum {scan_sum} != shipped worker "
                f"delta sum {worker_sum}"
            )
    return summary


def run_trace_smoke(
    scale: str | None = None,
    shards: int = 4,
    executor: str = "process",
    timeout_s: float = 30.0,
) -> dict:
    """Run both halves of the smoke; returns the gate payload."""
    from repro.api.model import load_model
    from repro.api.replay import DEFAULT_MODEL_PATH
    from repro.api.server import ApiEndpoint, ApiServer
    from repro.obs.server import ObservabilityServer
    from repro.olap.options import ExecutionOptions
    from repro.serve import QueryService, ServiceConfig
    from repro.util.jsonschema_lite import validate

    settings = bench_settings(scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    with open(TRACE_SCHEMA_PATH, encoding="utf-8") as handle:
        schema = json.load(handle)
    failures: list[str] = []
    payload: dict = {
        "scale": settings.scale,
        "cube": config.name,
        "shards": shards,
        "executor": executor,
        "failures": failures,
    }

    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as wal_dir:
        engine = build_cube_engine(config, settings, wal_dir=wal_dir)
        service = QueryService(
            engine,
            ServiceConfig(
                max_workers=2,
                slowlog_threshold_s=0.0,  # capture every query's profile
                shards=shards,
                executor=executor,
            ),
        )
        obs = ObservabilityServer(engine.db.metrics, service=service)
        try:
            obs.start()
            # -- half 1: the sharded scatter's contiguous span tree ----
            service.execute(
                query2_for(config),
                ExecutionOptions(
                    backend="array", shards=shards, executor=executor
                ),
            )
            entries = service.slowlog.entries()
            if not entries:
                failures.append("slowlog captured nothing at threshold 0")
                trace_id = None
            else:
                trace_id = entries[-1].trace_id
                if not trace_id:
                    failures.append("slowlog entry carries no trace_id")
            payload["sharded_trace_id"] = trace_id
            if trace_id:
                trace = _http_json(f"{obs.url}/trace/id/{trace_id}")
                errors = validate(trace, schema)
                if errors:
                    failures.extend(
                        f"trace schema: {error}" for error in errors[:5]
                    )
                payload["sharded"] = _check_decomposition(trace, failures)

            # -- half 2: API request -> scheduled rollup rebuild -------
            model = load_model(DEFAULT_MODEL_PATH, scale=settings.scale)
            logical = model.cube("sales")
            access_lines = io.StringIO()
            endpoint = ApiEndpoint(engine, service, model)
            try:
                with ApiServer(
                    endpoint, access_log=True, access_log_stream=access_lines
                ) as api:
                    # a grain the model's declared rollups cover, so the
                    # router routes (and schedules builds) for it
                    aggregate_url = (
                        f"{api.url}/cube/{logical.name}/aggregate"
                        "?drilldown=dim0:h01,dim1:h11"
                    )
                    # burst: first request schedules the initial build,
                    # later ones should route once the build lands
                    for _ in range(3):
                        _http_json(aggregate_url)
                        time.sleep(0.05)
                    # churn: bump the generation so the next request is
                    # a stale-grain fallback that schedules a rebuild
                    write_row = next(iter(generate_fact_rows(config)))
                    service.write_cell(
                        config.name,
                        tuple(write_row[: config.ndim]),
                        tuple(write_row[config.ndim :]),
                    )
                    request = urllib.request.Request(aggregate_url)
                    with urllib.request.urlopen(
                        request, timeout=timeout_s
                    ) as response:
                        body = json.loads(response.read())
                        header_id = response.headers.get("X-Trace-Id")
                    payload["api_trace_id"] = header_id
                    if header_id is None:
                        failures.append("response carried no X-Trace-Id")
                    elif body.get("trace_id") != header_id:
                        failures.append(
                            f"body trace_id {body.get('trace_id')!r} != "
                            f"header {header_id!r}"
                        )
                    if header_id is not None:
                        api_trace = _wait_for_link(
                            obs.url, header_id, timeout_s, failures
                        )
                        if api_trace is not None:
                            errors = validate(api_trace, schema)
                            if errors:
                                failures.extend(
                                    f"api trace schema: {error}"
                                    for error in errors[:5]
                                )
                            payload["api"] = _check_causality(
                                obs.url, api_trace, schema, failures,
                                validate,
                            )
            finally:
                endpoint.close()
            payload["access_log"] = _check_access_log(
                access_lines.getvalue(), failures
            )
        finally:
            obs.stop()
            service.close()
    return payload


def _wait_for_link(
    obs_url: str, trace_id: str, timeout_s: float, failures: list[str]
) -> dict | None:
    """Poll the flight recorder until the request's trace carries its
    ``schedules`` link (attached when the trace record lands)."""
    deadline = time.monotonic() + timeout_s
    last: dict | None = None
    while time.monotonic() < deadline:
        try:
            last = _http_json(f"{obs_url}/trace/id/{trace_id}")
        except urllib.error.HTTPError:
            time.sleep(0.1)
            continue
        if any(
            link.get("kind") == "schedules"
            for link in last.get("links", ())
        ):
            return last
        time.sleep(0.1)
    if last is None:
        failures.append(
            f"trace {trace_id} never became resident on the endpoint"
        )
    else:
        failures.append(
            f"trace {trace_id} never grew a 'schedules' link "
            f"(links: {last.get('links')})"
        )
    return last


def _check_causality(
    obs_url: str, api_trace: dict, schema: dict, failures: list[str],
    validate,
) -> dict:
    """Follow the ``schedules`` link to the build and check the back-link."""
    scheduled = [
        link
        for link in api_trace.get("links", ())
        if link.get("kind") == "schedules"
    ]
    summary: dict = {"schedules_links": len(scheduled)}
    if not scheduled:
        return summary
    build_id = scheduled[0]["trace_id"]
    summary["build_trace_id"] = build_id
    # the record turns resident at schedule time but the follows_from
    # back-link lands only when the rebuild worker runs — poll for it
    deadline = time.monotonic() + 10.0
    build: dict | None = None
    while time.monotonic() < deadline:
        try:
            build = _http_json(f"{obs_url}/trace/id/{build_id}")
        except urllib.error.HTTPError:
            time.sleep(0.1)
            continue
        if any(
            link.get("kind") == "follows_from"
            for link in build.get("links", ())
        ):
            break
        time.sleep(0.1)
    if build is None:
        failures.append(
            f"scheduled build trace {build_id} never became resident"
        )
        return summary
    errors = validate(build, schema)
    if errors:
        failures.extend(f"build trace schema: {error}" for error in errors[:5])
    back = [
        link
        for link in build.get("links", ())
        if link.get("kind") == "follows_from"
        and link.get("trace_id") == api_trace["trace_id"]
    ]
    summary["follows_from_back_link"] = bool(back)
    if not back:
        failures.append(
            f"build trace {build_id} carries no follows_from link back "
            f"to {api_trace['trace_id']}"
        )
    summary["build_status"] = build.get("status")
    return summary


def _check_access_log(text: str, failures: list[str]) -> dict:
    """Every line must be one JSON object with the structured fields."""
    lines = [line for line in text.splitlines() if line.strip()]
    required = {"ts", "method", "path", "status", "latency_ms", "trace_id"}
    parsed = 0
    for line in lines:
        try:
            entry = json.loads(line)
        except ValueError:
            failures.append(f"access-log line is not JSON: {line[:80]!r}")
            continue
        missing = required - set(entry)
        if missing:
            failures.append(
                f"access-log line missing {sorted(missing)}: {line[:80]!r}"
            )
            continue
        parsed += 1
    if not lines:
        failures.append("access log captured no lines")
    return {"lines": len(lines), "parsed": parsed}


def write_trace_smoke_artifact(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
