"""Workload construction and cold-run execution for the experiments.

Scale handling: every experiment runs at a scale (``REPRO_SCALE`` or
``medium`` by default for benchmarks).  Page size and buffer pool are
scaled with the data so that page-count *ratios* between structures —
which drive every figure — stay close to the paper's 8 KiB-page,
16 MB-pool configuration:

========  =========  ===========  =============================
scale     page size  buffer pool  fact file (Data Set 1) pages
========  =========  ===========  =============================
small     128 B      64 KiB       ~190  (paper ratio preserved)
medium    256 B      512 KiB      ~1500 (≈ paper's 1565)
paper     8 KiB      16 MiB       1565
========  =========  ===========  =============================

Queries follow the paper: Query 1 groups by every dimension's hX1;
Query 2 adds one equality selection per dimension (per-dimension
selectivity ≈ 1/fanout, so S ≈ fanout⁻⁴); Query 3 selects on and
groups by only the first three dimensions.
"""

from __future__ import annotations

import statistics
import threading
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.data.datasets import get_scale
from repro.data.generator import (
    SyntheticCubeConfig,
    cube_schema_for,
    generate_dimension_rows,
    generate_fact_rows,
)
from repro.obs.tracer import Span, Tracer, tracing
from repro.olap.engine import OlapEngine, QueryResult
from repro.olap.options import ExecutionOptions
from repro.olap.query import ConsolidationQuery, SelectionPredicate
from repro.storage.disk import DiskModel
from repro.util.stats import Counters, Timer

# Page size scales with the data so page-count ratios between the
# structures match the paper's 8 KiB pages; the disk transfer rate
# scales the same way so simulated I/O keeps its paper-relative weight
# against (Python) CPU time.  Seek time is per-access and the access
# counts that matter (chunk fetches, tuple fetches) are geometry-
# preserved, so it stays at 10 ms everywhere.
_SETTINGS = {
    "small": {
        "page_size": 128,
        "pool_bytes": 256 * 1024,
        "disk_model": DiskModel(seek_ms=10.0, transfer_mb_per_s=0.07),
    },
    "medium": {
        "page_size": 1024,
        "pool_bytes": 2 * 1024 * 1024,
        "disk_model": DiskModel(seek_ms=10.0, transfer_mb_per_s=1.0),
    },
    "paper": {
        "page_size": 8192,
        "pool_bytes": 16 * 1024 * 1024,
        "disk_model": DiskModel(seek_ms=10.0, transfer_mb_per_s=10.0),
    },
}


@dataclass(frozen=True)
class BenchSettings:
    """Storage configuration for one experiment run."""

    scale: str
    page_size: int
    pool_bytes: int
    disk_model: DiskModel


def bench_settings(scale: str | None = None) -> BenchSettings:
    """Settings for a scale (default: ``REPRO_SCALE`` or ``medium``)."""
    scale = scale or get_scale(default="medium")
    return BenchSettings(scale=scale, **_SETTINGS[scale])


def build_cube_engine(
    config: SyntheticCubeConfig,
    settings: BenchSettings | None = None,
    backends: tuple[str, ...] = ("array", "relational"),
    fact_btrees: bool = False,
    fact_mbtree: bool = False,
    codec: str = "chunk-offset",
    wal_dir: str | None = None,
):
    """Build one synthetic cube in a fresh engine; returns the engine.

    Only hX1 bitmap indices are built (the attributes Query 2/3 select
    on), matching the paper's "create a join bitmap index on each
    selected attribute ... ahead of time".  Pass ``wal_dir`` to run the
    stack over a file-backed WAL (the serving/observability commands do,
    so fsync latency histograms carry real observations).
    """
    settings = settings or bench_settings()
    engine = OlapEngine(
        page_size=settings.page_size,
        pool_bytes=settings.pool_bytes,
        disk_model=settings.disk_model,
        wal_dir=wal_dir,
    )
    schema = cube_schema_for(config)
    bitmap_attrs = [
        (f"dim{d}", f"h{d}1") for d in range(config.ndim)
    ]
    engine.load_cube(
        schema,
        generate_dimension_rows(config),
        generate_fact_rows(config),
        chunk_shape=config.chunk_shape,
        codec=codec,
        backends=backends,
        bitmap_attrs=bitmap_attrs if "relational" in backends else "all",
        fact_btrees=fact_btrees,
        fact_mbtree=fact_mbtree,
    )
    return engine


def query1_for(config: SyntheticCubeConfig) -> ConsolidationQuery:
    """Query 1: group by every dimension's hX1, sum(volume)."""
    return ConsolidationQuery.build(
        config.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(config.ndim)},
    )


def query2_for(
    config: SyntheticCubeConfig, value: str = "AA1"
) -> ConsolidationQuery:
    """Query 2: Query 1 plus one hX1 equality selection per dimension."""
    return ConsolidationQuery.build(
        config.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(config.ndim)},
        selections=[
            SelectionPredicate.in_list(f"dim{d}", f"h{d}1", value)
            for d in range(config.ndim)
        ],
    )


def query3_for(
    config: SyntheticCubeConfig, value: str = "AA1"
) -> ConsolidationQuery:
    """Query 3: selection and group-by on the first three dimensions only."""
    return ConsolidationQuery.build(
        config.name,
        group_by={f"dim{d}": f"h{d}1" for d in range(min(3, config.ndim))},
        selections=[
            SelectionPredicate.in_list(f"dim{d}", f"h{d}1", value)
            for d in range(min(3, config.ndim))
        ],
    )


def run_cold(
    engine: OlapEngine,
    query: ConsolidationQuery,
    backend: str,
    mode: str = "auto",
    order: str = "chunk",
) -> QueryResult:
    """Execute one cold-cache query (the paper's measurement protocol)."""
    return engine.query(query, backend=backend, mode=mode, cold=True, order=order)


def run_cold_traced(
    engine: OlapEngine,
    query: ConsolidationQuery,
    backend: str,
    mode: str = "auto",
    order: str = "chunk",
) -> tuple[QueryResult, Span]:
    """:func:`run_cold` with a live tracer; returns ``(result, root span)``.

    The root span's inclusive I/O deltas equal the result's ``stats``
    counter-for-counter — the simulated disk is deterministic, so the
    traced run costs exactly what the untraced run reports.
    """
    tracer = Tracer(registry=engine.db.metrics)
    with tracing(tracer):
        result = engine.query(
            query, backend=backend, mode=mode, cold=True, order=order
        )
    if len(tracer.roots) != 1:
        raise RuntimeError(
            f"expected exactly one root span, got {len(tracer.roots)}"
        )
    return result, tracer.roots[0]


def aggregate_stats(results: Iterable[QueryResult]) -> dict[str, float]:
    """Counter stats of several runs summed into one snapshot."""
    total = Counters()
    for result in results:
        bag = Counters()
        for name, value in result.stats.items():
            bag.add(name, value)
        total += bag
    return total.snapshot()


# -- serving-mode runs (warm cache / concurrent traffic) ----------------------


@dataclass(frozen=True)
class WarmReport:
    """Cold-vs-warm comparison of one query through the result cache."""

    cold: QueryResult
    warm: list[QueryResult]
    hit_rate: float

    @property
    def warm_cost_s(self) -> float:
        """Median cost of the warm repeats."""
        return statistics.median(r.cost_s for r in self.warm)

    @property
    def speedup(self) -> float:
        """Cold cost over median warm cost (∞-safe: floor at 1 µs)."""
        return self.cold.cost_s / max(self.warm_cost_s, 1e-6)


def run_warm(
    engine: OlapEngine,
    query: ConsolidationQuery,
    backend: str = "auto",
    mode: str = "auto",
    repeats: int = 3,
) -> WarmReport:
    """One cold run, then ``repeats`` runs through a warm `QueryService`.

    The cold run follows the paper's protocol (:func:`run_cold`); the
    warm runs go through the serving layer, where the first populates
    the result cache and the rest should hit it.
    """
    from repro.serve import QueryService, ServiceConfig

    cold = run_cold(engine, query, backend, mode)
    opts = ExecutionOptions(backend=backend, mode=mode)
    warm: list[QueryResult] = []
    with QueryService(engine, ServiceConfig(max_workers=1)) as service:
        service.execute(query, opts)  # populate
        for _ in range(repeats):
            warm.append(service.execute(query, opts))
    hits = sum(1 for r in warm if r.stats.get("result_cache_hit"))
    return WarmReport(cold=cold, warm=warm, hit_rate=hits / max(1, len(warm)))


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


@dataclass(frozen=True)
class ConcurrentReport:
    """Latency and cache statistics of one concurrent mixed workload."""

    n_threads: int
    latencies_s: list[float]
    hit_rate: float
    stats: dict[str, float]
    #: per client thread, the ``(query index, rows)`` pairs it observed
    #: in issue order — the serial-replay oracle compares against these
    rows_by_thread: list[list[tuple[int, list[tuple]]]] = field(repr=False)

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p95_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.95)

    @property
    def p99_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.99)


def run_concurrent(
    engine: OlapEngine,
    queries: list[ConsolidationQuery],
    n_threads: int = 8,
    rounds: int = 2,
    backend: str = "auto",
    mode: str = "auto",
    service=None,
) -> ConcurrentReport:
    """``n_threads`` clients each issue every query ``rounds`` times.

    All clients share one :class:`~repro.serve.service.QueryService`
    sized so no request is rejected; client-side wall latency is
    recorded per call.  The report carries cache-hit rate and p50/p95
    latency — the serving-mode numbers next to the cold cost tables.

    Pass ``service`` to run the workload through an existing (suitably
    sized) service instead of a private one — ``repro serve
    --metrics-port`` does this so the observability endpoint scrapes
    the same service the workload hits.  A passed-in service is left
    open; the private one is closed on return.
    """
    from contextlib import nullcontext

    from repro.serve import QueryService, ServiceConfig

    if service is None:
        config = ServiceConfig(
            max_workers=n_threads,
            max_in_flight=2 * n_threads * max(1, len(queries)),
        )
        scope = QueryService(engine, config)
    else:
        scope = nullcontext(service)
    latencies: list[float] = []
    lock = threading.Lock()
    opts = ExecutionOptions(backend=backend, mode=mode)

    with scope as service:

        def client(thread_no: int) -> list[tuple[int, list[tuple]]]:
            seen: list[tuple[int, list[tuple]]] = []
            for _ in range(rounds):
                for index, query in enumerate(queries):
                    with Timer() as timer:
                        result = service.execute(query, opts)
                    with lock:
                        latencies.append(timer.elapsed)
                    seen.append((index, result.rows))
            return seen

        with ThreadPoolExecutor(
            max_workers=n_threads, thread_name_prefix="repro-client"
        ) as pool:
            rows_by_thread = list(pool.map(client, range(n_threads)))
        stats = service.stats()

    hits = stats.get("result_cache.hits", 0.0)
    misses = stats.get("result_cache.misses", 0.0)
    lookups = hits + misses
    return ConcurrentReport(
        n_threads=n_threads,
        latencies_s=latencies,
        hit_rate=hits / lookups if lookups else 0.0,
        stats=stats,
        rows_by_thread=rows_by_thread,
    )
