"""The CI serving-smoke: one warm+concurrent run, scraped and linted.

``repro bench-smoke`` (and the ``bench-smoke`` CI job) runs a small
serving workload through a shared :class:`QueryService` over a
file-backed WAL, scrapes the live ``/metrics`` endpoint over real HTTP,
lints the payload against the exposition grammar, checks the latency
histogram families the dashboards depend on are present and populated,
and writes a ``BENCH_serving.json`` artifact with the p50/p95/p99
latencies and counter totals.  Any failed check lands in ``failures``
— the CLI exits non-zero so a regression in the serving or
observability stack fails the job even when unit tests pass.
"""

from __future__ import annotations

import json
import tempfile

from repro.bench.harness import (
    bench_settings,
    build_cube_engine,
    query1_for,
    query2_for,
    query3_for,
    run_cold,
    run_concurrent,
    run_warm,
)
from repro.data.datasets import dataset1
from repro.obs.exporters import lint_prometheus_text
from repro.obs.server import ObservabilityServer
from repro.obs.top import MetricsView, fetch_metrics

#: histogram families the serving dashboards depend on; the smoke fails
#: when any is missing from the scrape
REQUIRED_HISTOGRAMS = (
    "repro_serve_query_latency_seconds",
    "repro_serve_queue_wait_seconds",
    "repro_serve_cache_lookup_seconds",
    "repro_wal_fsync_seconds",
    "repro_engine_query_seconds",
)


def run_serving_smoke(
    scale: str | None = None,
    n_threads: int = 4,
    rounds: int = 2,
    slowlog_threshold_s: float = 0.0,
    shards: int = 1,
    executor: str = "local",
) -> dict:
    """Run the smoke; returns the ``BENCH_serving.json`` payload.

    ``failures`` in the returned dict is empty on success.  The default
    slowlog threshold of 0 captures every query, so the smoke also
    proves the profile-capture path end to end.  ``shards > 1`` routes
    every engine miss through the shard coordinator; the artifact
    records the shard plan so ``bench-diff`` refuses to gate a sharded
    run against an unsharded baseline.
    """
    from repro.serve import QueryService, ServiceConfig

    settings = bench_settings(scale)
    config = dataset1(settings.scale)[1]  # the x100 cube
    queries = [query1_for(config), query2_for(config), query3_for(config)]
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-bench-smoke-") as wal_dir:
        engine = build_cube_engine(config, settings, wal_dir=wal_dir)
        cold = run_cold(engine, queries[0], "array")  # the fig4 microbench
        warm = run_warm(engine, queries[0], backend="array")
        service = QueryService(
            engine,
            ServiceConfig(
                max_workers=n_threads,
                max_in_flight=2 * n_threads * len(queries),
                slowlog_threshold_s=slowlog_threshold_s,
                shards=shards,
                executor=executor,
            ),
        )
        server = ObservabilityServer(engine.db.metrics, service=service)
        try:
            server.start()
            report = run_concurrent(
                engine,
                queries,
                n_threads=n_threads,
                rounds=rounds,
                service=service,
            )
            scrape = fetch_metrics(f"{server.url}/metrics")
            try:
                lint_prometheus_text(scrape)
            except ValueError as exc:
                failures.append(f"scrape lint: {exc}")
            view = MetricsView.from_text(scrape)
            for family in REQUIRED_HISTOGRAMS:
                if family not in view.histogram_counts:
                    failures.append(f"histogram family missing: {family}")
            if view.histogram_counts.get(
                "repro_serve_query_latency_seconds", 0.0
            ) <= 0:
                failures.append("query latency histogram has no observations")
            if report.hit_rate <= 0:
                failures.append("concurrent workload saw no cache hits")
            if slowlog_threshold_s <= 0 and not len(service.slowlog):
                failures.append("slow-query log captured nothing at threshold 0")
            shard_totals = (
                engine.shard_coordinator.counters.snapshot()
                if shards > 1
                else {}
            )
            if shards > 1 and not shard_totals.get("shard.queries"):
                failures.append(
                    f"shards={shards} but no engine miss went through "
                    "the shard coordinator"
                )
            payload = {
                "scale": settings.scale,
                "cube": config.name,
                "shards": shards,
                "executor": executor,
                "threads": report.n_threads,
                "queries": len(report.latencies_s),
                "fig4_cold": {
                    "backend": cold.backend,
                    "cost_s": cold.cost_s,
                    "elapsed_s": cold.elapsed_s,
                    "sim_io_s": cold.sim_io_s,
                },
                "warm": {
                    "cold_cost_s": warm.cold.cost_s,
                    "warm_cost_s": warm.warm_cost_s,
                    "hit_rate": warm.hit_rate,
                    "speedup": warm.speedup,
                },
                "concurrent": {
                    "p50_s": report.p50_s,
                    "p95_s": report.p95_s,
                    "p99_s": report.p99_s,
                    "hit_rate": report.hit_rate,
                },
                "scrape": {
                    "histogram_families": sorted(view.histogram_counts),
                    "query_latency_observations": view.histogram_counts.get(
                        "repro_serve_query_latency_seconds", 0.0
                    ),
                    # histogram count, not the counter: cold runs reset
                    # counters, histograms keep their history
                    "wal_fsyncs": view.histogram_counts.get(
                        "repro_wal_fsync_seconds", 0.0
                    ),
                },
                "counters": {
                    name: value
                    for name, value in sorted(report.stats.items())
                },
                "shard_counters": {
                    name: value
                    for name, value in sorted(shard_totals.items())
                },
                "slowlog_entries": len(service.slowlog),
                "memory": {
                    "budget_bytes": 0,
                    "total_resident_bytes": int(
                        service.memory.total_resident_bytes()
                    ),
                    "stores": service.memory.usage_by_store(),
                },
                "failures": failures,
            }
        finally:
            server.stop()
            service.close()
    return payload


def write_artifact(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def archive_artifact(payload: dict, results_dir: str) -> str:
    """Keep a timestamped copy under ``results_dir``; returns its path.

    ``bench-smoke`` archives every run as
    ``results_dir/BENCH_serving.<scale>.<UTC timestamp>.json`` so later
    runs have baselines for ``repro bench-diff`` without any CI cache
    plumbing — the newest earlier artifact of the same scale *is* the
    baseline.
    """
    import os
    import time

    os.makedirs(results_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    name = f"BENCH_serving.{payload.get('scale', 'unknown')}.{stamp}.json"
    path = os.path.join(results_dir, name)
    # same-second reruns (tests) must not clobber the earlier artifact
    serial = 0
    while os.path.exists(path):
        serial += 1
        path = os.path.join(results_dir, f"{name[:-5]}.{serial}.json")
    write_artifact(payload, path)
    return path


def latest_artifact(results_dir: str, scale: str | None = None) -> str | None:
    """Newest archived artifact path (optionally of one scale), if any."""
    import os

    if not os.path.isdir(results_dir):
        return None
    prefix = (
        f"BENCH_serving.{scale}." if scale is not None else "BENCH_serving."
    )
    paths = [
        os.path.join(results_dir, name)
        for name in os.listdir(results_dir)
        if name.startswith(prefix) and name.endswith(".json")
    ]
    # mtime, not name: same-second serial suffixes sort lexically
    # *before* the plain stamp, so a name sort would pick the older run
    return max(paths, key=os.path.getmtime) if paths else None
