"""Compare two ``bench-smoke`` artifacts and flag latency regressions.

``repro bench-diff A.json B.json`` reads two ``BENCH_serving.json``
payloads (``A`` the baseline, ``B`` the candidate — typically the
previous CI run's archived artifact and the current one) and reports
the movement of the headline serving numbers.  The gate is the
concurrent p95: a ratio above ``--max-p95-regress`` (default 1.3) is a
regression and the CLI exits non-zero, so a serving slowdown fails the
job even when every unit test passes.

Comparisons are guarded against degenerate baselines: latencies under
``MIN_COMPARABLE_S`` (clock-resolution noise at tiny scales) are
reported but never gated on, and artifacts from different scales refuse
to gate at all — an apples-to-oranges pass would be worse than no gate.
"""

from __future__ import annotations

import json

#: baselines below this are clock noise, not a gateable measurement
MIN_COMPARABLE_S = 1e-6

#: default ceiling on candidate_p95 / baseline_p95
DEFAULT_MAX_P95_REGRESS = 1.3


def load_artifact(path: str) -> dict:
    """Read one ``BENCH_serving.json``; raises ``ValueError`` on shape."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "concurrent" not in payload:
        raise ValueError(f"{path}: not a bench-smoke artifact")
    return payload


def _ratio_line(name: str, base: float, new: float, unit: str = "ms") -> str:
    scale = 1000.0 if unit == "ms" else 1.0
    if base > MIN_COMPARABLE_S:
        movement = f"x{new / base:.2f}"
    else:
        movement = "(baseline too small to compare)"
    return (
        f"{name:<24} {base * scale:>10.3f}{unit} -> "
        f"{new * scale:>10.3f}{unit}  {movement}"
    )


def diff_artifacts(
    base: dict,
    new: dict,
    max_p95_regress: float = DEFAULT_MAX_P95_REGRESS,
) -> tuple[list[str], list[str]]:
    """``(report_lines, failures)`` for two artifact payloads.

    ``failures`` is empty when the candidate passes the p95 gate (and
    the artifacts are comparable at all).
    """
    lines: list[str] = []
    failures: list[str] = []
    base_scale = base.get("scale")
    new_scale = new.get("scale")
    # pre-sharding artifacts carry no "shards"/"shard_counters" keys:
    # they are 1-shard runs — note it rather than KeyError, so old
    # archived baselines stay diffable forever
    for label, payload in (("baseline", base), ("candidate", new)):
        if "shards" not in payload or "shard_counters" not in payload:
            lines.append(
                f"note: {label} predates shard-aware artifacts "
                "(no 'shards'/'shard_counters' keys); treated as a "
                "1-shard run"
            )
        # same vintage guard for the memory observatory: artifacts
        # written before resident-set accounting carry no "memory" key
        if "memory" not in payload:
            lines.append(
                f"note: {label} predates memory accounting "
                "(no 'memory' key); resident-set comparison skipped"
            )
    base_shards = int(base.get("shards", 1))
    new_shards = int(new.get("shards", 1))
    lines.append(
        f"baseline: scale={base_scale} threads={base.get('threads')} "
        f"queries={base.get('queries')} shards={base_shards}"
    )
    lines.append(
        f"candidate: scale={new_scale} threads={new.get('threads')} "
        f"queries={new.get('queries')} shards={new_shards}"
    )
    if base_scale != new_scale:
        failures.append(
            f"scale mismatch: baseline {base_scale!r} vs "
            f"candidate {new_scale!r} — not comparable"
        )
        return lines + [f"FAIL: {failures[-1]}"], failures
    if base_shards != new_shards:
        failures.append(
            f"shard-count mismatch: baseline ran {base_shards} shard(s) "
            f"vs candidate {new_shards} — scatter/gather overhead would "
            "gate as a latency regression; rerun with matching --shards"
        )
        return lines + [f"FAIL: {failures[-1]}"], failures

    base_conc = base["concurrent"]
    new_conc = new["concurrent"]
    for name in ("p50_s", "p95_s", "p99_s"):
        lines.append(
            _ratio_line(
                f"concurrent.{name}",
                float(base_conc.get(name, 0.0)),
                float(new_conc.get(name, 0.0)),
            )
        )
    lines.append(
        f"{'concurrent.hit_rate':<24} {base_conc.get('hit_rate', 0.0):>10.1%}"
        f"   -> {new_conc.get('hit_rate', 0.0):>10.1%}"
    )
    if "memory" in base and "memory" in new:
        base_mem = float(base["memory"].get("total_resident_bytes", 0.0))
        new_mem = float(new["memory"].get("total_resident_bytes", 0.0))
        movement = (
            f"x{new_mem / base_mem:.2f}"
            if base_mem > 0
            else "(baseline empty)"
        )
        lines.append(
            f"{'memory.resident_bytes':<24} {base_mem:>12,.0f}B -> "
            f"{new_mem:>12,.0f}B  {movement}"
        )
    if "fig4_cold" in base and "fig4_cold" in new:
        lines.append(
            _ratio_line(
                "fig4_cold.cost_s",
                float(base["fig4_cold"].get("cost_s", 0.0)),
                float(new["fig4_cold"].get("cost_s", 0.0)),
                unit="s",
            )
        )

    base_p95 = float(base_conc.get("p95_s", 0.0))
    new_p95 = float(new_conc.get("p95_s", 0.0))
    if base_p95 > MIN_COMPARABLE_S:
        ratio = new_p95 / base_p95
        if ratio > max_p95_regress:
            failures.append(
                f"concurrent p95 regressed x{ratio:.2f} "
                f"({base_p95 * 1000:.3f}ms -> {new_p95 * 1000:.3f}ms), "
                f"limit x{max_p95_regress:.2f}"
            )
            lines.append(f"FAIL: {failures[-1]}")
        else:
            lines.append(
                f"p95 gate: x{ratio:.2f} <= x{max_p95_regress:.2f} ok"
            )
    else:
        lines.append("p95 gate: baseline under resolution, skipped")
    return lines, failures
